"""Data matching: blocking, entity/schema matching, column typing, Unicorn."""

from repro.matching.annotation import (
    ColumnAnnotator,
    DoduoAnnotator,
    FeatureAnnotator,
    PLMAnnotator,
    column_features,
)
from repro.matching.blocking import (
    Blocker,
    BlockingResult,
    EmbeddingBlocker,
    KeyBlocker,
    LSHBlocker,
)
from repro.matching.ditto import DittoMatcher, serialize_record
from repro.matching.matchers import (
    EmbeddingMatcher,
    EntityMatcher,
    FallbackMatcher,
    FoundationModelMatcher,
    RuleBasedMatcher,
    attribute_similarities,
)
from repro.matching.resolution import (
    EntityCluster,
    ResolutionResult,
    cluster_f1,
    consolidate,
    resolve_entities,
)
from repro.matching.tasks import (
    column_type_instances,
    entity_instances,
    schema_instances,
    string_instances,
    unified_task_mixture,
)
from repro.matching.schema import Correspondence, SchemaMatcher, schema_matching_accuracy
from repro.matching.unified import MatchingInstance, MixtureOfExperts, UnicornMatcher

__all__ = [
    "Blocker",
    "BlockingResult",
    "ColumnAnnotator",
    "Correspondence",
    "DittoMatcher",
    "DoduoAnnotator",
    "EmbeddingBlocker",
    "EmbeddingMatcher",
    "EntityCluster",
    "EntityMatcher",
    "FallbackMatcher",
    "FeatureAnnotator",
    "FoundationModelMatcher",
    "KeyBlocker",
    "LSHBlocker",
    "MatchingInstance",
    "MixtureOfExperts",
    "PLMAnnotator",
    "ResolutionResult",
    "RuleBasedMatcher",
    "SchemaMatcher",
    "UnicornMatcher",
    "attribute_similarities",
    "column_type_instances",
    "entity_instances",
    "schema_instances",
    "string_instances",
    "unified_task_mixture",
    "cluster_f1",
    "column_features",
    "consolidate",
    "resolve_entities",
    "schema_matching_accuracy",
    "serialize_record",
]
