"""Unicorn-style unified data matching (Tu et al., SIGMOD 2023; §3.2(5)).

One model for *every* matching task: entity matching, schema matching,
column-type matching, string matching.  The architecture follows the paper's
sketch in the tutorial: a **unified encoder** for any pair of data, a
**mixture-of-experts** layer to align the matching semantics of different
tasks, and a single binary **matcher** head.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import NotFittedError
from repro.nn.functional import cross_entropy, softmax
from repro.nn.layers import Linear, Module
from repro.nn.optim import Adam, clip_grad_norm
from repro.nn.tensor import Tensor
from repro.plm.model import MiniBert


@dataclass
class MatchingInstance:
    """A task-tagged pair: does ``left`` match ``right``?"""

    task: str
    left: str
    right: str
    label: int


class MixtureOfExperts(Module):
    """Soft mixture of expert projections with a learned gate."""

    def __init__(self, dim: int, num_experts: int, seed: int = 0):
        super().__init__()
        if num_experts < 1:
            raise ValueError("num_experts must be >= 1")
        rng = np.random.default_rng(seed)
        self.num_experts = num_experts
        self.experts = [Linear(dim, dim, rng) for _ in range(num_experts)]
        for i, expert in enumerate(self.experts):
            setattr(self, f"expert{i}", expert)
        self.gate = Linear(dim, num_experts, rng)

    def forward(self, x: Tensor) -> Tensor:
        weights = softmax(self.gate(x), axis=-1)  # (batch, experts)
        mixed = None
        for i, expert in enumerate(self.experts):
            contribution = expert(x).tanh() * weights[:, i : i + 1]
            mixed = contribution if mixed is None else mixed + contribution
        return mixed

    def gate_weights(self, x: Tensor) -> np.ndarray:
        """Expert weights for inspection (which experts serve which tasks)."""
        return softmax(self.gate(x), axis=-1).numpy()


class UnicornMatcher:
    """Shared encoder + MoE + binary head, trained on a task mixture.

    The matcher head reads two feature groups, combining what the two
    matching families need:

    - the **MoE-transformed [cls] embedding** of the jointly-encoded pair
      (task name prepended, as in Unicorn's serialization) — carries learned
      semantic associations (a cuisine value ↔ the type name "cuisine");
    - **token-alignment statistics** (IDF-weighted soft alignment over the
      embedding layer, as in this library's Ditto) — carries string-overlap
      evidence that a tiny encoder cannot relearn from a few labels.
    """

    def __init__(self, encoder: MiniBert, num_experts: int = 3,
                 lr: float = 2e-3, seed: int = 0):
        self.encoder = encoder
        self.moe = MixtureOfExperts(encoder.dim, num_experts, seed=seed)
        rng = np.random.default_rng(seed + 1)
        self.head = Linear(encoder.dim + 3, 2, rng)
        # Warm-start the alignment slice of the head with its known
        # semantics: higher alignment → match.
        self.head.weight.data[-3:, :] = np.array(
            [[-0.5, 0.5], [-0.5, 0.5], [0.0, 0.0]]
        )
        self._optimizer = Adam(
            encoder.parameters() + self.moe.parameters() + self.head.parameters(),
            lr=lr,
        )
        self._rng = np.random.default_rng(seed)
        self._idf: dict[int, float] = {}
        self._default_idf = 1.0
        self.fitted = False

    def _encode(self, instances: list[MatchingInstance]) -> tuple[np.ndarray, np.ndarray]:
        # The task name is prepended, so the encoder can condition on it —
        # Unicorn's instance serialization does the same.
        pairs = [
            (f"{inst.task} {inst.left}", inst.right) for inst in instances
        ]
        return self.encoder.batch_encode_pairs(pairs)

    # -- alignment features -------------------------------------------------

    def _token_ids(self, text: str) -> np.ndarray:
        ids = self.encoder.vocab.encode(text)[: self.encoder.max_len]
        return np.array(ids if ids else [self.encoder.vocab.unk_id])

    def _fit_idf(self, instances: list[MatchingInstance]) -> None:
        from collections import Counter

        counts: Counter[int] = Counter()
        n = 0
        for inst in instances:
            for side in (inst.left, inst.right):
                counts.update(set(self._token_ids(side).tolist()))
                n += 1
        self._idf = {t: float(np.log(max(n, 2) / c)) for t, c in counts.items()}
        self._default_idf = float(np.log(max(n, 2)))

    def _alignment(self, inst: MatchingInstance) -> Tensor:
        left_ids = self._token_ids(inst.left)
        right_ids = self._token_ids(inst.right)
        ha = _l2(self.encoder.tok_embed(left_ids[None, :])[0])
        hb = _l2(self.encoder.tok_embed(right_ids[None, :])[0])
        sim = ha @ hb.transpose(1, 0)
        wa = np.array([self._idf.get(int(t), self._default_idf) for t in left_ids])
        wb = np.array([self._idf.get(int(t), self._default_idf) for t in right_ids])
        recall = (sim.max(axis=1) * Tensor(wa)).sum() * (1.0 / max(wa.sum(), 1e-9))
        precision = (sim.max(axis=0) * Tensor(wb)).sum() * (1.0 / max(wb.sum(), 1e-9))
        recall = (recall - 0.5) * 8.0
        precision = (precision - 0.5) * 8.0
        return recall.reshape(1).concat(
            [precision.reshape(1), (recall * precision * 0.25).reshape(1)], axis=0
        )

    def _features(self, instances: list[MatchingInstance],
                  ids: np.ndarray, masks: np.ndarray) -> Tensor:
        cls = self.encoder.cls_embedding(ids, mask=masks)
        mixed = self.moe(cls)
        rows = [
            self._alignment(inst).reshape(1, 3) for inst in instances
        ]
        alignment = rows[0] if len(rows) == 1 else rows[0].concat(rows[1:], axis=0)
        return mixed.concat([alignment], axis=1)

    # -- training -------------------------------------------------------------

    def fit(self, instances: list[MatchingInstance], epochs: int = 5,
            batch_size: int = 16) -> "UnicornMatcher":
        self._fit_idf(instances)
        ids, masks = self._encode(instances)
        labels = np.array([inst.label for inst in instances])
        n = len(instances)
        for _ in range(epochs):
            order = self._rng.permutation(n)
            for lo in range(0, n, batch_size):
                batch = order[lo : lo + batch_size]
                features = self._features(
                    [instances[i] for i in batch], ids[batch], masks[batch]
                )
                loss = cross_entropy(self.head(features), labels[batch])
                self._optimizer.zero_grad()
                loss.backward()
                clip_grad_norm(self._optimizer.parameters, 5.0)
                self._optimizer.step()
        self.fitted = True
        return self

    def predict(self, instances: list[MatchingInstance]) -> np.ndarray:
        if not self.fitted:
            raise NotFittedError("UnicornMatcher not fitted")
        ids, masks = self._encode(instances)
        out = []
        for lo in range(0, len(instances), 64):
            features = self._features(
                instances[lo : lo + 64], ids[lo : lo + 64], masks[lo : lo + 64]
            )
            out.append(self.head(features).numpy().argmax(axis=1))
        return np.concatenate(out)

    def accuracy(self, instances: list[MatchingInstance]) -> float:
        predictions = self.predict(instances)
        labels = np.array([inst.label for inst in instances])
        return float(np.mean(predictions == labels))

    def per_task_accuracy(self, instances: list[MatchingInstance]) -> dict[str, float]:
        predictions = self.predict(instances)
        labels = np.array([inst.label for inst in instances])
        tasks = sorted({inst.task for inst in instances})
        out = {}
        for task in tasks:
            idx = np.array([i for i, inst in enumerate(instances) if inst.task == task])
            out[task] = float(np.mean(predictions[idx] == labels[idx]))
        return out

    def expert_usage(self, instances: list[MatchingInstance]) -> dict[str, np.ndarray]:
        """Mean gate weights per task — shows expert specialization."""
        ids, masks = self._encode(instances)
        cls = self.encoder.cls_embedding(ids, mask=masks)
        weights = self.moe.gate_weights(cls)
        out: dict[str, np.ndarray] = {}
        for task in sorted({inst.task for inst in instances}):
            idx = [i for i, inst in enumerate(instances) if inst.task == task]
            out[task] = weights[idx].mean(axis=0)
        return out


def _l2(x: Tensor) -> Tensor:
    return x * ((x * x).sum(axis=-1, keepdims=True) + 1e-12).pow(-0.5)
