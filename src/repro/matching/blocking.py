"""Blocking: prune the quadratic pair space before matching (§3.2).

Three families, matching the tutorial's storyline:

- :class:`KeyBlocker` — classic blocking on an attribute-derived key; cheap,
  brittle to noise in the key attribute;
- :class:`LSHBlocker` — MinHash LSH over record tokens; robust to token
  reordering but still token-exact;
- :class:`EmbeddingBlocker` — the DeepBlocker recipe: embed each record
  (fastText-style subword embeddings survive typos) and take top-k nearest
  neighbours, so misspelled records still land near their duplicates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.datasets.em import EMDataset, Record
from repro.ml.metrics import pair_completeness, reduction_ratio
from repro.obs import metrics, tracing
from repro.par import ParallelMap
from repro.text.minhash import LSHIndex
from repro.text.tokenize import words


@dataclass
class BlockingResult:
    """Candidate set plus its quality metrics against ground truth."""

    candidates: set[tuple[str, str]]
    recall: float          # pair completeness
    reduction: float       # reduction ratio

    @property
    def num_candidates(self) -> int:
        return len(self.candidates)


class Blocker:
    """Produces candidate (rid_a, rid_b) pairs for a two-source dataset."""

    def candidates(self, dataset: EMDataset) -> set[tuple[str, str]]:
        raise NotImplementedError

    def evaluate(self, dataset: EMDataset) -> BlockingResult:
        with tracing.span("blocking.evaluate",
                          blocker=type(self).__name__) as span:
            candidates = self.candidates(dataset)
            total = len(dataset.source_a) * len(dataset.source_b)
            metrics.counter("blocking.evaluations").inc()
            metrics.counter("blocking.candidates").inc(len(candidates))
            metrics.counter("blocking.pairs_pruned").inc(total - len(candidates))
            span.set(candidates=len(candidates), total_pairs=total)
            return BlockingResult(
                candidates=candidates,
                recall=pair_completeness(candidates, dataset.matches),
                reduction=reduction_ratio(len(candidates), total),
            )


class KeyBlocker(Blocker):
    """Group records by an exact blocking key and pair within groups.

    The default key is the first token of the first attribute — the classic
    "first word of the name" heuristic.
    """

    def __init__(self, key_fn: Callable[[Record], str] | None = None):
        self.key_fn = key_fn or _default_key

    def candidates(self, dataset: EMDataset) -> set[tuple[str, str]]:
        buckets: dict[str, list[str]] = {}
        for record in dataset.source_b:
            buckets.setdefault(self.key_fn(record), []).append(record.rid)
        out: set[tuple[str, str]] = set()
        for record in dataset.source_a:
            for rid_b in buckets.get(self.key_fn(record), ()):
                out.add((record.rid, rid_b))
        return out


def _default_key(record: Record) -> str:
    tokens = words(record.value_text())
    return tokens[0] if tokens else ""


class LSHBlocker(Blocker):
    """MinHash-LSH over record word tokens."""

    def __init__(self, num_perm: int = 64, bands: int = 16, seed: int = 7):
        self.num_perm = num_perm
        self.bands = bands
        self.seed = seed

    def candidates(self, dataset: EMDataset) -> set[tuple[str, str]]:
        index = LSHIndex(num_perm=self.num_perm, bands=self.bands, seed=self.seed)
        for record in dataset.source_b:
            index.add(record.rid, words(record.value_text()))
        out: set[tuple[str, str]] = set()
        for record in dataset.source_a:
            for rid_b in index.query(words(record.value_text())):
                out.add((record.rid, rid_b))
        return out


class EmbeddingBlocker(Blocker):
    """DeepBlocker-style: embed records, keep top-k nearest per record.

    Two embedding modes:

    - ``embed`` — any text→vector function (e.g. a model's ``embed_text``);
    - ``token_embed`` — a token→vector function (fastText's
      ``token_vector``); record vectors are then the *IDF-weighted* mean of
      token vectors, computed against the dataset being blocked.  Weighting
      matters: unweighted means are dominated by tokens every record shares
      (brands, categories), while the discriminative name tokens are rare.

    ``attribute`` restricts blocking to one field (the usual practice —
    block on the name, not the whole record, so per-record noise fields like
    prices don't pollute the key).

    The embedding and top-k stages are vectorized: every unique token (or
    unique text) is embedded exactly once, record vectors are assembled
    with one scatter-add over the flattened token stream, and nearest
    neighbours are taken per *row block* so the similarity matrix never
    materializes beyond ``row_block × |B|``.  Row blocks optionally fan
    out over a :class:`repro.par.ParallelMap`.  The pre-vectorization
    kernels survive as :meth:`_vectors_reference` /
    :meth:`candidates_reference` for equivalence tests and the perf bench.
    """

    def __init__(self, embed: Callable[[str], np.ndarray] | None = None,
                 k: int = 5,
                 token_embed: Callable[[str], np.ndarray] | None = None,
                 attribute: str | None = None,
                 parallel: ParallelMap | None = None,
                 row_block: int = 256):
        if k < 1:
            raise ValueError("k must be >= 1")
        if row_block < 1:
            raise ValueError("row_block must be >= 1")
        if (embed is None) == (token_embed is None):
            raise ValueError("provide exactly one of embed / token_embed")
        self.embed = embed
        self.token_embed = token_embed
        self.k = k
        self.attribute = attribute
        self.parallel = parallel
        self.row_block = row_block

    def _text(self, record: Record) -> str:
        if self.attribute is not None:
            value = record.attributes.get(self.attribute)
            return "" if value is None else str(value)
        return record.value_text()

    # -- record vectors (vectorized kernel) --------------------------------

    def _vectors(self, dataset: EMDataset) -> tuple[np.ndarray, np.ndarray]:
        """Record-vector matrices for both sources.

        ``embed`` mode deduplicates texts before embedding; ``token_embed``
        mode embeds each unique token once and pools per record with an
        IDF-weighted scatter-add over the flattened token stream.
        """
        texts_a = [self._text(r) for r in dataset.source_a]
        texts_b = [self._text(r) for r in dataset.source_b]
        if self.embed is not None:
            unique = sorted(set(texts_a + texts_b))
            table = {t: self.embed(t) for t in unique}
            return (
                np.stack([table[t] for t in texts_a]),
                np.stack([table[t] for t in texts_b]),
            )
        texts = texts_a + texts_b
        token_lists = [words(t) for t in texts]
        document_freq: dict[str, int] = {}
        for tokens in token_lists:
            for t in set(tokens):
                document_freq[t] = document_freq.get(t, 0) + 1
        n = len(texts)
        vocab = sorted(document_freq)
        index = {t: i for i, t in enumerate(vocab)}
        if vocab:
            token_matrix = np.stack([self.token_embed(t) for t in vocab])
        else:
            token_matrix = np.zeros((0, len(self.token_embed("empty"))))
        idf = np.array(
            [np.log(n / (1 + document_freq[t])) + 1.0 for t in vocab]
        )
        dim = token_matrix.shape[1]
        # Flatten every (record, token-occurrence) into parallel arrays and
        # pool with one scatter-add per matrix.
        seg = np.concatenate([
            np.full(len(tokens), i, dtype=np.int64)
            for i, tokens in enumerate(token_lists)
        ]) if token_lists else np.empty(0, dtype=np.int64)
        flat = np.array(
            [index[t] for tokens in token_lists for t in tokens],
            dtype=np.int64,
        )
        weights = idf[flat] if flat.size else np.empty(0)
        acc = np.zeros((n, dim))
        denom = np.zeros(n)
        if flat.size:
            np.add.at(acc, seg, token_matrix[flat] * weights[:, None])
            np.add.at(denom, seg, weights)
        pooled = np.divide(
            acc, denom[:, None], out=np.zeros_like(acc),
            where=denom[:, None] > 0,
        )
        return pooled[: len(texts_a)], pooled[len(texts_a):]

    def _vectors_reference(
        self, dataset: EMDataset
    ) -> tuple[np.ndarray, np.ndarray]:
        """Pre-vectorization per-text embedding loop (bench baseline)."""
        texts_a = [self._text(r) for r in dataset.source_a]
        texts_b = [self._text(r) for r in dataset.source_b]
        if self.embed is not None:
            return (
                np.stack([self.embed(t) for t in texts_a]),
                np.stack([self.embed(t) for t in texts_b]),
            )
        from collections import Counter

        document_freq: Counter[str] = Counter()
        for text in texts_a + texts_b:
            document_freq.update(set(words(text)))
        n = len(texts_a) + len(texts_b)

        def weighted(text: str) -> np.ndarray:
            tokens = words(text)
            if not tokens:
                probe = self.token_embed("empty")
                return np.zeros_like(probe)
            weights = np.array([
                np.log(n / (1 + document_freq.get(t, 0))) + 1.0 for t in tokens
            ])
            vectors = np.stack([self.token_embed(t) for t in tokens])
            return (vectors * weights[:, None]).sum(axis=0) / weights.sum()

        return (
            np.stack([weighted(t) for t in texts_a]),
            np.stack([weighted(t) for t in texts_b]),
        )

    # -- top-k neighbours (blocked kernel) ---------------------------------

    def candidates(self, dataset: EMDataset) -> set[tuple[str, str]]:
        a_vecs, b_vecs = self._vectors(dataset)
        a_norm = _normalize(a_vecs)
        b_norm = _normalize(b_vecs)
        k = min(self.k, len(dataset.source_b))
        blocks = [
            (lo, min(lo + self.row_block, len(a_norm)))
            for lo in range(0, len(a_norm), self.row_block)
        ]

        def top_rows(block: tuple[int, int]) -> np.ndarray:
            lo, hi = block
            sims = a_norm[lo:hi] @ b_norm.T
            return np.argpartition(-sims, k - 1, axis=1)[:, :k]

        pmap = self.parallel or ParallelMap(workers=0)
        tops = pmap.map(top_rows, blocks, name="blocking.topk")
        out: set[tuple[str, str]] = set()
        for (lo, _hi), top in zip(blocks, tops):
            for i, row in enumerate(top):
                rid_a = dataset.source_a[lo + i].rid
                for j in row:
                    out.add((rid_a, dataset.source_b[int(j)].rid))
        return out

    def candidates_reference(self, dataset: EMDataset) -> set[tuple[str, str]]:
        """Pre-vectorization kernel: per-text embedding + one dense
        similarity matrix (equivalence/bench baseline)."""
        a_vecs, b_vecs = self._vectors_reference(dataset)
        a_norm = _normalize(a_vecs)
        b_norm = _normalize(b_vecs)
        sims = a_norm @ b_norm.T
        k = min(self.k, len(dataset.source_b))
        out: set[tuple[str, str]] = set()
        top = np.argpartition(-sims, k - 1, axis=1)[:, :k]
        for i, record in enumerate(dataset.source_a):
            for j in top[i]:
                out.add((record.rid, dataset.source_b[int(j)].rid))
        return out


def _normalize(matrix: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    return np.divide(
        matrix, norms, out=np.zeros_like(matrix, dtype=float), where=norms > 0
    )
