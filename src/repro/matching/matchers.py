"""Entity matchers along the tutorial's progression (§3.1–§3.2):

rule-based similarity (the traditional baseline) → static-word-embedding
matcher (first-generation PLMs) → foundation-model prompting (zero/few-shot).
The fine-tuned-transformer matcher (Ditto) lives in
:mod:`repro.matching.ditto`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.datasets.em import Record
from repro.foundation.model import FoundationModel
from repro.foundation.prompts import matching_demo, matching_prompt
from repro.errors import NotFittedError, ReproError
from repro.ml.metrics import PRF, precision_recall_f1
from repro.ml.models import LogisticRegression
from repro.obs import metrics as obs_metrics
from repro.obs import tracing
from repro.resilience import FallbackChain
from repro.text.similarity import (
    jaccard_similarity,
    jaro_winkler_similarity,
    levenshtein_similarity,
    monge_elkan_similarity,
    numeric_similarity,
)

Pair = tuple[Record, Record]


class EntityMatcher:
    """Predicts match (1) / non-match (0) for record pairs."""

    def predict(self, pairs: list[Pair]) -> np.ndarray:
        raise NotImplementedError

    def evaluate(self, pairs: list[Pair], labels: np.ndarray) -> PRF:
        with tracing.span("matching.evaluate", matcher=type(self).__name__,
                          pairs=len(pairs)):
            obs_metrics.counter("matching.evaluations").inc()
            obs_metrics.counter("matching.pairs_compared").inc(len(pairs))
            return precision_recall_f1(np.asarray(labels), self.predict(pairs))


def attribute_similarities(a: Record, b: Record) -> np.ndarray:
    """Per-attribute similarity features over the union of attributes.

    String attributes contribute Jaccard + Jaro-Winkler + Monge-Elkan;
    numeric attributes contribute relative closeness; missing values
    contribute a neutral 0.5 (absence is not evidence either way).
    """
    keys = sorted(set(a.attributes) | set(b.attributes))
    features: list[float] = []
    for key in keys:
        va = a.attributes.get(key)
        vb = b.attributes.get(key)
        if va is None or vb is None:
            features.extend([0.5, 0.5, 0.5])
            continue
        if isinstance(va, (int, float)) and isinstance(vb, (int, float)):
            sim = numeric_similarity(float(va), float(vb))
            features.extend([sim, sim, sim])
            continue
        sa, sb = str(va), str(vb)
        features.append(jaccard_similarity(sa, sb))
        features.append(jaro_winkler_similarity(sa, sb))
        features.append(monge_elkan_similarity(sa, sb))
    # Whole-record similarities round out the vector.
    features.append(jaccard_similarity(a.value_text(), b.value_text()))
    features.append(levenshtein_similarity(a.value_text()[:60], b.value_text()[:60]))
    return np.array(features)


class RuleBasedMatcher(EntityMatcher):
    """Threshold on mean attribute similarity — the no-learning baseline."""

    def __init__(self, threshold: float = 0.62):
        self.threshold = threshold

    def score(self, a: Record, b: Record) -> float:
        return float(attribute_similarities(a, b).mean())

    def predict(self, pairs: list[Pair]) -> np.ndarray:
        return np.array(
            [1 if self.score(a, b) >= self.threshold else 0 for a, b in pairs]
        )


class EmbeddingMatcher(EntityMatcher):
    """First-generation-PLM matcher (DeepER-style): word-embedding features
    plus string features, classified by logistic regression.

    ``embed`` maps text to a static embedding (skip-gram / GloVe / fastText).
    """

    def __init__(self, embed: Callable[[str], np.ndarray],
                 use_string_features: bool = True, epochs: int = 300):
        self.embed = embed
        self.use_string_features = use_string_features
        self._clf = LogisticRegression(lr=0.5, epochs=epochs)
        self.fitted = False

    def features(self, a: Record, b: Record) -> np.ndarray:
        keys = sorted(set(a.attributes) | set(b.attributes))
        feats: list[float] = []
        for key in keys:
            va, vb = a.attributes.get(key), b.attributes.get(key)
            if va is None or vb is None:
                feats.append(0.5)
                continue
            ea, eb = self.embed(str(va)), self.embed(str(vb))
            feats.append(_cosine(ea, eb))
        feats.append(_cosine(self.embed(a.value_text()), self.embed(b.value_text())))
        if self.use_string_features:
            feats.extend(attribute_similarities(a, b))
        return np.array(feats)

    def fit(self, pairs: list[Pair], labels: np.ndarray) -> "EmbeddingMatcher":
        X = np.stack([self.features(a, b) for a, b in pairs])
        y = np.asarray(labels)
        # EM training sets are match-poor; oversample the minority class so
        # the classifier cannot win by predicting all-negative.
        positives = np.flatnonzero(y == 1)
        negatives = np.flatnonzero(y == 0)
        if len(positives) and len(negatives):
            minority, majority = sorted((positives, negatives), key=len)
            repeat = len(majority) // max(len(minority), 1)
            if repeat > 1:
                X = np.vstack([X, np.repeat(X[minority], repeat - 1, axis=0)])
                y = np.concatenate([y, np.repeat(y[minority], repeat - 1)])
        self._clf.fit(X, y)
        self.fitted = True
        return self

    def predict(self, pairs: list[Pair]) -> np.ndarray:
        X = np.stack([self.features(a, b) for a, b in pairs])
        return self._clf.predict(X)


class FoundationModelMatcher(EntityMatcher):
    """Prompt a foundation model per pair (§3.1(2)): zero-shot with no
    demonstrations, few-shot when ``demonstrations`` are provided.

    ``strict=True`` makes a flaky completion raise (after the model's own
    retries) instead of degrading to an echo answer — the mode
    :class:`FallbackMatcher` needs so it can hand the pair to a lower tier.
    """

    def __init__(self, model: FoundationModel,
                 demonstrations: list[tuple[Record, Record, int]] | None = None,
                 strict: bool = False):
        self.model = model
        self.strict = strict
        self.demo_pairs = [
            matching_demo(a.text(), b.text(), bool(label))
            for a, b, label in (demonstrations or [])
        ]

    @property
    def num_shots(self) -> int:
        return len(self.demo_pairs)

    def predict_one(self, a: Record, b: Record) -> int:
        prompt = matching_prompt(a.text(), b.text(), self.demo_pairs)
        answer = self.model.complete(prompt, strict=self.strict)
        return 1 if answer.text.strip().lower() == "yes" else 0

    def predict(self, pairs: list[Pair]) -> np.ndarray:
        return np.array([self.predict_one(a, b) for a, b in pairs])


class FallbackMatcher(EntityMatcher):
    """Per-pair degradation across matcher tiers: FM → PLM → rules.

    Each pair is predicted by the best tier that does not raise a
    :class:`~repro.errors.ReproError` (unfitted PLM matchers and exhausted
    foundation-model retries both count as tier failures).  Which tier
    served each pair is counted in ``fallback.matcher.tier.<name>`` and in
    :meth:`tier_counts` — the §3.1 "flaky completions" failure mode, made
    survivable.
    """

    def __init__(self, tiers: list[tuple[str, EntityMatcher]]):
        self.matchers = dict(tiers)
        self.chain = FallbackChain(
            "matcher",
            [(name, self._tier_fn(matcher)) for name, matcher in tiers],
            catch=(ReproError,),
        )

    @staticmethod
    def _tier_fn(matcher: EntityMatcher):
        def predict_pair(a: Record, b: Record) -> int:
            if getattr(matcher, "fitted", True) is False:
                raise NotFittedError(f"{type(matcher).__name__} is not fitted")
            return int(matcher.predict([(a, b)])[0])
        return predict_pair

    def predict_one(self, a: Record, b: Record) -> tuple[int, str]:
        """(prediction, serving tier name) for one pair."""
        return self.chain.serve(a, b)

    def predict(self, pairs: list[Pair]) -> np.ndarray:
        return np.array([self.predict_one(a, b)[0] for a, b in pairs])

    def tier_counts(self) -> dict[str, int]:
        """Pairs served per tier since construction."""
        return self.chain.tier_counts()


def _cosine(a: np.ndarray, b: np.ndarray) -> float:
    denom = np.linalg.norm(a) * np.linalg.norm(b)
    if denom == 0:
        return 0.0
    return float(a @ b / denom)
