"""Ditto-style entity matching with a fine-tuned transformer (§3.2(3)).

Li et al.'s Ditto feeds serialized record pairs through BERT and classifies
the [CLS] state.  What makes that work is BERT's ability to *align* tokens of
the two records through attention.  At this library's scale a 2-layer
encoder cannot learn alignment from a handful of labels, so the matcher makes
the alignment explicit — the ESIM/BERTScore formulation of the same idea:

1. serialize both records (``col <name> val <value>`` streams, with optional
   domain-knowledge emphasis markers);
2. embed each token with the pre-trained encoder — a learnable mix of the
   embedding layer and the contextual output;
3. compute the IDF-weighted soft-alignment score matrix between the two
   token sequences (each token aligns to its best counterpart);
4. classify with a small learned layer over the alignment statistics,
   fine-tuning the whole stack end-to-end.

Data augmentation (token dropping) regularizes small training sets, as in
the original paper.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.datasets.em import Record
from repro.errors import NotFittedError
from repro.matching.matchers import EntityMatcher, Pair
from repro.nn.functional import cross_entropy
from repro.nn.layers import Linear
from repro.nn.optim import Adam, clip_grad_norm
from repro.nn.tensor import Tensor
from repro.plm.model import MiniBert


def serialize_record(record: Record, emphasize: set[str] | None = None) -> str:
    """Ditto's ``COL name VAL value`` serialization (lower-cased here).

    Attributes named in ``emphasize`` get their values wrapped in ``^`` marks
    — the domain-knowledge injection hook: emphasized values are repeated,
    doubling their weight in the alignment score.
    """
    parts = []
    for key, value in record.attributes.items():
        if value is None:
            continue
        rendered = str(value)
        if emphasize and key in emphasize:
            rendered = f"{rendered} {rendered}"
        parts.append(f"col {key} val {rendered}")
    return " ".join(parts)


class DittoMatcher(EntityMatcher):
    """Fine-tuned PLM matcher with explicit token alignment."""

    def __init__(self, encoder: MiniBert, emphasize: set[str] | None = None,
                 augment: bool = False, lr: float = 5e-3,
                 context_mix: float = 0.1, seed: int = 0):
        self.encoder = encoder
        self.emphasize = emphasize
        self.augment = augment
        rng = np.random.default_rng(seed)
        #: Learnable mixing weight between embedding-layer and contextual
        #: token representations used for alignment.
        self.gamma = Tensor(np.array([context_mix]), requires_grad=True)
        self.scorer = Linear(3, 2, rng)
        # Warm-start the head with its known semantics — higher alignment
        # means match — so the few labels calibrate rather than discover it.
        self.scorer.weight.data = np.array(
            [[-0.5, 0.5], [-0.5, 0.5], [0.0, 0.0]]
        )
        # The scorer (and gamma) train fast; the pre-trained encoder gets a
        # 10x smaller rate so fine-tuning refines rather than erases it.
        self._head_optimizer = Adam(self.scorer.parameters() + [self.gamma], lr=lr)
        self._encoder_optimizer = Adam(self.encoder.parameters(), lr=lr * 0.1)
        self._rng = rng
        self._idf: dict[int, float] = {}
        self._default_idf = 1.0
        self.fitted = False

    # -- encoding ---------------------------------------------------------------

    def _texts(self, pairs: list[Pair]) -> list[tuple[str, str]]:
        return [
            (
                serialize_record(a, self.emphasize),
                serialize_record(b, self.emphasize),
            )
            for a, b in pairs
        ]

    def _token_ids(self, text: str) -> np.ndarray:
        ids = self.encoder.vocab.encode(text)[: self.encoder.max_len]
        return np.array(ids if ids else [self.encoder.vocab.unk_id])

    def _fit_idf(self, texts: list[tuple[str, str]]) -> None:
        counts: Counter[int] = Counter()
        n = 0
        for left, right in texts:
            for side in (left, right):
                counts.update(set(self._token_ids(side).tolist()))
                n += 1
        self._idf = {t: float(np.log(max(n, 2) / c)) for t, c in counts.items()}
        self._default_idf = float(np.log(max(n, 2)))

    def _weights(self, ids: np.ndarray) -> np.ndarray:
        return np.array([self._idf.get(int(t), self._default_idf) for t in ids])

    # -- forward ------------------------------------------------------------------

    def _token_reps(self, ids: np.ndarray) -> Tensor:
        """Alignment representations: normalized embedding-layer vectors plus
        ``gamma`` times normalized contextual vectors.

        Both parts are L2-normalized per token *before* mixing — the
        embedding table (init std 0.02) and the LayerNormed encoder output
        (norm ≈ √dim) live on wildly different scales, and without this the
        contextual part silently dominates.
        """
        base = _l2_normalize(self.encoder.tok_embed(ids[None, :])[0])
        contextual = _l2_normalize(self.encoder(ids[None, :])[0])
        return base + contextual * self.gamma

    def _pair_features(self, left_ids: np.ndarray, right_ids: np.ndarray) -> Tensor:
        """Alignment statistics: recall-score, precision-score, product.

        Raw scores live in a narrow band near 1.0, so they are affinely
        rescaled (fixed transform) to give the scorer a usable dynamic range.
        """
        ha = self._token_reps(left_ids)
        hb = self._token_reps(right_ids)
        na = _l2_normalize(ha)
        nb = _l2_normalize(hb)
        sim = na @ nb.transpose(1, 0)
        wa = self._weights(left_ids)
        wb = self._weights(right_ids)
        recall = (sim.max(axis=1) * Tensor(wa)).sum() * (1.0 / max(wa.sum(), 1e-9))
        precision = (sim.max(axis=0) * Tensor(wb)).sum() * (1.0 / max(wb.sum(), 1e-9))
        recall = (recall - 0.5) * 8.0
        precision = (precision - 0.5) * 8.0
        return recall.reshape(1).concat(
            [precision.reshape(1), (recall * precision * 0.25).reshape(1)], axis=0
        )

    def _logits(self, texts: list[tuple[str, str]]) -> Tensor:
        rows = [
            self._pair_features(self._token_ids(a), self._token_ids(b)).reshape(1, 3)
            for a, b in texts
        ]
        feats = rows[0] if len(rows) == 1 else rows[0].concat(rows[1:], axis=0)
        return self.scorer(feats)

    # -- training -------------------------------------------------------------------

    def _augment_text(self, text: str) -> str:
        tokens = text.split()
        if len(tokens) < 4:
            return text
        i = int(self._rng.integers(len(tokens)))
        return " ".join(t for j, t in enumerate(tokens) if j != i)

    def fit(self, pairs: list[Pair], labels: np.ndarray,
            epochs: int = 10, batch_size: int = 16) -> "DittoMatcher":
        texts = self._texts(pairs)
        labels = np.asarray(labels)
        if self.augment:
            texts = texts + [
                (self._augment_text(a), self._augment_text(b)) for a, b in texts
            ]
            labels = np.concatenate([labels, labels])
        self._fit_idf(texts)
        n = len(texts)
        positives = np.flatnonzero(labels == 1)
        negatives = np.flatnonzero(labels == 0)
        # Small label budgets still need enough optimizer steps to move the
        # scorer off its random init, hence the floor on total steps.
        total_steps = max(epochs * max(1, n // batch_size), 120)
        for _ in range(total_steps):
            if len(positives) and len(negatives):
                half = batch_size // 2
                batch = np.concatenate([
                    self._rng.choice(positives, half),
                    self._rng.choice(negatives, batch_size - half),
                ])
            else:
                batch = self._rng.choice(n, min(batch_size, n), replace=False)
            logits = self._logits([texts[i] for i in batch])
            loss = cross_entropy(logits, labels[batch])
            self._head_optimizer.zero_grad()
            self._encoder_optimizer.zero_grad()
            loss.backward()
            clip_grad_norm(
                self._head_optimizer.parameters + self._encoder_optimizer.parameters,
                5.0,
            )
            self._head_optimizer.step()
            self._encoder_optimizer.step()
        self.fitted = True
        return self

    def predict(self, pairs: list[Pair]) -> np.ndarray:
        if not self.fitted:
            raise NotFittedError("DittoMatcher not fitted")
        texts = self._texts(pairs)
        out = []
        for lo in range(0, len(texts), 64):
            logits = self._logits(texts[lo : lo + 64]).numpy()
            out.append(logits.argmax(axis=1))
        return np.concatenate(out)


def _l2_normalize(x: Tensor) -> Tensor:
    return x * ((x * x).sum(axis=-1, keepdims=True) + 1e-12).pow(-0.5)
