"""Column type annotation (tutorial §3.2(2)(3)).

Three annotators along the tutorial's progression:

- :class:`FeatureAnnotator` — hand-crafted character/shape statistics into a
  random forest (the pre-PLM baseline, Sherlock-style);
- :class:`PLMAnnotator` — fine-tuned transformer over the serialized column
  (values + header), single task;
- :class:`DoduoAnnotator` — the Doduo recipe: the same encoder reads the
  column *with its table context* and is trained multi-task (type label +
  auxiliary table-domain label) through a shared encoder.
"""

from __future__ import annotations

import re

import numpy as np

from repro.datasets.columns import COLUMN_TYPES, ColumnSample
from repro.errors import NotFittedError
from repro.ml.models import RandomForestClassifier
from repro.nn.functional import cross_entropy
from repro.nn.optim import Adam, clip_grad_norm
from repro.plm.finetune import SequenceClassifier
from repro.plm.model import ClassifierHead, MiniBert

_PHONE_RE = re.compile(r"^\d{3}[- ]\d{3}[- ]\d{4}$")
_YEAR_RE = re.compile(r"^(19|20)\d\d$")
_PRICE_RE = re.compile(r"^\d+\.\d{2}$")


class ColumnAnnotator:
    """Predicts a semantic type per column sample."""

    labels = list(COLUMN_TYPES)

    def fit(self, samples: list[ColumnSample]) -> "ColumnAnnotator":
        raise NotImplementedError

    def predict(self, samples: list[ColumnSample]) -> list[str]:
        raise NotImplementedError

    def accuracy(self, samples: list[ColumnSample]) -> float:
        predictions = self.predict(samples)
        hits = sum(1 for p, s in zip(predictions, samples) if p == s.label)
        return hits / len(samples) if samples else 0.0


def column_features(sample: ColumnSample) -> np.ndarray:
    """Shape statistics of the value strings (no semantics)."""
    values = sample.values
    lengths = np.array([len(v) for v in values], dtype=float)
    digit_fracs = np.array(
        [sum(c.isdigit() for c in v) / max(len(v), 1) for v in values]
    )
    alpha_fracs = np.array(
        [sum(c.isalpha() for c in v) / max(len(v), 1) for v in values]
    )
    space_counts = np.array([v.count(" ") for v in values], dtype=float)
    distinct_ratio = len(set(values)) / max(len(values), 1)
    phone_frac = np.mean([bool(_PHONE_RE.match(v)) for v in values])
    year_frac = np.mean([bool(_YEAR_RE.match(v)) for v in values])
    price_frac = np.mean([bool(_PRICE_RE.match(v)) for v in values])
    comma_frac = np.mean(["," in v for v in values])
    return np.array([
        lengths.mean(), lengths.std(),
        digit_fracs.mean(), alpha_fracs.mean(),
        space_counts.mean(), distinct_ratio,
        phone_frac, year_frac, price_frac, comma_frac,
    ])


class FeatureAnnotator(ColumnAnnotator):
    """Random forest over :func:`column_features`."""

    def __init__(self, n_trees: int = 30, max_depth: int = 8, seed: int = 0):
        self._clf = RandomForestClassifier(
            n_trees=n_trees, max_depth=max_depth, seed=seed
        )
        self.fitted = False

    def fit(self, samples: list[ColumnSample]) -> "FeatureAnnotator":
        X = np.stack([column_features(s) for s in samples])
        y = np.array([self.labels.index(s.label) for s in samples])
        self._clf.fit(X, y)
        self.fitted = True
        return self

    def predict(self, samples: list[ColumnSample]) -> list[str]:
        if not self.fitted:
            raise NotFittedError("FeatureAnnotator not fitted")
        X = np.stack([column_features(s) for s in samples])
        return [self.labels[int(i)] for i in self._clf.predict(X)]


class PLMAnnotator(ColumnAnnotator):
    """Single-task fine-tuned transformer over serialized columns."""

    def __init__(self, encoder: MiniBert, lr: float = 2e-3, seed: int = 0,
                 include_context: bool = False):
        self.encoder = encoder
        self.include_context = include_context
        self._clf = SequenceClassifier(
            encoder, num_classes=len(self.labels), lr=lr, seed=seed
        )

    def _texts(self, samples: list[ColumnSample]) -> list[str]:
        return [s.serialized(include_context=self.include_context) for s in samples]

    def fit(self, samples: list[ColumnSample], epochs: int = 6,
            batch_size: int = 16) -> "PLMAnnotator":
        y = np.array([self.labels.index(s.label) for s in samples])
        self._clf.fit(self._texts(samples), y, epochs=epochs, batch_size=batch_size)
        return self

    def predict(self, samples: list[ColumnSample]) -> list[str]:
        predictions = self._clf.predict(self._texts(samples))
        return [self.labels[int(i)] for i in predictions]


class DoduoAnnotator(ColumnAnnotator):
    """Multi-task PLM annotator with table context (the Doduo recipe).

    One shared encoder serves two heads trained jointly:

    - a **type head** reading the column itself (header + values);
    - a **domain head** reading the column *with its table context* — which
      table family the column sits in.

    At prediction time the heads compose: type logits are shifted by the log
    probability of each type's home domain, so columns whose values alone
    are ambiguous (a year column could be a paper year or a product release
    year) get disambiguated by their table — the effect Doduo obtains from
    encoding all of a table's columns jointly.
    """

    domains = ["products", "restaurants", "papers"]
    _DOMAIN_OF_LABEL = {
        "product_name": 0, "brand": 0, "category": 0, "price": 0,
        "storage": 0, "release_year": 0,
        "restaurant_name": 1, "cuisine": 1, "city": 1, "address": 1, "phone": 1,
        "paper_title": 2, "authors": 2, "venue": 2, "year": 2,
    }

    def __init__(self, encoder: MiniBert, lr: float = 2e-3, seed: int = 0,
                 aux_weight: float = 0.5, context_weight: float = 2.0):
        self.encoder = encoder
        self.aux_weight = aux_weight
        self.context_weight = context_weight
        self.type_head = ClassifierHead(encoder.dim, len(self.labels), seed=seed)
        self.domain_head = ClassifierHead(encoder.dim, len(self.domains), seed=seed + 1)
        self._optimizer = Adam(
            encoder.parameters()
            + self.type_head.parameters()
            + self.domain_head.parameters(),
            lr=lr,
        )
        self._rng = np.random.default_rng(seed)
        self.fitted = False

    def _encode(self, samples: list[ColumnSample],
                include_context: bool) -> tuple[np.ndarray, np.ndarray]:
        texts = [s.serialized(include_context=include_context) for s in samples]
        return self.encoder.batch_encode(texts)

    def fit(self, samples: list[ColumnSample], epochs: int = 6,
            batch_size: int = 16) -> "DoduoAnnotator":
        type_ids, type_masks = self._encode(samples, include_context=False)
        ctx_ids, ctx_masks = self._encode(samples, include_context=True)
        type_labels = np.array([self.labels.index(s.label) for s in samples])
        domain_labels = np.array([self.domains.index(s.domain) for s in samples])
        n = len(samples)
        for _ in range(epochs):
            order = self._rng.permutation(n)
            for lo in range(0, n, batch_size):
                batch = order[lo : lo + batch_size]
                cls_type = self.encoder.cls_embedding(
                    type_ids[batch], mask=type_masks[batch]
                )
                cls_ctx = self.encoder.cls_embedding(
                    ctx_ids[batch], mask=ctx_masks[batch]
                )
                loss = cross_entropy(self.type_head(cls_type), type_labels[batch])
                aux = cross_entropy(self.domain_head(cls_ctx), domain_labels[batch])
                total = loss + aux * self.aux_weight
                self._optimizer.zero_grad()
                total.backward()
                clip_grad_norm(self._optimizer.parameters, 5.0)
                self._optimizer.step()
        self.fitted = True
        return self

    def predict(self, samples: list[ColumnSample]) -> list[str]:
        if not self.fitted:
            raise NotFittedError("DoduoAnnotator not fitted")
        type_ids, type_masks = self._encode(samples, include_context=False)
        ctx_ids, ctx_masks = self._encode(samples, include_context=True)
        domain_of_label = np.array([
            self._DOMAIN_OF_LABEL.get(label, 0) for label in self.labels
        ])
        out: list[str] = []
        for lo in range(0, len(samples), 64):
            cls_type = self.encoder.cls_embedding(
                type_ids[lo : lo + 64], mask=type_masks[lo : lo + 64]
            )
            cls_ctx = self.encoder.cls_embedding(
                ctx_ids[lo : lo + 64], mask=ctx_masks[lo : lo + 64]
            )
            type_logits = self.type_head(cls_type).numpy()
            domain_logits = self.domain_head(cls_ctx).numpy()
            domain_logp = domain_logits - _logsumexp(domain_logits)
            combined = type_logits + self.context_weight * domain_logp[:, domain_of_label]
            out.extend(self.labels[int(i)] for i in combined.argmax(axis=1))
        return out


def _logsumexp(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    return logits.max(axis=1, keepdims=True) + np.log(
        np.exp(shifted).sum(axis=1, keepdims=True)
    )
