"""Builders for unified-matching task mixtures (§3.2(5)).

Unicorn's promise is "common data matching tasks" under one model: entity
matching, column-type matching, string (alias) matching, schema matching.
These builders turn the world and the EM benchmarks into task-tagged
:class:`~repro.matching.unified.MatchingInstance` mixtures so benches,
tests and user code share one construction.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.em import EMDataset
from repro.datasets.world import World
from repro.matching.ditto import serialize_record
from repro.matching.unified import MatchingInstance


def entity_instances(dataset: EMDataset, n: int, seed: int = 0,
                     text_cap: int = 80) -> list[MatchingInstance]:
    """Entity-matching instances from a labeled pair sample."""
    labeled = dataset.labeled_pairs(n, seed=seed, match_fraction=0.5)
    return [
        MatchingInstance(
            "entity",
            serialize_record(a)[:text_cap],
            serialize_record(b)[:text_cap],
            label,
        )
        for a, b, label in labeled
    ]


def column_type_instances(world: World, n: int,
                          seed: int = 0) -> list[MatchingInstance]:
    """Does this value belong to this semantic type?"""
    rng = np.random.default_rng(seed)
    out: list[MatchingInstance] = []
    for _ in range(n):
        restaurant = world.restaurants[int(rng.integers(len(world.restaurants)))]
        if rng.random() < 0.5:
            out.append(MatchingInstance(
                "columntype", restaurant.cuisine, "cuisine", 1))
        else:
            out.append(MatchingInstance(
                "columntype", restaurant.city, "cuisine", 0))
    return out


def string_instances(world: World, n: int, seed: int = 0) -> list[MatchingInstance]:
    """String matching: is the right side a noisy variant of the left?

    Positives are typo/case/spacing variants of the same name; negatives are
    different names — a *generalizable* string-similarity pattern (unlike
    alias lookup, which is pure memorization and belongs to the knowledge
    stack, not the matcher).
    """
    from repro.datasets.em import typo

    rng = np.random.default_rng(seed)
    names = [r.name for r in world.restaurants] + [p.name for p in world.products]
    out: list[MatchingInstance] = []
    while len(out) < n:
        name = names[int(rng.integers(len(names)))]
        if rng.random() < 0.5:
            roll = rng.random()
            if roll < 0.4:
                variant = typo(name, rng)
            elif roll < 0.7:
                variant = name.upper()
            else:
                variant = "  " + name.replace(" ", "  ")
            out.append(MatchingInstance("string", name, variant, 1))
        else:
            other = names[int(rng.integers(len(names)))]
            if other == name:
                continue
            out.append(MatchingInstance("string", name, other, 0))
    return out


#: Column-name synonym table for schema-matching instances.
_SCHEMA_SYNONYMS = {
    "name": ["restaurant", "title", "label"],
    "cuisine": ["food style", "food type"],
    "city": ["town", "location"],
    "phone": ["telephone", "contact number"],
    "price": ["cost", "amount"],
    "brand": ["maker", "manufacturer"],
    "address": ["street address"],
    "year": ["publication year"],
}


def schema_instances(n: int, seed: int = 0) -> list[MatchingInstance]:
    """Schema matching: do these two column names mean the same attribute?"""
    rng = np.random.default_rng(seed)
    names = sorted(_SCHEMA_SYNONYMS)
    out: list[MatchingInstance] = []
    while len(out) < n:
        name = names[int(rng.integers(len(names)))]
        if rng.random() < 0.5:
            synonyms = _SCHEMA_SYNONYMS[name]
            out.append(MatchingInstance(
                "schema", name, synonyms[int(rng.integers(len(synonyms)))], 1))
        else:
            other = names[int(rng.integers(len(names)))]
            if other == name:
                continue
            synonyms = _SCHEMA_SYNONYMS[other]
            out.append(MatchingInstance(
                "schema", name, synonyms[int(rng.integers(len(synonyms)))], 0))
    return out


def unified_task_mixture(world: World, dataset: EMDataset,
                         per_task: int = 60,
                         seed: int = 0) -> list[MatchingInstance]:
    """The full four-task mixture, shuffled."""
    rng = np.random.default_rng(seed)
    instances = (
        entity_instances(dataset, per_task, seed=seed)
        + column_type_instances(world, per_task, seed=seed + 1)
        + string_instances(world, per_task, seed=seed + 2)
        + schema_instances(per_task, seed=seed + 3)
    )
    rng.shuffle(instances)
    return instances
