"""From pairwise match decisions to resolved entities.

Pairwise matchers emit (record, record, match?) decisions; deduplication
needs *clusters* and, per cluster, one consolidated ("golden") record — the
entity-consolidation step the tutorial's introduction cites.  Clustering is
connected components over the match graph (networkx), with an optional
conflict pass that splits low-cohesion clusters produced by erroneous
bridge edges.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable

import networkx as nx

from repro.datasets.em import Record


@dataclass
class EntityCluster:
    """One resolved entity: member records + the consolidated record."""

    members: list[Record]
    golden: Record

    @property
    def rids(self) -> frozenset[str]:
        return frozenset(r.rid for r in self.members)


@dataclass
class ResolutionResult:
    """All clusters plus the rid → cluster index map."""

    clusters: list[EntityCluster] = field(default_factory=list)

    def cluster_of(self, rid: str) -> int | None:
        for i, cluster in enumerate(self.clusters):
            if rid in cluster.rids:
                return i
        return None

    def pairs(self) -> set[tuple[str, str]]:
        """All unordered within-cluster rid pairs (the resolved matches)."""
        out: set[tuple[str, str]] = set()
        for cluster in self.clusters:
            rids = sorted(cluster.rids)
            for i, a in enumerate(rids):
                for b in rids[i + 1:]:
                    out.add((a, b))
        return out


def consolidate(members: list[Record]) -> Record:
    """Merge member records into one golden record.

    Per attribute: majority vote over non-null values; ties break toward the
    longest value (more information survives).  The golden rid concatenates
    the member rids so lineage is visible.
    """
    if not members:
        raise ValueError("cannot consolidate an empty cluster")
    attributes: dict[str, object] = {}
    keys: list[str] = []
    for record in members:
        for key in record.attributes:
            if key not in keys:
                keys.append(key)
    for key in keys:
        values = [
            record.attributes.get(key) for record in members
            if record.attributes.get(key) is not None
        ]
        if not values:
            attributes[key] = None
            continue
        counts = Counter(str(v) for v in values)
        top = max(counts.values())
        winners = [v for v in counts if counts[v] == top]
        winner = max(winners, key=len)
        # Keep the original (typed) value whose string form won.
        attributes[key] = next(v for v in values if str(v) == winner)
    rid = "+".join(sorted(r.rid for r in members))
    return Record(rid=rid, attributes=attributes)


def _cohesion(graph: nx.Graph, nodes: list[str]) -> float:
    """Edge density of the induced subgraph (1.0 = clique)."""
    n = len(nodes)
    if n < 2:
        return 1.0
    possible = n * (n - 1) / 2
    return graph.subgraph(nodes).number_of_edges() / possible


def resolve_entities(
    pairs: list[tuple[Record, Record]],
    predictions,
    min_cohesion: float = 0.0,
) -> ResolutionResult:
    """Cluster records via the predicted match graph.

    ``min_cohesion`` > 0 enables the conflict pass: a connected component
    whose edge density falls below the threshold is split by removing its
    weakest articulation — concretely, by re-clustering on the subgraph with
    its lowest-degree bridge node's edges dropped.  This bounds the damage a
    single false-positive "bridge" match can do.
    """
    graph = nx.Graph()
    records: dict[str, Record] = {}
    for (a, b), match in zip(pairs, predictions):
        records[a.rid] = a
        records[b.rid] = b
        graph.add_node(a.rid)
        graph.add_node(b.rid)
        if match:
            graph.add_edge(a.rid, b.rid)

    result = ResolutionResult()
    components: list[list[str]] = [
        sorted(c) for c in nx.connected_components(graph)
    ]
    queue = list(components)
    while queue:
        nodes = queue.pop()
        if len(nodes) > 2 and min_cohesion > 0 and \
                _cohesion(graph, nodes) < min_cohesion:
            sub = graph.subgraph(nodes).copy()
            bridges = list(nx.bridges(sub))
            if bridges:
                # Remove the bridge whose removal best balances the split.
                def imbalance(edge):
                    trial = sub.copy()
                    trial.remove_edge(*edge)
                    sizes = sorted(
                        len(c) for c in nx.connected_components(trial)
                    )
                    return sizes[-1] - sizes[0]

                bridge = min(bridges, key=imbalance)
                sub.remove_edge(*bridge)
                for component in nx.connected_components(sub):
                    queue.append(sorted(component))
                continue
        members = [records[rid] for rid in nodes]
        result.clusters.append(
            EntityCluster(members=members, golden=consolidate(members))
        )
    result.clusters.sort(key=lambda c: sorted(c.rids)[0])
    return result


def cluster_f1(result: ResolutionResult,
               true_matches: set[tuple[str, str]]) -> float:
    """Pairwise F1 of the resolved clusters against ground-truth matches."""
    predicted = result.pairs()
    truth = {tuple(sorted(p)) for p in true_matches}
    if not predicted and not truth:
        return 1.0
    tp = len(predicted & truth)
    precision = tp / len(predicted) if predicted else 0.0
    recall = tp / len(truth) if truth else 0.0
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)
