"""Column statistics and EXPLAIN rendering for :class:`~repro.table.Table`.

One vectorized pass per column produces the statistics a cost-based
optimizer needs (ROADMAP item: SQL planner): row count, null count and
fraction, distinct-value count, and min/max of the non-null values.
``Table.stats()`` returns them as plain dicts; ``Table.explain()`` renders
the same numbers as a fixed-width text report.

The numbers are exact, not sampled — tables here are in-memory and a
single ``np.unique`` per column is cheap at the scales the library runs.
The dict shape is part of the EXPLAIN ANALYZE surface: the SQL engine
embeds it in ``Database.explain(..., analyze=True)`` output, and span
attributes on ``table.filter`` / ``table.join`` / ``table.group_by``
(rows in/out, selectivity, match rate) report the same vocabulary at
execution time.
"""

from __future__ import annotations

from typing import Any

import numpy as np


def _py(value: Any) -> Any:
    """Numpy scalar -> python scalar (JSON-friendly stats values)."""
    return value.item() if isinstance(value, np.generic) else value


def column_stats(table) -> dict[str, dict[str, Any]]:
    """Exact per-column statistics: ``{name: {dtype, count, nulls,
    null_fraction, distinct, min, max}}``.

    ``distinct`` counts distinct non-null values; ``min``/``max`` are
    ``None`` for all-null columns (and compare lexicographically for str).
    """
    out: dict[str, dict[str, Any]] = {}
    n = table.num_rows
    for field in table.schema:
        mask = table.null_mask(field.name)
        values = table.column_array(field.name)
        nulls = int(mask.sum())
        non_null = values[~mask]
        if len(non_null) == 0:
            distinct, lo, hi = 0, None, None
        elif non_null.dtype == object:
            uniq = set(non_null.tolist())
            distinct, lo, hi = len(uniq), min(uniq), max(uniq)
        else:
            uniq = np.unique(non_null)
            distinct, lo, hi = len(uniq), _py(uniq[0]), _py(uniq[-1])
        out[field.name] = {
            "dtype": field.dtype,
            "count": n,
            "nulls": nulls,
            "null_fraction": (nulls / n) if n else 0.0,
            "distinct": distinct,
            "min": lo,
            "max": hi,
        }
    return out


def render_stats(table) -> str:
    """Fixed-width text report of :func:`column_stats` (served from the
    table's memoized :meth:`~repro.table.Table.stats` cache)."""
    stats = table.stats()
    header = ["column", "dtype", "count", "nulls", "null%", "distinct",
              "min", "max"]
    rows = [
        [name, s["dtype"], str(s["count"]), str(s["nulls"]),
         f"{s['null_fraction'] * 100:.1f}", str(s["distinct"]),
         _fmt(s["min"]), _fmt(s["max"])]
        for name, s in stats.items()
    ]
    widths = [max(len(header[i]), *(len(r[i]) for r in rows))
              if rows else len(header[i]) for i in range(len(header))]
    line = " | ".join(h.ljust(w) for h, w in zip(header, widths))
    sep = "-+-".join("-" * w for w in widths)
    body = "\n".join(
        " | ".join(v.ljust(w) for v, w in zip(r, widths)) for r in rows
    )
    title = f"table: {table.num_rows} rows x {table.num_columns} columns"
    return "\n".join(p for p in (title, line, sep, body) if p)


def _fmt(value: Any) -> str:
    if value is None:
        return "∅"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)
