"""An immutable, in-memory relational table.

This is the storage substrate for the whole library: the SQL engine, the data
lake, the cleaning stack and the pipeline operators all move :class:`Table`
objects around.  Design points:

- columnar storage (one Python list per column) with ``None`` as null;
- every operation returns a *new* table, so pipeline stages cannot trample
  each other's inputs;
- the API is intentionally the relational core (select / project / join /
  group by / order by) plus the handful of cell-level mutators the cleaning
  stack needs (``with_cell``, ``map_column``).
"""

from __future__ import annotations

import csv
import io
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.errors import SchemaError
from repro.table.schema import Field, Schema, coerce, infer_dtype, validate

Row = tuple[Any, ...]

_AGGREGATES: dict[str, Callable[[list[Any]], Any]] = {
    "count": lambda xs: len(xs),
    "sum": lambda xs: sum(xs) if xs else None,
    "min": lambda xs: min(xs) if xs else None,
    "max": lambda xs: max(xs) if xs else None,
    "avg": lambda xs: (sum(xs) / len(xs)) if xs else None,
}


class Table:
    """An immutable relational table with a fixed :class:`Schema`."""

    def __init__(self, schema: Schema, columns: Sequence[Sequence[Any]]):
        if len(columns) != len(schema):
            raise SchemaError(
                f"schema has {len(schema)} columns but {len(columns)} were given"
            )
        lengths = {len(c) for c in columns}
        if len(lengths) > 1:
            raise SchemaError(f"ragged columns: lengths {sorted(lengths)}")
        for field, column in zip(schema, columns):
            for value in column:
                if not validate(value, field.dtype):
                    raise SchemaError(
                        f"column {field.name!r}: value {value!r} is not {field.dtype}"
                    )
        self._schema = schema
        self._columns = tuple(list(c) for c in columns)
        self._num_rows = len(columns[0]) if columns else 0

    # -- construction -----------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        rows: Iterable[Sequence[Any]],
        schema: Schema | Sequence[tuple[str, str]] | None = None,
        names: Sequence[str] | None = None,
    ) -> "Table":
        """Build a table from row tuples.

        Either ``schema`` is given, or ``names`` is given and dtypes are
        inferred per column.
        """
        materialized = [tuple(r) for r in rows]
        if schema is not None and not isinstance(schema, Schema):
            schema = Schema(schema)
        if schema is None:
            if names is None:
                raise SchemaError("from_rows needs either a schema or column names")
            for row in materialized:
                if len(row) != len(names):
                    raise SchemaError(
                        f"row {row!r} has {len(row)} values but {len(names)} names given"
                    )
            cols = [[r[i] for r in materialized] for i in range(len(names))]
            schema = Schema(Field(n, infer_dtype(c)) for n, c in zip(names, cols))
            cols = [
                [coerce(v, f.dtype) for v in c] for f, c in zip(schema, cols)
            ]
            return cls(schema, cols)
        for row in materialized:
            if len(row) != len(schema):
                raise SchemaError(
                    f"row {row!r} has {len(row)} values; schema expects {len(schema)}"
                )
        cols = [
            [coerce(row[i], field.dtype) for row in materialized]
            for i, field in enumerate(schema)
        ]
        return cls(schema, cols)

    @classmethod
    def from_dict(cls, data: dict[str, Sequence[Any]]) -> "Table":
        """Build a table from ``{column name: values}`` with inferred dtypes."""
        schema = Schema(Field(n, infer_dtype(v)) for n, v in data.items())
        cols = [
            [coerce(v, f.dtype) for v in values]
            for f, values in zip(schema, data.values())
        ]
        return cls(schema, cols)

    @classmethod
    def empty(cls, schema: Schema | Sequence[tuple[str, str]]) -> "Table":
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        return cls(schema, [[] for _ in range(len(schema))])

    @classmethod
    def from_csv(cls, text: str, delimiter: str = ",") -> "Table":
        """Parse CSV text (header row required); dtypes are inferred.

        Empty strings become nulls, matching the usual CSV convention.
        """
        reader = csv.reader(io.StringIO(text), delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration as exc:
            raise SchemaError("CSV input is empty") from exc
        raw_rows = [row for row in reader if row]
        parsed = [
            tuple(None if cell == "" else cell for cell in row) for row in raw_rows
        ]
        cols: list[list[Any]] = [[r[i] for r in parsed] for i in range(len(header))]
        typed_cols = []
        fields = []
        for name, col in zip(header, cols):
            dtype = _csv_dtype(col)
            typed_cols.append([coerce(v, dtype) for v in col])
            fields.append(Field(name, dtype))
        return cls(Schema(fields), typed_cols)

    # -- inspection --------------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def num_rows(self) -> int:
        return self._num_rows

    @property
    def num_columns(self) -> int:
        return len(self._schema)

    def column(self, name: str) -> list[Any]:
        """Return a copy of the named column's values."""
        return list(self._columns[self._schema.index_of(name)])

    def row(self, i: int) -> Row:
        if not -self._num_rows <= i < self._num_rows:
            raise IndexError(f"row {i} out of range for table of {self._num_rows}")
        return tuple(col[i] for col in self._columns)

    def rows(self) -> Iterator[Row]:
        for i in range(self._num_rows):
            yield tuple(col[i] for col in self._columns)

    def row_dicts(self) -> Iterator[dict[str, Any]]:
        names = self._schema.names
        for row in self.rows():
            yield dict(zip(names, row))

    def cell(self, i: int, name: str) -> Any:
        return self._columns[self._schema.index_of(name)][i]

    def __len__(self) -> int:
        return self._num_rows

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return self._schema == other._schema and self._columns == other._columns

    def __hash__(self) -> int:  # tables are mutable-free; hash by identity basics
        return hash((self._schema, tuple(tuple(c) for c in self._columns)))

    def __repr__(self) -> str:
        return f"Table({self._schema!r}, rows={self._num_rows})"

    def to_csv(self, delimiter: str = ",") -> str:
        out = io.StringIO()
        writer = csv.writer(out, delimiter=delimiter, lineterminator="\n")
        writer.writerow(self._schema.names)
        for row in self.rows():
            writer.writerow(["" if v is None else v for v in row])
        return out.getvalue()

    def pretty(self, max_rows: int = 20) -> str:
        """Fixed-width textual rendering, for examples and benches."""
        names = self._schema.names
        shown = [tuple("∅" if v is None else str(v) for v in r) for r in self.rows()]
        shown = shown[:max_rows]
        widths = [len(n) for n in names]
        for row in shown:
            widths = [max(w, len(v)) for w, v in zip(widths, row)]
        line = " | ".join(n.ljust(w) for n, w in zip(names, widths))
        sep = "-+-".join("-" * w for w in widths)
        body = "\n".join(
            " | ".join(v.ljust(w) for v, w in zip(row, widths)) for row in shown
        )
        tail = "" if self._num_rows <= max_rows else f"\n… {self._num_rows - max_rows} more rows"
        return f"{line}\n{sep}\n{body}{tail}" if body else f"{line}\n{sep}{tail}"

    # -- relational operators ---------------------------------------------

    def select(self, predicate: Callable[[dict[str, Any]], bool]) -> "Table":
        """Keep rows for which ``predicate(row_dict)`` is truthy."""
        keep = [i for i, rd in enumerate(self.row_dicts()) if predicate(rd)]
        return self._take(keep)

    def project(self, names: Sequence[str]) -> "Table":
        """Keep only the named columns, in the given order."""
        names = list(names)
        sub = self._schema.project(names)
        cols = [list(self._columns[self._schema.index_of(n)]) for n in names]
        return Table(sub, cols)

    def drop(self, names: Sequence[str]) -> "Table":
        keep = [n for n in self._schema.names if n not in set(names)]
        self._schema.drop(list(names))  # validates
        return self.project(keep)

    def rename(self, mapping: dict[str, str]) -> "Table":
        return Table(self._schema.rename(mapping), self._columns)

    def with_column(self, name: str, dtype: str, values: Sequence[Any]) -> "Table":
        """Append a column; values are coerced to ``dtype``."""
        if name in self._schema:
            raise SchemaError(f"column {name!r} already exists")
        if len(values) != self._num_rows:
            raise SchemaError(
                f"column has {len(values)} values; table has {self._num_rows} rows"
            )
        schema = Schema(list(self._schema.fields) + [Field(name, dtype)])
        cols = list(self._columns) + [[coerce(v, dtype) for v in values]]
        return Table(schema, cols)

    def with_cell(self, i: int, name: str, value: Any) -> "Table":
        """Return a copy with one cell replaced (the repair primitive)."""
        j = self._schema.index_of(name)
        value = coerce(value, self._schema.dtypes[j])
        cols = [list(c) for c in self._columns]
        cols[j][i] = value
        return Table(self._schema, cols)

    def map_column(self, name: str, fn: Callable[[Any], Any], dtype: str | None = None) -> "Table":
        """Apply ``fn`` to every value of a column (nulls included)."""
        j = self._schema.index_of(name)
        new_dtype = dtype or self._schema.dtypes[j]
        cols = [list(c) for c in self._columns]
        cols[j] = [coerce(fn(v), new_dtype) for v in cols[j]]
        fields = [
            Field(f.name, new_dtype if f.name == name else f.dtype)
            for f in self._schema
        ]
        return Table(Schema(fields), cols)

    def order_by(self, name: str, descending: bool = False) -> "Table":
        """Sort rows by a column; nulls sort last regardless of direction."""
        col = self._columns[self._schema.index_of(name)]
        idx = list(range(self._num_rows))
        present = [i for i in idx if col[i] is not None]
        absent = [i for i in idx if col[i] is None]
        present.sort(key=lambda i: col[i], reverse=descending)
        return self._take(present + absent)

    def limit(self, n: int) -> "Table":
        return self._take(list(range(min(n, self._num_rows))))

    def distinct(self) -> "Table":
        seen: set[Row] = set()
        keep = []
        for i, row in enumerate(self.rows()):
            if row not in seen:
                seen.add(row)
                keep.append(i)
        return self._take(keep)

    def union(self, other: "Table") -> "Table":
        """Concatenate rows of two tables with identical schemas."""
        if self._schema != other._schema:
            raise SchemaError(
                f"union requires identical schemas: {self._schema} vs {other._schema}"
            )
        cols = [a + b for a, b in zip(self._columns, other._columns)]
        return Table(self._schema, cols)

    def join(
        self,
        other: "Table",
        on: Sequence[tuple[str, str]] | str,
        how: str = "inner",
        suffix: str = "_r",
    ) -> "Table":
        """Hash join.  ``on`` is a column name shared by both sides, or a list
        of ``(left, right)`` name pairs.  ``how`` is ``inner`` or ``left``.

        Join keys compare by equality; null keys never match (SQL semantics).
        Right-side columns that clash with a left-side name get ``suffix``.
        """
        if how not in ("inner", "left"):
            raise SchemaError(f"unsupported join type {how!r}")
        if isinstance(on, str):
            pairs = [(on, on)]
        else:
            pairs = [(l, r) for l, r in on]
        left_keys = [self._schema.index_of(l) for l, _ in pairs]
        right_keys = [other._schema.index_of(r) for _, r in pairs]

        right_drop = {other._schema.index_of(r) for l, r in pairs if l == r}
        right_fields = []
        left_names = set(self._schema.names)
        kept_right_idx = []
        for j, field in enumerate(other._schema):
            if j in right_drop:
                continue
            kept_right_idx.append(j)
            name = field.name
            if name in left_names:
                name = name + suffix
            right_fields.append(Field(name, field.dtype))
        out_schema = Schema(list(self._schema.fields) + right_fields)

        index: dict[Row, list[int]] = {}
        for i in range(other._num_rows):
            key = tuple(other._columns[k][i] for k in right_keys)
            if any(v is None for v in key):
                continue
            index.setdefault(key, []).append(i)

        out_rows: list[Row] = []
        null_right = (None,) * len(kept_right_idx)
        for i in range(self._num_rows):
            key = tuple(self._columns[k][i] for k in left_keys)
            left_row = tuple(col[i] for col in self._columns)
            matches = [] if any(v is None for v in key) else index.get(key, [])
            if matches:
                for j in matches:
                    right_row = tuple(other._columns[k][j] for k in kept_right_idx)
                    out_rows.append(left_row + right_row)
            elif how == "left":
                out_rows.append(left_row + null_right)
        return Table.from_rows(out_rows, schema=out_schema)

    def group_by(
        self,
        keys: Sequence[str],
        aggregates: Sequence[tuple[str, str, str]],
    ) -> "Table":
        """Group rows and compute aggregates.

        ``aggregates`` is a list of ``(function, column, output name)`` where
        function is one of count/sum/min/max/avg.  ``count`` counts non-null
        values of its column (use any column for row counts on null-free keys).
        Aggregates skip nulls, per SQL semantics.
        """
        keys = list(keys)
        key_idx = [self._schema.index_of(k) for k in keys]
        for fn, col, _out in aggregates:
            if fn not in _AGGREGATES:
                raise SchemaError(
                    f"unknown aggregate {fn!r}; options: {sorted(_AGGREGATES)}"
                )
            self._schema.index_of(col)

        groups: dict[Row, list[int]] = {}
        order: list[Row] = []
        for i in range(self._num_rows):
            key = tuple(self._columns[k][i] for k in key_idx)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(i)

        out_fields = [self._schema.field(k) for k in keys]
        for fn, col, out in aggregates:
            if fn == "count":
                dtype = "int"
            elif fn in ("sum", "min", "max"):
                dtype = self._schema.dtype_of(col)
            else:
                dtype = "float"
            out_fields.append(Field(out, dtype))

        out_rows = []
        for key in order:
            row: list[Any] = list(key)
            for fn, col, _out in aggregates:
                j = self._schema.index_of(col)
                values = [
                    self._columns[j][i] for i in groups[key]
                    if self._columns[j][i] is not None
                ]
                result = _AGGREGATES[fn](values)
                if fn == "sum" and result is not None and self._schema.dtype_of(col) == "int":
                    result = int(result)
                row.append(result)
            out_rows.append(tuple(row))
        return Table.from_rows(out_rows, schema=Schema(out_fields))

    def sample(self, n: int, rng) -> "Table":
        """Take ``n`` rows uniformly without replacement using ``rng``
        (a :class:`numpy.random.Generator`)."""
        n = min(n, self._num_rows)
        idx = sorted(rng.choice(self._num_rows, size=n, replace=False).tolist())
        return self._take(idx)

    # -- internals ----------------------------------------------------------

    def _take(self, indices: list[int]) -> "Table":
        cols = [[c[i] for i in indices] for c in self._columns]
        return Table(self._schema, cols)


def _csv_dtype(values: list[Any]) -> str:
    """Infer a dtype for CSV cells, which all arrive as str/None."""
    def looks_int(s: str) -> bool:
        try:
            int(s)
            return True
        except ValueError:
            return False

    def looks_float(s: str) -> bool:
        try:
            float(s)
            return True
        except ValueError:
            return False

    non_null = [v for v in values if v is not None]
    if not non_null:
        return "str"
    if all(looks_int(v) for v in non_null):
        return "int"
    if all(looks_float(v) for v in non_null):
        return "float"
    lowered = {v.strip().lower() for v in non_null}
    if lowered <= {"true", "false"}:
        return "bool"
    return "str"
