"""An immutable, in-memory relational table on a numpy columnar core.

This is the storage substrate for the whole library: the SQL engine, the data
lake, the cleaning stack and the pipeline operators all move :class:`Table`
objects around.  Design points:

- columnar storage (one :class:`~repro.table.column.Column` per column: a
  numpy value array plus an explicit null mask, ``None`` as the logical null);
- every operation returns a *new* table, so pipeline stages cannot trample
  each other's inputs — tables freely share immutable column objects;
- the API is intentionally the relational core (select / project / join /
  group by / order by) plus the handful of cell-level mutators the cleaning
  stack needs (``with_cell``, ``with_cells``, ``map_column``);
- cell-level validation runs exactly once, on entry: the public constructor
  checks every value, while kernels and trusted builders
  (:meth:`Table.from_columns`) construct from already-validated columns and
  skip revalidation entirely (docs/table.md, "trusted construction");
- the hot relational kernels (``filter`` / ``join`` / ``group_by`` /
  ``order_by`` / ``distinct`` / ``union`` / ``_take``) are vectorized over
  the numpy arrays; thin ``*_reference`` twins keep the row-at-a-time
  implementations for equivalence and perf testing
  (``benchmarks/bench_ext_table.py``).
"""

from __future__ import annotations

import csv
import io
from typing import Any, Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.errors import SchemaError
from repro.obs import metrics
from repro.obs.instrument import timed
from repro.table.column import Column, factorize_objects, row_codes
from repro.table.schema import Field, Schema, coerce, infer_dtype

Row = tuple[Any, ...]

_AGGREGATES: dict[str, Callable[[list[Any]], Any]] = {
    "count": lambda xs: len(xs),
    "sum": lambda xs: sum(xs) if xs else None,
    "min": lambda xs: min(xs) if xs else None,
    "max": lambda xs: max(xs) if xs else None,
    "avg": lambda xs: (sum(xs) / len(xs)) if xs else None,
}


class Table:
    """An immutable relational table with a fixed :class:`Schema`."""

    def __init__(self, schema: Schema, columns: Sequence[Sequence[Any]]):
        if len(columns) != len(schema):
            raise SchemaError(
                f"schema has {len(schema)} columns but {len(columns)} were given"
            )
        lengths = {len(c) for c in columns}
        if len(lengths) > 1:
            raise SchemaError(f"ragged columns: lengths {sorted(lengths)}")
        built: list[Column] = []
        for field, column in zip(schema, columns):
            if isinstance(column, Column):
                built.append(column)       # already validated — trusted
            else:
                built.append(Column.from_pylist(
                    column, field.dtype, check=True, name=field.name
                ))
        self._schema = schema
        self._columns = tuple(built)
        self._num_rows = len(built[0]) if built else 0

    # -- construction -----------------------------------------------------

    @classmethod
    def from_columns(cls, schema: Schema,
                     columns: Sequence[Column]) -> "Table":
        """Trusted fast-path constructor.

        ``columns`` must already satisfy the schema (built by
        :meth:`Column.build` from typed values, or produced by table
        kernels).  Only O(columns) structural checks run here — no per-cell
        validation.  See docs/table.md for the invariant.
        """
        if len(columns) != len(schema):
            raise SchemaError(
                f"schema has {len(schema)} columns but {len(columns)} were given"
            )
        lengths = {len(c) for c in columns}
        if len(lengths) > 1:
            raise SchemaError(f"ragged columns: lengths {sorted(lengths)}")
        return cls._trusted(schema, tuple(columns))

    @classmethod
    def _trusted(cls, schema: Schema, columns: tuple[Column, ...],
                 num_rows: int | None = None) -> "Table":
        """Internal zero-check constructor for kernel outputs."""
        table = cls.__new__(cls)
        table._schema = schema
        table._columns = columns
        if num_rows is None:
            num_rows = len(columns[0]) if columns else 0
        table._num_rows = num_rows
        return table

    @classmethod
    def from_rows(
        cls,
        rows: Iterable[Sequence[Any]],
        schema: Schema | Sequence[tuple[str, str]] | None = None,
        names: Sequence[str] | None = None,
    ) -> "Table":
        """Build a table from row tuples.

        Either ``schema`` is given, or ``names`` is given and dtypes are
        inferred per column.
        """
        materialized = [tuple(r) for r in rows]
        if schema is not None and not isinstance(schema, Schema):
            schema = Schema(schema)
        if schema is None:
            if names is None:
                raise SchemaError("from_rows needs either a schema or column names")
            for row in materialized:
                if len(row) != len(names):
                    raise SchemaError(
                        f"row {row!r} has {len(row)} values but {len(names)} names given"
                    )
            cols = [[r[i] for r in materialized] for i in range(len(names))]
            schema = Schema(Field(n, infer_dtype(c)) for n, c in zip(names, cols))
            built = [
                Column.build([coerce(v, f.dtype) for v in c], f.dtype)
                for f, c in zip(schema, cols)
            ]
            return cls._trusted(schema, tuple(built))
        for row in materialized:
            if len(row) != len(schema):
                raise SchemaError(
                    f"row {row!r} has {len(row)} values; schema expects {len(schema)}"
                )
        built = [
            Column.build(
                [coerce(row[i], field.dtype) for row in materialized],
                field.dtype,
            )
            for i, field in enumerate(schema)
        ]
        return cls._trusted(schema, tuple(built), num_rows=len(materialized))

    def append_rows(self, rows: Iterable[Sequence[Any]]) -> "Table":
        """Append rows, validating only the new slice.

        The delta-friendly fast path: each appended row passes the same
        per-cell coercion the ``from_rows`` boundary runs, the new tail is
        built through trusted construction, and the existing column arrays
        are concatenated untouched — never re-validated.  Appending a batch
        therefore costs O(existing + new) array copy but only O(new)
        validation, which is what makes high-frequency append streams
        (:mod:`repro.ivm`) affordable.
        """
        materialized = [tuple(r) for r in rows]
        if not materialized:
            return Table._trusted(self._schema, self._columns,
                                  num_rows=self._num_rows)
        for row in materialized:
            if len(row) != len(self._schema):
                raise SchemaError(
                    f"row {row!r} has {len(row)} values; schema expects "
                    f"{len(self._schema)}"
                )
        tails = [
            Column.build(
                [coerce(row[i], field.dtype) for row in materialized],
                field.dtype,
            )
            for i, field in enumerate(self._schema)
        ]
        cols = tuple(a.concat(b) for a, b in zip(self._columns, tails))
        return Table._trusted(self._schema, cols,
                              num_rows=self._num_rows + len(materialized))

    @classmethod
    def from_dict(cls, data: dict[str, Sequence[Any]]) -> "Table":
        """Build a table from ``{column name: values}`` with inferred dtypes."""
        schema = Schema(Field(n, infer_dtype(v)) for n, v in data.items())
        built = [
            Column.build([coerce(v, f.dtype) for v in values], f.dtype)
            for f, values in zip(schema, data.values())
        ]
        return cls._trusted(schema, tuple(built))

    @classmethod
    def empty(cls, schema: Schema | Sequence[tuple[str, str]]) -> "Table":
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        return cls._trusted(
            schema, tuple(Column.empty(f.dtype) for f in schema), num_rows=0
        )

    @classmethod
    def from_csv(cls, text: str, delimiter: str = ",") -> "Table":
        """Parse CSV text (header row required); dtypes are inferred.

        Empty strings become nulls, matching the usual CSV convention.
        """
        reader = csv.reader(io.StringIO(text), delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration as exc:
            raise SchemaError("CSV input is empty") from exc
        raw_rows = [row for row in reader if row]
        parsed = [
            tuple(None if cell == "" else cell for cell in row) for row in raw_rows
        ]
        cols: list[list[Any]] = [[r[i] for r in parsed] for i in range(len(header))]
        fields = []
        built = []
        for name, col in zip(header, cols):
            dtype = _csv_dtype(col)
            built.append(Column.build([coerce(v, dtype) for v in col], dtype))
            fields.append(Field(name, dtype))
        return cls._trusted(Schema(fields), tuple(built), num_rows=len(parsed))

    # -- inspection --------------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def num_rows(self) -> int:
        return self._num_rows

    @property
    def num_columns(self) -> int:
        return len(self._schema)

    def column(self, name: str) -> list[Any]:
        """Return a copy of the named column's values (``None`` = null)."""
        return self._columns[self._schema.index_of(name)].to_pylist()

    def columns(self) -> tuple[Column, ...]:
        """The underlying :class:`Column` objects in schema order.

        Columns are immutable by convention; combining them with
        :meth:`from_columns` stays on the trusted-construction path (the
        ``repro.ivm`` delta layer assembles join outputs this way).
        """
        return self._columns

    def column_array(self, name: str) -> np.ndarray:
        """The raw numpy value array of a column (read-only view).

        Masked (null) slots hold the dtype sentinel — pair with
        :meth:`null_mask` before trusting any value.
        """
        arr = self._columns[self._schema.index_of(name)].values.view()
        arr.flags.writeable = False
        return arr

    def null_mask(self, name: str) -> np.ndarray:
        """Boolean null mask of a column (read-only view; True = null)."""
        mask = self._columns[self._schema.index_of(name)].mask.view()
        mask.flags.writeable = False
        return mask

    def row(self, i: int) -> Row:
        if not -self._num_rows <= i < self._num_rows:
            raise IndexError(f"row {i} out of range for table of {self._num_rows}")
        return tuple(col.value_at(i) for col in self._columns)

    def rows(self) -> Iterator[Row]:
        cols = [c.to_pylist() for c in self._columns]
        for i in range(self._num_rows):
            yield tuple(col[i] for col in cols)

    def row_dicts(self) -> Iterator[dict[str, Any]]:
        names = self._schema.names
        for row in self.rows():
            yield dict(zip(names, row))

    def cell(self, i: int, name: str) -> Any:
        return self._columns[self._schema.index_of(name)].value_at(i)

    def __len__(self) -> int:
        return self._num_rows

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        if self._schema != other._schema:
            return False
        return all(a.equals(b) for a, b in zip(self._columns, other._columns))

    def __hash__(self) -> int:  # tables are mutable-free; hash by content
        return hash((
            self._schema,
            tuple(tuple(c.to_pylist()) for c in self._columns),
        ))

    def __repr__(self) -> str:
        return f"Table({self._schema!r}, rows={self._num_rows})"

    def to_csv(self, delimiter: str = ",") -> str:
        out = io.StringIO()
        writer = csv.writer(out, delimiter=delimiter, lineterminator="\n")
        writer.writerow(self._schema.names)
        for row in self.rows():
            writer.writerow(["" if v is None else v for v in row])
        return out.getvalue()

    def pretty(self, max_rows: int = 20) -> str:
        """Fixed-width textual rendering, for examples and benches."""
        names = self._schema.names
        shown = [tuple("∅" if v is None else str(v) for v in r) for r in self.rows()]
        shown = shown[:max_rows]
        widths = [len(n) for n in names]
        for row in shown:
            widths = [max(w, len(v)) for w, v in zip(widths, row)]
        line = " | ".join(n.ljust(w) for n, w in zip(names, widths))
        sep = "-+-".join("-" * w for w in widths)
        body = "\n".join(
            " | ".join(v.ljust(w) for v, w in zip(row, widths)) for row in shown
        )
        tail = "" if self._num_rows <= max_rows else f"\n… {self._num_rows - max_rows} more rows"
        return f"{line}\n{sep}\n{body}{tail}" if body else f"{line}\n{sep}{tail}"

    def stats(self) -> dict[str, dict[str, Any]]:
        """Exact per-column statistics (see :mod:`repro.table.explain`).

        Memoized on the table: columns are immutable after construction
        (every mutating operation builds a new ``Table``), so the first
        call's ``np.unique`` pass is reused by the optimizer's join
        reordering and repeated EXPLAIN ANALYZE — no invalidation needed.
        Treat the returned dicts as read-only.
        """
        cached = self.__dict__.get("_stats")
        if cached is None:
            from repro.table.explain import column_stats

            cached = self.__dict__["_stats"] = column_stats(self)
        return cached

    def explain(self) -> str:
        """Text report of the per-column statistics :meth:`stats` computes."""
        from repro.table.explain import render_stats

        return render_stats(self)

    # -- relational operators ---------------------------------------------

    def select(self, predicate: Callable[[dict[str, Any]], bool]) -> "Table":
        """Keep rows for which ``predicate(row_dict)`` is truthy.

        The predicate is an opaque callable, so this is inherently
        row-at-a-time; callers that can phrase the condition as a boolean
        mask should use :meth:`filter` instead.
        """
        names = self._schema.names
        cols = [c.to_pylist() for c in self._columns]
        keep = [
            i for i in range(self._num_rows)
            if predicate(dict(zip(names, (col[i] for col in cols))))
        ]
        return self._take(keep)

    def filter(self, keep: Sequence[bool] | np.ndarray) -> "Table":
        """Vectorized row filter by boolean mask (True = keep)."""
        with timed("table.filter.seconds", span_name="table.filter") as s:
            keep = np.asarray(keep, dtype=bool)
            if keep.shape != (self._num_rows,):
                raise SchemaError(
                    f"filter mask has shape {keep.shape}; table has "
                    f"{self._num_rows} rows"
                )
            cols = tuple(c.compress(keep) for c in self._columns)
            rows_out = int(keep.sum())
            out = Table._trusted(self._schema, cols, num_rows=rows_out)
            metrics.counter("table.rows_scanned").inc(self._num_rows)
            s.set(rows_in=self._num_rows, rows_out=rows_out,
                  selectivity=(rows_out / self._num_rows
                               if self._num_rows else None))
        return out

    def filter_reference(self, keep: Sequence[bool] | np.ndarray) -> "Table":
        """Row-at-a-time twin of :meth:`filter` (equivalence/perf baseline)."""
        keep = list(keep)
        if len(keep) != self._num_rows:
            raise SchemaError(
                f"filter mask has {len(keep)} entries; table has "
                f"{self._num_rows} rows"
            )
        indices = [i for i, flag in enumerate(keep) if flag]
        cols = [c.to_pylist() for c in self._columns]
        picked = [
            Column.build([col[i] for i in indices], c.dtype)
            for col, c in zip(cols, self._columns)
        ]
        return Table._trusted(self._schema, tuple(picked),
                              num_rows=len(indices))

    def project(self, names: Sequence[str]) -> "Table":
        """Keep only the named columns, in the given order."""
        names = list(names)
        sub = self._schema.project(names)
        cols = tuple(self._columns[self._schema.index_of(n)] for n in names)
        return Table._trusted(sub, cols, num_rows=self._num_rows)

    def drop(self, names: Sequence[str]) -> "Table":
        keep = [n for n in self._schema.names if n not in set(names)]
        self._schema.drop(list(names))  # validates
        return self.project(keep)

    def rename(self, mapping: dict[str, str]) -> "Table":
        return Table._trusted(self._schema.rename(mapping), self._columns,
                              num_rows=self._num_rows)

    def with_column(self, name: str, dtype: str, values: Sequence[Any]) -> "Table":
        """Append a column; values are coerced to ``dtype``."""
        if name in self._schema:
            raise SchemaError(f"column {name!r} already exists")
        if len(values) != self._num_rows:
            raise SchemaError(
                f"column has {len(values)} values; table has {self._num_rows} rows"
            )
        schema = Schema(list(self._schema.fields) + [Field(name, dtype)])
        new = Column.build([coerce(v, dtype) for v in values], dtype)
        return Table._trusted(schema, self._columns + (new,),
                              num_rows=self._num_rows)

    def with_cell(self, i: int, name: str, value: Any) -> "Table":
        """Return a copy with one cell replaced (the repair primitive)."""
        return self.with_cells(name, {i: value})

    def with_cells(self, name: str, updates: dict[int, Any]) -> "Table":
        """Replace several cells of one column in a single copy.

        The batch form of :meth:`with_cell` — the imputers use it to fill
        every hole with one column rebuild instead of one table copy per
        cell.  Values are coerced to the column dtype; ``None`` writes a
        null.
        """
        j = self._schema.index_of(name)
        col = self._columns[j]
        if not updates:
            return Table._trusted(self._schema, self._columns,
                                  num_rows=self._num_rows)
        dtype = self._schema.dtypes[j]
        coerced = {}
        for i, value in updates.items():
            if not -self._num_rows <= i < self._num_rows:
                raise IndexError(
                    f"row {i} out of range for table of {self._num_rows}"
                )
            coerced[i] = coerce(value, dtype)
        try:
            values = col.values.copy()
            mask = col.mask.copy()
            for i, value in coerced.items():
                if value is None:
                    mask[i] = True
                else:
                    values[i] = value
                    mask[i] = False
            new_col = Column(dtype, values, mask)
        except OverflowError:       # int beyond int64 — rebuild off-fast-path
            pylist = col.to_pylist()
            for i, value in coerced.items():
                pylist[i] = value
            new_col = Column.build(pylist, dtype)
        cols = list(self._columns)
        cols[j] = new_col
        return Table._trusted(self._schema, tuple(cols),
                              num_rows=self._num_rows)

    def map_column(self, name: str, fn: Callable[[Any], Any], dtype: str | None = None) -> "Table":
        """Apply ``fn`` to every value of a column (nulls included)."""
        j = self._schema.index_of(name)
        new_dtype = dtype or self._schema.dtypes[j]
        mapped = Column.build(
            [coerce(fn(v), new_dtype) for v in self._columns[j].to_pylist()],
            new_dtype,
        )
        cols = list(self._columns)
        cols[j] = mapped
        fields = [
            Field(f.name, new_dtype if f.name == name else f.dtype)
            for f in self._schema
        ]
        return Table._trusted(Schema(fields), tuple(cols),
                              num_rows=self._num_rows)

    def order_by(self, name: str, descending: bool = False) -> "Table":
        """Sort rows by a column; nulls sort last regardless of direction.

        The sort is stable: rows with equal keys keep their original
        relative order in both directions.
        """
        col = self._columns[self._schema.index_of(name)]
        valid_idx = np.flatnonzero(~col.mask)
        null_idx = np.flatnonzero(col.mask)
        vals = col.values[valid_idx]
        if descending:
            # Stable descending: stable-ascending argsort of the reversed
            # array, reversed and re-mapped, keeps ties in original order.
            s = np.argsort(vals[::-1], kind="stable")
            order = (len(vals) - 1) - s[::-1]
        else:
            order = np.argsort(vals, kind="stable")
        return self._take(np.concatenate([valid_idx[order], null_idx]))

    def limit(self, n: int) -> "Table":
        return self._take(np.arange(min(max(n, 0), self._num_rows)))

    def slice(self, start: int, stop: int | None = None) -> "Table":
        """Rows ``[start, stop)`` with python-slice clamping semantics."""
        indices = np.arange(self._num_rows)[slice(start, stop)]
        return self._take(indices)

    def row_codes(self) -> np.ndarray:
        """Dense row-equality codes: equal rows (nulls matching nulls, the
        GROUP BY convention) share a code in ``[0, distinct rows)``.

        The whole-row factorization under :meth:`distinct`, and the
        consolidation key of the :mod:`repro.ivm` Z-set layer.
        """
        if not self._columns:
            raise SchemaError("row_codes needs at least one column")
        return row_codes(self._columns)

    def distinct(self) -> "Table":
        """Drop duplicate rows, keeping the first occurrence of each."""
        if self._num_rows == 0:
            return self._take(np.empty(0, dtype=np.intp))
        if not self._columns:
            return self._take(np.array([0]))
        codes = self.row_codes()
        _uniq, first = np.unique(codes, return_index=True)
        return self._take(np.sort(first))

    def union(self, other: "Table") -> "Table":
        """Concatenate rows of two tables with identical schemas."""
        if self._schema != other._schema:
            raise SchemaError(
                f"union requires identical schemas: {self._schema} vs {other._schema}"
            )
        cols = tuple(a.concat(b) for a, b in zip(self._columns, other._columns))
        return Table._trusted(self._schema, cols,
                              num_rows=self._num_rows + other._num_rows)

    def join(
        self,
        other: "Table",
        on: Sequence[tuple[str, str]] | str,
        how: str = "inner",
        suffix: str = "_r",
    ) -> "Table":
        """Vectorized equi-join on factorized key codes.

        ``on`` is a column name shared by both sides, or a list of
        ``(left, right)`` name pairs.  ``how`` is ``inner`` or ``left``.
        Join keys compare by equality; null keys never match (SQL
        semantics).  Right-side columns that clash with a left-side name get
        ``suffix``.  Matches for each left row come out in right-row order,
        matching :meth:`join_reference`.
        """
        with timed("table.join.seconds", span_name="table.join",
                   how=how) as s:
            pairs, left_keys, right_keys, out_schema, kept_right_idx = (
                self._join_plan(other, on, how, suffix)
            )
            n_left, n_right = self._num_rows, other._num_rows
            left_take, right_take, counts = self._join_take_arrays(
                other, left_keys, right_keys, how
            )
            total = len(left_take)
            cols = [c.take(left_take) for c in self._columns]
            cols += [
                other._columns[j].take_or_null(right_take)
                for j in kept_right_idx
            ]
            out = Table._trusted(out_schema, tuple(cols), num_rows=total)
            metrics.counter("table.rows_scanned").inc(n_left + n_right)
            s.set(left_rows=n_left, right_rows=n_right, rows_out=total,
                  match_rate=(int((counts > 0).sum()) / n_left
                              if n_left else None))
        return out

    def join_indices(
        self,
        other: "Table",
        on: Sequence[tuple[str, str]] | str,
        how: str = "inner",
        suffix: str = "_r",
    ) -> tuple[np.ndarray, np.ndarray, Schema, list[int]]:
        """The row-index pairs :meth:`join` would emit, without materializing
        any output columns.

        Returns ``(left_take, right_take, out_schema, kept_right_idx)``:
        gathering ``self`` rows at ``left_take`` and ``other`` rows at
        ``right_take`` (``-1`` marks an unmatched left row under
        ``how="left"``; ``kept_right_idx`` lists the right-side columns the
        output keeps) reproduces :meth:`join` exactly.  Callers that carry
        side arrays through a join — the :mod:`repro.ivm` delta layer
        multiplies per-row weight vectors — gather them with the same index
        arrays instead of round-tripping through a column.
        """
        _pairs, left_keys, right_keys, out_schema, kept_right_idx = (
            self._join_plan(other, on, how, suffix)
        )
        left_take, right_take, _counts = self._join_take_arrays(
            other, left_keys, right_keys, how
        )
        return left_take, right_take, out_schema, kept_right_idx

    def _join_take_arrays(
        self, other: "Table", left_keys: list[int], right_keys: list[int],
        how: str,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The vectorized probe shared by :meth:`join` / :meth:`join_indices`:
        factorized key codes, sorted-right binary search, repeat expansion.

        Returns ``(left_take, right_take, counts)`` where ``counts`` is the
        per-left-row match count (drives the join span's match_rate).
        """
        n_left, n_right = self._num_rows, other._num_rows
        l_codes, r_codes, any_null_l = _factorize_key_pairs(
            [self._columns[j] for j in left_keys],
            [other._columns[j] for j in right_keys],
        )

        if r_codes is None:          # keys can never match (str vs number)
            counts = np.zeros(n_left, dtype=np.int64)
            lo = np.zeros(n_left, dtype=np.int64)
            r_sorted = np.empty(0, dtype=np.intp)
        else:
            valid_r = np.flatnonzero(~_null_rows(
                [other._columns[j] for j in right_keys]
            ))
            r_sorted = valid_r[np.argsort(r_codes[valid_r], kind="stable")]
            sorted_codes = r_codes[r_sorted]
            probe = np.where(any_null_l, np.int64(-1), l_codes)
            lo = np.searchsorted(sorted_codes, probe, side="left")
            hi = np.searchsorted(sorted_codes, probe, side="right")
            counts = np.where(any_null_l, 0, hi - lo)

        if how == "inner":
            out_counts = counts
        else:
            out_counts = np.maximum(counts, 1)
        total = int(out_counts.sum())
        left_take = np.repeat(np.arange(n_left), out_counts)
        offsets = np.cumsum(out_counts) - out_counts
        within = np.arange(total) - np.repeat(offsets, out_counts)
        if len(r_sorted):
            slot = np.minimum(np.repeat(lo, out_counts) + within,
                              len(r_sorted) - 1)
            right_take = r_sorted[slot]
        else:
            right_take = np.full(total, -1, dtype=np.intp)
        if how == "left":
            matched = np.repeat(counts > 0, out_counts)
            right_take = np.where(matched, right_take, -1)
        return left_take, right_take, counts

    def join_reference(
        self,
        other: "Table",
        on: Sequence[tuple[str, str]] | str,
        how: str = "inner",
        suffix: str = "_r",
    ) -> "Table":
        """Row-at-a-time hash-join twin of :meth:`join`."""
        pairs, left_keys, right_keys, out_schema, kept_right_idx = (
            self._join_plan(other, on, how, suffix)
        )
        left_cols = [c.to_pylist() for c in self._columns]
        right_cols = [c.to_pylist() for c in other._columns]

        index: dict[Row, list[int]] = {}
        for i in range(other._num_rows):
            key = tuple(right_cols[k][i] for k in right_keys)
            if any(v is None for v in key):
                continue
            index.setdefault(key, []).append(i)

        out_rows: list[Row] = []
        null_right = (None,) * len(kept_right_idx)
        for i in range(self._num_rows):
            key = tuple(left_cols[k][i] for k in left_keys)
            left_row = tuple(col[i] for col in left_cols)
            matches = [] if any(v is None for v in key) else index.get(key, [])
            if matches:
                for j in matches:
                    right_row = tuple(right_cols[k][j] for k in kept_right_idx)
                    out_rows.append(left_row + right_row)
            elif how == "left":
                out_rows.append(left_row + null_right)
        return Table.from_rows(out_rows, schema=out_schema)

    def _join_plan(
        self, other: "Table", on: Sequence[tuple[str, str]] | str,
        how: str, suffix: str,
    ) -> tuple[list[tuple[str, str]], list[int], list[int], Schema, list[int]]:
        """Shared validation + output-schema construction for both joins."""
        if how not in ("inner", "left"):
            raise SchemaError(f"unsupported join type {how!r}")
        if isinstance(on, str):
            pairs = [(on, on)]
        else:
            pairs = [(l, r) for l, r in on]
        left_keys = [self._schema.index_of(l) for l, _ in pairs]
        right_keys = [other._schema.index_of(r) for _, r in pairs]

        right_drop = {other._schema.index_of(r) for l, r in pairs if l == r}
        right_fields = []
        left_names = set(self._schema.names)
        kept_right_idx = []
        for j, field in enumerate(other._schema):
            if j in right_drop:
                continue
            kept_right_idx.append(j)
            name = field.name
            if name in left_names:
                name = name + suffix
            right_fields.append(Field(name, field.dtype))
        out_schema = Schema(list(self._schema.fields) + right_fields)
        return pairs, left_keys, right_keys, out_schema, kept_right_idx

    def group_by(
        self,
        keys: Sequence[str],
        aggregates: Sequence[tuple[str, str, str]],
    ) -> "Table":
        """Group rows and compute aggregates, vectorized.

        ``aggregates`` is a list of ``(function, column, output name)`` where
        function is one of count/sum/min/max/avg.  ``count`` counts non-null
        values of its column (use any column for row counts on null-free keys).
        Aggregates skip nulls, per SQL semantics.  Groups come out in
        first-appearance order, matching :meth:`group_by_reference`.
        """
        return segment_group_by(self, keys, aggregates)

    def group_by_reference(
        self,
        keys: Sequence[str],
        aggregates: Sequence[tuple[str, str, str]],
    ) -> "Table":
        """Row-at-a-time twin of :meth:`group_by`."""
        keys = list(keys)
        key_idx = [self._schema.index_of(k) for k in keys]
        # Column index resolution hoisted out of the per-group loop.
        agg_specs = []
        for fn, col, out in aggregates:
            if fn not in _AGGREGATES:
                raise SchemaError(
                    f"unknown aggregate {fn!r}; options: {sorted(_AGGREGATES)}"
                )
            agg_specs.append(
                (fn, self._schema.index_of(col), self._schema.dtype_of(col))
            )
        out_fields = self._group_fields(keys, aggregates)
        cols = [c.to_pylist() for c in self._columns]

        groups: dict[Row, list[int]] = {}
        order: list[Row] = []
        for i in range(self._num_rows):
            key = tuple(cols[k][i] for k in key_idx)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(i)

        out_rows = []
        for key in order:
            row: list[Any] = list(key)
            for fn, j, dtype in agg_specs:
                values = [
                    cols[j][i] for i in groups[key] if cols[j][i] is not None
                ]
                result = _AGGREGATES[fn](values)
                if fn == "sum" and result is not None and dtype == "int":
                    result = int(result)
                row.append(result)
            out_rows.append(tuple(row))
        return Table.from_rows(out_rows, schema=Schema(out_fields))

    def _group_fields(
        self, keys: list[str],
        aggregates: Sequence[tuple[str, str, str]],
    ) -> list[Field]:
        out_fields = [self._schema.field(k) for k in keys]
        for fn, col, out in aggregates:
            if fn == "count":
                dtype = "int"
            elif fn in ("sum", "min", "max"):
                dtype = self._schema.dtype_of(col)
            else:
                dtype = "float"
            out_fields.append(Field(out, dtype))
        return out_fields

    def sample(self, n: int, rng) -> "Table":
        """Take ``n`` rows uniformly without replacement using ``rng``
        (a :class:`numpy.random.Generator`)."""
        n = min(n, self._num_rows)
        idx = np.sort(rng.choice(self._num_rows, size=n, replace=False))
        return self._take(idx)

    # -- internals ----------------------------------------------------------

    def _take(self, indices: Sequence[int] | np.ndarray) -> "Table":
        idx = np.asarray(indices, dtype=np.intp)
        cols = tuple(c.take(idx) for c in self._columns)
        return Table._trusted(self._schema, cols, num_rows=len(idx))


def _null_rows(columns: list[Column]) -> np.ndarray:
    """Rows where any of the given columns is null."""
    out = columns[0].mask.copy()
    for col in columns[1:]:
        out |= col.mask
    return out


def _factorize_key_pairs(
    left: list[Column], right: list[Column],
) -> tuple[np.ndarray | None, np.ndarray | None, np.ndarray]:
    """Shared factorization of join keys: codes that are equal exactly when
    the key tuples compare equal.

    Returns ``(left_codes, right_codes, left_any_null)``; the code arrays
    are ``None`` when the key dtypes can never match (string vs numeric),
    so the join degenerates to "no matches" without comparing values.
    """
    n_left, n_right = len(left[0]), len(right[0])
    left_any_null = _null_rows(left)
    for lc, rc in zip(left, right):
        if (lc.dtype == "str") != (rc.dtype == "str"):
            return None, None, left_any_null

    l_comb = np.zeros(n_left, dtype=np.int64)
    r_comb = np.zeros(n_right, dtype=np.int64)
    for lc, rc in zip(left, right):
        lv, rv = ~lc.mask, ~rc.mask
        lvals, rvals = lc.values[lv], rc.values[rv]
        l_codes = np.zeros(n_left, dtype=np.int64)
        r_codes = np.zeros(n_right, dtype=np.int64)
        if len(lvals) or len(rvals):
            if lvals.dtype == object and rvals.dtype == object:
                # Str keys (or oversized-int fallbacks): one shared hash
                # pass beats sort-based factorization, which would compare
                # python objects element-by-element.
                shared: dict = {}
                l_sub, _ = factorize_objects(lvals, shared)
                r_sub, cardinality = factorize_objects(rvals, shared)
            else:
                both = np.concatenate([lvals, rvals])
                uniq = np.unique(both)
                l_sub = np.searchsorted(uniq, lvals)
                r_sub = np.searchsorted(uniq, rvals)
                cardinality = len(uniq)
            l_codes[lv] = l_sub
            r_codes[rv] = r_sub
        else:
            cardinality = 1
        # Combine with the previous keys, then densify so the running code
        # stays < n and never overflows across many key columns.
        combined = np.concatenate(
            [l_comb * cardinality + l_codes, r_comb * cardinality + r_codes]
        )
        _, inverse = np.unique(combined, return_inverse=True)
        l_comb, r_comb = inverse[:n_left], inverse[n_left:]
    return l_comb, r_comb, left_any_null


def segment_group_by(
    table: Table,
    keys: Sequence[str],
    aggregates: Sequence[tuple[str, str, str]],
    *,
    codes: np.ndarray | None = None,
    order: np.ndarray | None = None,
) -> Table:
    """The vectorized GROUP BY core behind :meth:`Table.group_by`.

    Exposed as a function so the sharded kernels (:mod:`repro.shard`) run
    the *same* aggregation code per shard instead of a parallel
    reimplementation that could drift.  ``codes`` (dense row → group ids in
    the :func:`~repro.table.column.row_codes` convention: every value in
    ``[0, num_groups)`` occupied, nulls bucketed per key column) and
    ``order`` (a stable argsort of ``codes``) may be passed precomputed —
    a shard index amortizes both at partition time, which is where the
    sharded group-by speedup comes from.
    """
    with timed("table.group_by.seconds", span_name="table.group_by") as s:
        keys = list(keys)
        schema = table.schema
        key_idx = [schema.index_of(k) for k in keys]
        agg_specs = []
        for fn, col, out in aggregates:
            if fn not in _AGGREGATES:
                raise SchemaError(
                    f"unknown aggregate {fn!r}; "
                    f"options: {sorted(_AGGREGATES)}"
                )
            agg_specs.append((fn, schema.index_of(col), col, out))
        out_fields = table._group_fields(keys, aggregates)

        columns = table.columns()
        n = table.num_rows
        if n == 0:
            s.set(rows_in=0, groups=0)
            return Table.empty(Schema(out_fields))

        if codes is None:
            if key_idx:
                codes = row_codes([columns[j] for j in key_idx])
            else:
                codes = np.zeros(n, dtype=np.int64)
        # One stable sort by group code, shared by every aggregate; within
        # a group the original row order survives, matching the reference.
        # Codes are dense (every value in [0, num_groups) occupied), so the
        # segment boundaries of the sorted codes enumerate the groups and
        # the first row of each segment is the group's first appearance.
        if order is None:
            order = np.argsort(codes, kind="stable")
        sorted_gids = codes[order]
        starts = np.flatnonzero(
            np.r_[True, sorted_gids[1:] != sorted_gids[:-1]]
        )
        num_groups = len(starts)
        first_idx = order[starts]
        # Output groups in first-appearance order.
        appearance = np.argsort(first_idx, kind="stable")
        position = np.empty(num_groups, dtype=np.int64)
        position[appearance] = np.arange(num_groups)

        out_cols = [
            columns[j].take(first_idx[appearance]) for j in key_idx
        ]
        field_iter = iter(out_fields[len(keys):])
        for fn, j, _colname, _out in agg_specs:
            field = next(field_iter)
            col = columns[j]
            grouped = _segment_aggregate(fn, col, sorted_gids, order,
                                         num_groups, position)
            coerced = [None if v is None else coerce(v, field.dtype)
                       for v in grouped]
            out_cols.append(Column.build(coerced, field.dtype))
        out = Table._trusted(Schema(out_fields), tuple(out_cols),
                             num_rows=num_groups)
        metrics.counter("table.rows_scanned").inc(n)
        s.set(rows_in=n, groups=num_groups)
    return out


def _segment_aggregate(fn: str, col: Column, sorted_gids: np.ndarray,
                       order: np.ndarray, num_groups: int,
                       position: np.ndarray) -> list[Any]:
    """One aggregate over all groups at once (null-skipping).

    ``order`` is the shared stable row permutation sorting rows by group id
    and ``sorted_gids`` the group ids in that order; ``position`` maps group
    id -> output row.  Returns python values in output order (``None`` where
    a group has no non-null input), which the caller coerces to the declared
    output dtype — mirroring the per-cell coercion the row-at-a-time
    reference applies via ``from_rows``.
    """
    valid = ~col.mask[order]
    gids = sorted_gids[valid]
    counts = np.bincount(gids, minlength=num_groups)
    if fn == "count":
        return counts[np.argsort(position, kind="stable")].tolist()

    out: list[Any] = [None] * num_groups
    if not len(gids):
        return out
    sorted_vals = col.values[order[valid]]
    starts = np.flatnonzero(np.r_[True, gids[1:] != gids[:-1]])
    present = gids[starts]
    if fn in ("sum", "avg") and sorted_vals.dtype == np.float64:
        # bincount accumulates sequentially in scan order — with the stable
        # group sort that is original row order per group, so float sums are
        # bit-identical to the reference's left-to-right ``sum()``.
        sums = np.bincount(gids, weights=sorted_vals, minlength=num_groups)
        reduced = sums[present]
        if fn == "avg":
            reduced = reduced / counts[present]
    elif fn in ("sum", "avg"):
        reduced = np.add.reduceat(sorted_vals, starts)
        if fn == "avg":
            reduced = reduced / counts[present]
    elif fn == "min":
        reduced = np.minimum.reduceat(sorted_vals, starts)
    else:
        reduced = np.maximum.reduceat(sorted_vals, starts)
    reduced_list = (reduced.tolist() if isinstance(reduced, np.ndarray)
                    else list(reduced))
    for gid, value in zip(present.tolist(), reduced_list):
        out[position[gid]] = value
    return out


def _csv_dtype(values: list[Any]) -> str:
    """Infer a dtype for CSV cells, which all arrive as str/None."""
    def looks_int(s: str) -> bool:
        try:
            int(s)
            return True
        except ValueError:
            return False

    def looks_float(s: str) -> bool:
        try:
            float(s)
            return True
        except ValueError:
            return False

    non_null = [v for v in values if v is not None]
    if not non_null:
        return "str"
    if all(looks_int(v) for v in non_null):
        return "int"
    if all(looks_float(v) for v in non_null):
        return "float"
    lowered = {v.strip().lower() for v in non_null}
    if lowered <= {"true", "false"}:
        return "bool"
    return "str"
