"""Columnar storage: one numpy array + explicit null mask per column.

This is the physical layer under :class:`~repro.table.Table`.  Logical
dtypes map to numpy storage as follows (see docs/table.md):

==========  ==============  ==================
logical     numpy storage   null sentinel
==========  ==============  ==================
``int``     ``int64``       ``0``
``float``   ``float64``     ``nan``
``bool``    ``bool_``       ``False``
``str``     ``object``      ``None``
==========  ==============  ==================

The sentinel occupies masked slots so vectorized kernels can operate on the
whole ``values`` array without branching; the ``mask`` (True = null) is the
single source of truth for nullness.  A :class:`Column` is immutable by
convention — every operation returns a new instance, and tables freely share
column objects, so nothing may write to ``values``/``mask`` after
construction.

Trusted construction invariant: :meth:`Column.build` (and
``from_pylist(check=False)``) skip the per-cell type check.  They may only be
fed values that already conform to the logical dtype — the output of
:func:`~repro.table.schema.coerce`, of a vectorized kernel over validated
columns, or of a seeded dataset builder that constructs typed literals.
Everything arriving from outside goes through the checked path once, then
never again.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.errors import SchemaError

#: logical dtype -> numpy storage dtype.
NUMPY_DTYPES: dict[str, Any] = {
    "int": np.int64,
    "float": np.float64,
    "bool": np.bool_,
    "str": object,
}

#: logical dtype -> the value stored in masked (null) slots.
SENTINELS: dict[str, Any] = {
    "int": 0,
    "float": float("nan"),
    "bool": False,
    "str": None,
}

#: per-dtype "is this python value already valid" checks (bool is not a
#: number, matching :func:`repro.table.schema.validate`).
_CHECKS = {
    "int": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "float": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "str": lambda v: isinstance(v, str),
    "bool": lambda v: isinstance(v, bool),
}


def _to_numpy(filled: Sequence[Any], dtype: str) -> np.ndarray:
    """Convert an already-filled (no ``None`` except str) list to storage.

    Falls back to an object array when values exceed int64 — arbitrary
    precision ints stay correct, just off the fast path.
    """
    np_dtype = NUMPY_DTYPES[dtype]
    try:
        return np.array(filled, dtype=np_dtype)
    except OverflowError:
        return np.array(filled, dtype=object)


class Column:
    """One typed column: ``values`` (numpy) + ``mask`` (True = null)."""

    __slots__ = ("dtype", "values", "mask")

    def __init__(self, dtype: str, values: np.ndarray, mask: np.ndarray):
        self.dtype = dtype
        self.values = values
        self.mask = mask

    # -- construction -----------------------------------------------------

    @classmethod
    def from_pylist(cls, values: Sequence[Any], dtype: str, *,
                    check: bool = True, name: str = "") -> "Column":
        """Build from a python list (``None`` = null).

        ``check=True`` runs the per-cell type validation exactly once; the
        trusted paths pass ``check=False`` (see module docstring).
        """
        values = values if isinstance(values, list) else list(values)
        if check:
            ok = _CHECKS[dtype]
            for v in values:
                if v is not None and not ok(v):
                    where = f"column {name!r}: " if name else ""
                    raise SchemaError(
                        f"{where}value {v!r} is not {dtype}"
                    )
        mask = np.fromiter(
            (v is None for v in values), dtype=bool, count=len(values)
        )
        if dtype != "str" and mask.any():
            sentinel = SENTINELS[dtype]
            filled: Sequence[Any] = [
                sentinel if v is None else v for v in values
            ]
        else:
            filled = values
        return cls(dtype, _to_numpy(filled, dtype), mask)

    @classmethod
    def build(cls, values: Sequence[Any], dtype: str) -> "Column":
        """Trusted fast-path constructor (no per-cell validation)."""
        return cls.from_pylist(values, dtype, check=False)

    @classmethod
    def empty(cls, dtype: str) -> "Column":
        return cls(dtype, np.empty(0, dtype=NUMPY_DTYPES[dtype]),
                   np.empty(0, dtype=bool))

    # -- inspection --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:
        return f"Column({self.dtype}, n={len(self)}, nulls={self.null_count})"

    @property
    def null_count(self) -> int:
        return int(self.mask.sum())

    def value_at(self, i: int) -> Any:
        """One cell as a python value (``None`` when null)."""
        if self.mask[i]:
            return None
        v = self.values[i]
        return v.item() if isinstance(v, np.generic) else v

    def to_pylist(self) -> list[Any]:
        """The whole column as python values with ``None`` nulls."""
        out = self.values.tolist()
        if self.mask.any():
            for i in np.flatnonzero(self.mask).tolist():
                out[i] = None
        return out

    def equals(self, other: "Column") -> bool:
        """Mask-aware equality: nulls match nulls, values compare elementwise."""
        if len(self) != len(other):
            return False
        if not np.array_equal(self.mask, other.mask):
            return False
        valid = ~self.mask
        return bool(np.array_equal(self.values[valid], other.values[valid]))

    # -- kernels -----------------------------------------------------------

    def take(self, indices: np.ndarray) -> "Column":
        """Fancy-indexed row gather."""
        return Column(self.dtype, self.values[indices], self.mask[indices])

    def take_or_null(self, indices: np.ndarray) -> "Column":
        """Gather where index ``-1`` produces a null (outer-join helper)."""
        indices = np.asarray(indices)
        if len(self.values) == 0:
            sentinel = SENTINELS[self.dtype]
            values = np.full(len(indices), sentinel,
                             dtype=NUMPY_DTYPES[self.dtype])
            return Column(self.dtype, values, np.ones(len(indices), dtype=bool))
        safe = np.where(indices < 0, 0, indices)
        return Column(self.dtype, self.values[safe],
                      self.mask[safe] | (indices < 0))

    def compress(self, keep: np.ndarray) -> "Column":
        """Boolean-mask row filter."""
        return Column(self.dtype, self.values[keep], self.mask[keep])

    def concat(self, other: "Column") -> "Column":
        return Column(self.dtype,
                      np.concatenate([self.values, other.values]),
                      np.concatenate([self.mask, other.mask]))

    def codes(self) -> tuple[np.ndarray, int]:
        """Dense integer codes for grouping/joining.

        Non-null values factorize to ``[0, cardinality)``, every code in the
        range occupied; nulls get ``-1``.  Returns ``(codes, cardinality)``.
        Codes preserve equality, not value order — callers never rely on
        code order.
        """
        out = np.full(len(self.values), -1, dtype=np.int64)
        valid = ~self.mask
        if valid.any():
            vals = self.values[valid]
            if vals.dtype == object:
                sub, cardinality = factorize_objects(vals)
            else:
                uniq, sub = np.unique(vals, return_inverse=True)
                cardinality = len(uniq)
            out[valid] = sub
            return out, cardinality
        return out, 0


def factorize_objects(values: np.ndarray,
                      table: dict | None = None) -> tuple[np.ndarray, int]:
    """First-appearance dense codes for an object array via one hash pass.

    Sort-based factorization (``np.unique``) on object arrays falls back to
    element-wise python comparisons; a dict pass is ~3x faster at typical
    key cardinalities and exact for any hashable values.  Passing ``table``
    shares the code assignment across several arrays (join keys).
    """
    if table is None:
        table = {}
    out = np.empty(len(values), dtype=np.int64)
    setdefault = table.setdefault
    for i, v in enumerate(values.tolist()):
        out[i] = setdefault(v, len(table))
    return out, len(table)


def row_codes(columns: Sequence[Column]) -> np.ndarray:
    """Combine per-column codes into one dense code per row.

    Nulls form their own bucket (so ``None`` groups with ``None``, the
    GROUP BY / DISTINCT convention).  Codes are re-densified after every
    column via ``np.unique`` so the combined key never overflows int64
    regardless of how many key columns participate.
    """
    combined: np.ndarray | None = None
    for col in columns:
        c, k = col.codes()
        c = np.where(c < 0, k, c)        # null bucket at the top
        k += 1
        if combined is None:
            combined = c
        else:
            _, combined = np.unique(combined * k + c, return_inverse=True)
    if combined is None:
        raise SchemaError("row_codes needs at least one column")
    return combined
