"""Relational table substrate (no pandas): typed columns, nulls, joins."""

from repro.table.schema import DTYPES, Field, Schema, coerce, infer_dtype, validate
from repro.table.table import Table

__all__ = [
    "DTYPES",
    "Field",
    "Schema",
    "Table",
    "coerce",
    "infer_dtype",
    "validate",
]
