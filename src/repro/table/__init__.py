"""Relational table substrate (no pandas): numpy-backed typed columns with
explicit null masks, vectorized joins/grouping, trusted fast-path
construction (docs/table.md)."""

from repro.table.column import NUMPY_DTYPES, SENTINELS, Column, row_codes
from repro.table.schema import DTYPES, Field, Schema, coerce, infer_dtype, validate
from repro.table.table import Table, segment_group_by

__all__ = [
    "Column",
    "DTYPES",
    "Field",
    "NUMPY_DTYPES",
    "SENTINELS",
    "Schema",
    "Table",
    "coerce",
    "infer_dtype",
    "row_codes",
    "segment_group_by",
    "validate",
]
