"""Schema definitions for the relational :class:`~repro.table.Table` substrate.

A :class:`Schema` is an ordered list of :class:`Field` objects.  Types are
deliberately small — the four scalar types cover everything the data
preparation stack needs, and ``None`` is the universal null.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator

from repro.errors import SchemaError, TypeMismatchError

#: The scalar types a column may hold.
DTYPES = ("int", "float", "str", "bool")

_PYTHON_TYPES = {
    "int": int,
    "float": (int, float),
    "str": str,
    "bool": bool,
}


def infer_dtype(values: Iterable[Any]) -> str:
    """Infer the narrowest dtype that fits every non-null value.

    Falls back to ``"str"`` when values are mixed or all null, mirroring the
    permissive behaviour of CSV ingestion tools.
    """
    seen: set[str] = set()
    for value in values:
        if value is None:
            continue
        if isinstance(value, bool):
            seen.add("bool")
        elif isinstance(value, int):
            seen.add("int")
        elif isinstance(value, float):
            seen.add("float")
        else:
            seen.add("str")
    if not seen:
        return "str"
    if seen == {"bool"}:
        return "bool"
    if seen <= {"int"}:
        return "int"
    if seen <= {"int", "float"}:
        return "float"
    return "str"


def coerce(value: Any, dtype: str) -> Any:
    """Coerce ``value`` to ``dtype``, raising :class:`TypeMismatchError` on failure.

    ``None`` passes through untouched; it is a valid member of every type.
    """
    if value is None:
        return None
    if dtype == "str":
        return value if isinstance(value, str) else str(value)
    if dtype == "bool":
        if isinstance(value, bool):
            return value
        if isinstance(value, str):
            lowered = value.strip().lower()
            if lowered in ("true", "1", "yes"):
                return True
            if lowered in ("false", "0", "no"):
                return False
        raise TypeMismatchError(f"cannot coerce {value!r} to bool")
    if dtype == "int":
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        if isinstance(value, str):
            try:
                return int(value.strip())
            except ValueError as exc:
                raise TypeMismatchError(f"cannot coerce {value!r} to int") from exc
        raise TypeMismatchError(f"cannot coerce {value!r} to int")
    if dtype == "float":
        if isinstance(value, bool):
            return float(value)
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, str):
            try:
                return float(value.strip())
            except ValueError as exc:
                raise TypeMismatchError(f"cannot coerce {value!r} to float") from exc
        raise TypeMismatchError(f"cannot coerce {value!r} to float")
    raise SchemaError(f"unknown dtype {dtype!r}")


def validate(value: Any, dtype: str) -> bool:
    """Return True when ``value`` already conforms to ``dtype`` (or is null)."""
    if value is None:
        return True
    if dtype not in _PYTHON_TYPES:
        raise SchemaError(f"unknown dtype {dtype!r}")
    if dtype in ("int", "float") and isinstance(value, bool):
        return False
    return isinstance(value, _PYTHON_TYPES[dtype])


@dataclass(frozen=True)
class Field:
    """A named, typed column slot in a :class:`Schema`."""

    name: str
    dtype: str

    def __post_init__(self) -> None:
        if self.dtype not in DTYPES:
            raise SchemaError(
                f"field {self.name!r}: dtype must be one of {DTYPES}, got {self.dtype!r}"
            )
        if not self.name:
            raise SchemaError("field name must be non-empty")


class Schema:
    """An ordered, name-unique collection of :class:`Field` objects."""

    def __init__(self, fields: Iterable[Field | tuple[str, str]]):
        normalized = [f if isinstance(f, Field) else Field(*f) for f in fields]
        names = [f.name for f in normalized]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate column names: {duplicates}")
        self._fields = tuple(normalized)
        self._index = {f.name: i for i, f in enumerate(self._fields)}

    @property
    def fields(self) -> tuple[Field, ...]:
        return self._fields

    @property
    def names(self) -> list[str]:
        return [f.name for f in self._fields]

    @property
    def dtypes(self) -> list[str]:
        return [f.dtype for f in self._fields]

    def __len__(self) -> int:
        return len(self._fields)

    def __iter__(self) -> Iterator[Field]:
        return iter(self._fields)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._fields == other._fields

    def __hash__(self) -> int:
        return hash(self._fields)

    def __repr__(self) -> str:
        inner = ", ".join(f"{f.name}:{f.dtype}" for f in self._fields)
        return f"Schema({inner})"

    def field(self, name: str) -> Field:
        """Look up a field by name, raising :class:`SchemaError` when absent."""
        try:
            return self._fields[self._index[name]]
        except KeyError as exc:
            raise SchemaError(
                f"no column {name!r}; available: {self.names}"
            ) from exc

    def index_of(self, name: str) -> int:
        """Positional index of ``name`` within the schema."""
        if name not in self._index:
            raise SchemaError(f"no column {name!r}; available: {self.names}")
        return self._index[name]

    def dtype_of(self, name: str) -> str:
        return self.field(name).dtype

    def rename(self, mapping: dict[str, str]) -> "Schema":
        """Return a new schema with columns renamed per ``mapping``."""
        for old in mapping:
            if old not in self._index:
                raise SchemaError(f"cannot rename missing column {old!r}")
        return Schema(
            Field(mapping.get(f.name, f.name), f.dtype) for f in self._fields
        )

    def project(self, names: list[str]) -> "Schema":
        """Return the sub-schema containing ``names`` in the given order."""
        return Schema(self.field(n) for n in names)

    def drop(self, names: list[str]) -> "Schema":
        """Return the schema without the given columns."""
        missing = [n for n in names if n not in self._index]
        if missing:
            raise SchemaError(f"cannot drop missing columns {missing}")
        keep = set(self.names) - set(names)
        return Schema(f for f in self._fields if f.name in keep)
