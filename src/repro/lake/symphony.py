"""Symphony: natural-language query answering over a multi-modal data lake
(tutorial §3.1(4); Chen et al., CIDR 2023).

The four stages the tutorial lists, each an explicit component here:

1. **Indexing** — every dataset (table or document) is serialized to text and
   indexed once (:class:`~repro.lake.discovery.LakeIndex`).
2. **Query decomposition** — compound questions split into sub-queries.
3. **Retrieval** — each sub-query retrieves its best-matching dataset.
4. **Routing** — table + aggregate-shaped sub-query → Text-to-SQL + the SQL
   engine; table + lookup-shaped → TableQA; document → extractive QA.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import ParseError, ReproError
from repro.lake.discovery import LakeIndex
from repro.obs import metrics, tracing
from repro.lake.lake import DataLake
from repro.lake.tableqa import TableQA
from repro.lake.text2sql import TextToSQL
from repro.resilience import FallbackChain, degradation, faults
from repro.sql import Database

_AGG_HINTS = (
    "how many", "number of", "average", "mean", "total", "sum of",
    "most expensive", "cheapest", "highest", "maximum", "lowest", "minimum",
)

_SPLIT_RE = re.compile(r"\s*(?:;|\?\s+and\b|\band then\b|\balso\b|\?)\s*", re.IGNORECASE)


@dataclass
class SubQueryResult:
    """Trace of one sub-query through retrieve → route → answer.

    ``error`` is non-None when the sub-query crashed and was degraded to an
    "unknown" answer instead of aborting the whole multi-part question.
    """

    sub_query: str
    dataset: str | None
    kind: str | None
    module: str | None
    answer: str
    sql: str | None = None
    error: str | None = None

    @property
    def degraded(self) -> bool:
        return self.error is not None


@dataclass
class SymphonyResult:
    """The full trace: per-sub-query results plus the final answer list."""

    question: str
    steps: list[SubQueryResult] = field(default_factory=list)

    @property
    def answers(self) -> list[str]:
        return [s.answer for s in self.steps]


class Symphony:
    """NL querying over a :class:`~repro.lake.lake.DataLake`."""

    def __init__(self, lake: DataLake):
        self.lake = lake
        self.index = LakeIndex(lake)
        self._db = Database({name: lt.table for name, lt in lake.tables.items()})
        self._text2sql = {
            name: TextToSQL(name, lt.table) for name, lt in lake.tables.items()
        }
        self._tableqa = {
            name: TableQA(name, lt.table) for name, lt in lake.tables.items()
        }

    # -- stage 2: decomposition ------------------------------------------------

    @staticmethod
    def decompose(question: str) -> list[str]:
        """Split a compound question into sub-queries."""
        parts = [p.strip() for p in _SPLIT_RE.split(question) if p.strip()]
        return parts if parts else [question.strip()]

    # -- stage 3: retrieval -------------------------------------------------------

    def retrieve(self, sub_query: str,
                 prefer_kind: str | None = None) -> tuple[str, str] | None:
        """Best (kind, dataset name) for a sub-query, or None when the lake
        has nothing relevant.

        ``prefer_kind`` biases retrieval: aggregate-shaped sub-queries need a
        table, so the router asks for one and only falls back to documents
        when no table scores above zero.
        """
        hits = self.index.search(sub_query, k=5)
        hits = [h for h in hits if h.score > 0.0]
        if not hits:
            return None
        if prefer_kind is not None:
            preferred = [h for h in hits if h.kind == prefer_kind]
            if preferred:
                return preferred[0].kind, preferred[0].name
        return hits[0].kind, hits[0].name

    # -- stage 4: routing ----------------------------------------------------------

    def answer(self, question: str) -> SymphonyResult:
        """Decompose, retrieve, route, and answer.

        Sub-query failures are isolated: a crashing sub-query yields a
        degraded :class:`SubQueryResult` (``answer="unknown"``, ``error``
        set, a recorded ``DegradationEvent``) and the remaining sub-queries
        still run — one bad part never aborts a multi-part answer.
        """
        with tracing.span("symphony.answer", question=question) as span:
            metrics.counter("symphony.questions").inc()
            result = SymphonyResult(question=question)
            for sub_query in self.decompose(question):
                with tracing.span("symphony.subquery", sub_query=sub_query):
                    try:
                        step = self._answer_one(sub_query)
                    except Exception as exc:  # noqa: BLE001 - isolate subquery
                        metrics.counter("symphony.subquery.degraded").inc()
                        degradation.record(
                            component="symphony", point=sub_query,
                            action="degraded_subquery", error=str(exc),
                        )
                        step = SubQueryResult(
                            sub_query=sub_query, dataset=None, kind=None,
                            module=None, answer="unknown", error=str(exc),
                        )
                # Routing decisions are the E5 diagnostic: which module each
                # sub-query landed on, and how often retrieval came up empty.
                module = step.module or "unrouted"
                metrics.counter(f"symphony.route.{module}").inc()
                result.steps.append(step)
            span.set(sub_queries=len(result.steps),
                     degraded=sum(1 for s in result.steps if s.degraded))
            return result

    def _answer_one(self, sub_query: str) -> SubQueryResult:
        faults.point("symphony.subquery")
        wants_aggregate = any(h in sub_query.lower() for h in _AGG_HINTS)
        located = self.retrieve(
            sub_query, prefer_kind="table" if wants_aggregate else None
        )
        if located is None:
            return SubQueryResult(
                sub_query=sub_query, dataset=None, kind=None,
                module=None, answer="unknown",
            )
        kind, name = located
        if kind == "document":
            return SubQueryResult(
                sub_query=sub_query, dataset=name, kind=kind, module="doc-qa",
                answer=self._doc_answer(name, sub_query),
            )
        # Table routing is a fallback chain: Text-to-SQL (aggregates only)
        # degrades to TableQA degrades to an honest "unknown".
        tiers: list[tuple[str, object]] = []
        if wants_aggregate:
            tiers.append(("text-to-sql", self._sql_answer))
        tiers.append(("table-qa", self._tableqa_answer))
        tiers.append(("no-answer", lambda q, n, k: SubQueryResult(
            sub_query=q, dataset=n, kind=k, module=None, answer="unknown",
        )))
        chain = FallbackChain("symphony.table", tiers,
                              catch=(ParseError, ReproError))
        result, _tier = chain.serve(sub_query, name, kind)
        return result

    def _sql_answer(self, sub_query: str, name: str, kind: str) -> SubQueryResult:
        grounded = self._text2sql[name].translate(sub_query)
        table = self._db.query(grounded.sql)
        return SubQueryResult(
            sub_query=sub_query, dataset=name, kind=kind,
            module="text-to-sql", answer=self._scalarize(table),
            sql=grounded.sql,
        )

    def _tableqa_answer(self, sub_query: str, name: str, kind: str) -> SubQueryResult:
        qa = self._tableqa[name].answer(sub_query)
        return SubQueryResult(
            sub_query=sub_query, dataset=name, kind=kind,
            module="table-qa", answer=qa.text,
        )

    def _doc_answer(self, name: str, sub_query: str) -> str:
        """Extractive QA: the document sentence sharing the most query tokens."""
        from repro.text.tokenize import sentences, words

        text = self.lake.documents[name].text
        query_tokens = set(words(sub_query))
        best_score, best = 0, "unknown"
        for sentence in sentences(text):
            overlap = len(query_tokens & set(words(sentence)))
            if overlap > best_score:
                best_score, best = overlap, sentence.strip()
        return best

    @staticmethod
    def _scalarize(table) -> str:
        if table.num_rows == 1 and table.num_columns == 1:
            value = table.row(0)[0]
            return "unknown" if value is None else str(value)
        if table.num_rows >= 1 and table.num_columns >= 1:
            return str(table.row(0)[0])
        return "unknown"
