"""Natural-language → SQL translation (the SCPrompt stand-in, §3.1(4)).

A schema-aware semantic parser: aggregate keywords pick the SELECT shape,
and query tokens are grounded against a column-value index to build WHERE
equality predicates.  It covers the aggregate/filter/count queries the
Symphony experiment issues; anything it cannot ground raises
:class:`~repro.errors.ParseError` so the router can fall back.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import ParseError
from repro.table import Table
from repro.text.tokenize import words

def _quote(value: str) -> str:
    escaped = value.replace("'", "''")
    return f"'{escaped}'"


def _predicate(column: str, values: list[str]) -> str:
    """One column's grounded values as SQL: equality for a single value,
    an ``IN`` list (sorted, deduplicated) for several."""
    unique = sorted(set(values))
    if len(unique) == 1:
        return f"{column} = {_quote(unique[0])}"
    return f"{column} in ({', '.join(_quote(v) for v in unique)})"


_AGG_KEYWORDS = [
    ("how many", "count"),
    ("number of", "count"),
    ("count of", "count"),
    ("average", "avg"),
    ("mean", "avg"),
    ("total", "sum"),
    ("sum of", "sum"),
    ("highest", "max"),
    ("maximum", "max"),
    ("most expensive", "max"),
    ("lowest", "min"),
    ("minimum", "min"),
    ("cheapest", "min"),
]


@dataclass
class GroundedQuery:
    """The parse result: SQL plus which tokens grounded where."""

    sql: str
    aggregate: str | None
    target_column: str | None
    filters: list[tuple[str, str]]


class TextToSQL:
    """Translate NL questions into SQL for one table."""

    def __init__(self, table_name: str, table: Table):
        self.table_name = table_name
        self.table = table
        # Value index: token -> (column, full value) for categorical grounding.
        self._value_index: dict[str, list[tuple[str, str]]] = {}
        for column in table.schema.names:
            if table.schema.dtype_of(column) != "str":
                continue
            for value in sorted({v for v in table.column(column) if v is not None}):
                for token in words(str(value)):
                    self._value_index.setdefault(token, []).append((column, str(value)))

    def translate(self, question: str) -> GroundedQuery:
        """Produce SQL for the question; raise ParseError if ungroundable."""
        q = question.lower().strip().rstrip("?")
        aggregate = None
        for phrase, fn in _AGG_KEYWORDS:
            if phrase in q:
                aggregate = fn
                break
        target_column = self._target_column(q, aggregate)
        filters = self._ground_filters(q)
        select = self._select_clause(aggregate, target_column, q)
        where = ""
        if filters:
            by_column: dict[str, list[str]] = {}
            for column, value in filters:
                by_column.setdefault(column, []).append(value)
            predicates = " and ".join(
                _predicate(column, values)
                for column, values in sorted(by_column.items())
            )
            where = f" where {predicates}"
        sql = f"select {select} from {self.table_name}{where}"
        if aggregate in ("max", "min") and target_column:
            # "most expensive product" wants the row, not the number: order it.
            name_col = self._entity_column()
            direction = "desc" if aggregate == "max" else "asc"
            sql = (
                f"select {name_col} from {self.table_name}{where} "
                f"order by {target_column} {direction} limit 1"
            )
        return GroundedQuery(
            sql=sql, aggregate=aggregate,
            target_column=target_column, filters=filters,
        )

    def _select_clause(self, aggregate: str | None,
                       target_column: str | None, q: str) -> str:
        if aggregate == "count":
            return "count(*) as n"
        if aggregate in ("avg", "sum", "max", "min") and target_column:
            # max/min get rewritten into ORDER BY … LIMIT 1 by the caller.
            return f"{aggregate}({target_column}) as value"
        if aggregate is None:
            requested = self._requested_column(q)
            if requested:
                return requested
        raise ParseError(f"cannot build a SELECT for: {q!r}")

    def _target_column(self, q: str, aggregate: str | None) -> str | None:
        if aggregate in (None, "count"):
            return None
        numeric = [
            c for c in self.table.schema.names
            if self.table.schema.dtype_of(c) in ("int", "float")
        ]
        for column in numeric:
            if column.lower() in q:
                return column
        # Default numeric target: price-like first, else the first numeric.
        for column in numeric:
            if "price" in column.lower():
                return column
        return numeric[0] if numeric else None

    def _requested_column(self, q: str) -> str | None:
        for column in self.table.schema.names:
            if re.search(rf"\b{re.escape(column.lower())}\b", q):
                return column
        return None

    def _entity_column(self) -> str:
        for column in self.table.schema.names:
            if column.lower() in ("name", "title"):
                return column
        return self.table.schema.names[0]

    def _ground_filters(self, q: str) -> list[tuple[str, str]]:
        """Match query tokens against the column-value index.

        A value is grounded when all of its tokens appear in the question.
        Every grounded value is kept — multiple values for one column
        become an ``IN`` list — except values whose token set is a strict
        subset of another grounded value's in the same column ("oak" must
        not survive when "the oak kitchen" grounded).
        """
        tokens = set(words(q))
        grounded: dict[str, dict[str, set[str]]] = {}
        seen: set[tuple[str, str]] = set()
        for token in sorted(tokens):  # sorted: ties must not depend on hash order
            for column, value in self._value_index.get(token, ()):
                if (column, value) in seen:
                    continue
                seen.add((column, value))
                value_tokens = set(words(value))
                if value_tokens <= tokens:
                    grounded.setdefault(column, {})[value] = value_tokens
        out: list[tuple[str, str]] = []
        for column, values in grounded.items():
            for value, value_tokens in values.items():
                if any(value_tokens < other for other in values.values()):
                    continue
                out.append((column, value))
        return sorted(out)
