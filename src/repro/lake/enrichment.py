"""Data enrichment from the lake (ARDA-style; tutorial intro, "enriching a
data set with other data sets").

Given a base table with a prediction label, find joinable tables in the
lake, join their columns in as candidate features, and keep only the
augmentations that actually improve cross-validated downstream accuracy —
the guarded forward-selection loop at the core of ARDA.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.lake.discovery import JoinDiscovery
from repro.lake.lake import DataLake
from repro.ml.models import Classifier, LogisticRegression
from repro.ml.preprocessing import OneHotEncoder, StandardScaler
from repro.ml.selection import cross_val_score
from repro.table import Table


@dataclass
class Augmentation:
    """One candidate enrichment: join ``table.column`` onto the base key."""

    table_name: str
    join_column: str
    feature_columns: list[str]
    containment: float


@dataclass
class EnrichmentReport:
    """What was tried and what was kept."""

    base_score: float
    final_score: float
    accepted: list[Augmentation] = field(default_factory=list)
    rejected: list[Augmentation] = field(default_factory=list)

    @property
    def gain(self) -> float:
        return self.final_score - self.base_score


def _featurize(table: Table, label_column: str) -> tuple[np.ndarray, np.ndarray]:
    """Numeric matrix from a table: numerics standardized, strings one-hot."""
    numeric_cols = [
        c for c in table.schema.names
        if c != label_column and table.schema.dtype_of(c) in ("int", "float")
    ]
    string_cols = [
        c for c in table.schema.names
        if c != label_column and table.schema.dtype_of(c) == "str"
    ]
    blocks: list[np.ndarray] = []
    if numeric_cols:
        numeric = np.array([
            [0.0 if v is None else float(v) for v in table.column(c)]
            for c in numeric_cols
        ]).T
        blocks.append(StandardScaler().fit_transform(numeric))
    if string_cols:
        strings = np.array(
            [table.column(c) for c in string_cols], dtype=object
        ).T
        blocks.append(OneHotEncoder().fit_transform(strings))
    X = np.hstack(blocks) if blocks else np.zeros((table.num_rows, 0))
    y = np.asarray(table.column(label_column))
    return X, y


class Enricher:
    """Forward-selects lake joins that improve downstream accuracy."""

    def __init__(self, lake: DataLake, make_model=None, folds: int = 3,
                 min_containment: float = 0.5, min_gain: float = 0.005,
                 seed: int = 0):
        self.lake = lake
        self.make_model = make_model or (lambda: LogisticRegression(epochs=120))
        self.folds = folds
        self.min_containment = min_containment
        self.min_gain = min_gain
        self.seed = seed
        self._discovery = JoinDiscovery(lake, threshold=min_containment)

    def candidates(self, base: Table, key_column: str) -> list[Augmentation]:
        """Joinable (table, column) pairs whose key overlaps the base key."""
        # Register the base temporarily? JoinDiscovery indexes the lake only,
        # so compare signatures directly.
        from repro.text.minhash import MinHasher

        hasher = self._discovery._hasher
        base_values = {str(v) for v in base.column(key_column) if v is not None}
        if not base_values:
            return []
        base_sig = hasher.signature(base_values)
        out: list[Augmentation] = []
        for (table_name, column), signature in self._discovery._signatures.items():
            score = MinHasher.estimate_jaccard(base_sig, signature)
            if score < self.min_containment:
                continue
            other = self.lake.tables[table_name].table
            features = [c for c in other.schema.names if c != column]
            if features:
                out.append(Augmentation(
                    table_name=table_name, join_column=column,
                    feature_columns=features, containment=float(score),
                ))
        out.sort(key=lambda a: -a.containment)
        return out

    def _score(self, table: Table, label_column: str) -> float:
        X, y = _featurize(table, label_column)
        if X.shape[1] == 0:
            return 0.0
        return cross_val_score(self.make_model, X, y, folds=self.folds,
                               seed=self.seed)

    def enrich(self, base: Table, key_column: str,
               label_column: str) -> tuple[Table, EnrichmentReport]:
        """Greedy forward selection over candidate joins.

        Each candidate is joined (left join, so base rows survive) and kept
        only when CV accuracy improves by at least ``min_gain``.
        """
        report = EnrichmentReport(
            base_score=self._score(base, label_column), final_score=0.0
        )
        current = base
        current_score = report.base_score
        for candidate in self.candidates(base, key_column):
            other = self.lake.tables[candidate.table_name].table
            keep = [candidate.join_column] + candidate.feature_columns
            joined = current.join(
                other.project(keep),
                on=[(key_column, candidate.join_column)],
                how="left",
                suffix=f"_{candidate.table_name}",
            )
            if joined.num_rows != current.num_rows:
                # A one-to-many join would duplicate label rows; skip it.
                report.rejected.append(candidate)
                continue
            score = self._score(joined, label_column)
            if score >= current_score + self.min_gain:
                current, current_score = joined, score
                report.accepted.append(candidate)
            else:
                report.rejected.append(candidate)
        report.final_score = current_score
        return current, report
