"""A multi-modal data lake: named tables plus free-text documents.

This is the substrate Symphony (tutorial §3.1(4)) queries and the discovery
algorithms search.  Tables carry light metadata (name, description) of the
kind real lakes keep in their catalogs.

The lake is mutable — pipelines (:mod:`repro.dlt`) re-register their gold
tables on every refresh — so it carries a monotonically increasing
``version`` that every mutation bumps.  Derived indexes
(:class:`~repro.lake.discovery.LakeIndex`,
:class:`~repro.lake.discovery.JoinDiscovery`) remember the version they
were built against and rebuild lazily when the lake has moved on, so a
refreshed table is searchable without manual cache invalidation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaError
from repro.table import Table


@dataclass
class LakeTable:
    """A table registered in the lake with catalog metadata."""

    name: str
    table: Table
    description: str = ""

    def serialize(self, max_values_per_column: int = 50) -> str:
        """A flat-text rendering (schema + distinct values) for indexing.

        This mirrors Symphony's "cross-modal representation": every dataset,
        table or text, becomes a token sequence the same index can search.
        Distinct values (rather than sample rows) make low-cardinality filter
        columns like *cuisine* fully searchable without bloating the index
        with every row of high-cardinality columns.
        """
        parts = [self.name, self.description]
        parts.extend(self.table.schema.names)
        for column in self.table.schema.names:
            distinct: set[str] = set()
            for value in self.table.column(column):
                if value is None:
                    continue
                distinct.add(str(value))
                if len(distinct) >= max_values_per_column:
                    break
            parts.extend(sorted(distinct))
        return " ".join(parts)


@dataclass
class LakeDocument:
    """A text document registered in the lake."""

    name: str
    text: str

    def serialize(self) -> str:
        return f"{self.name} {self.text}"


@dataclass
class DataLake:
    """The lake itself: a catalog of tables and documents."""

    tables: dict[str, LakeTable] = field(default_factory=dict)
    documents: dict[str, LakeDocument] = field(default_factory=dict)
    #: Bumped on every mutation; derived indexes compare against it to
    #: detect staleness (see module docstring).
    version: int = 0

    def add_table(self, name: str, table: Table, description: str = "",
                  overwrite: bool = False) -> None:
        """Register (or with ``overwrite=True``, replace) a table.

        Replacing bumps :attr:`version` like any other mutation, so stale
        discovery indexes rebuild on their next query.
        """
        if name in self.tables and not overwrite:
            raise SchemaError(
                f"table {name!r} already registered "
                f"(pass overwrite=True to replace it)"
            )
        self.tables[name] = LakeTable(name=name, table=table, description=description)
        self.version += 1

    def add_document(self, name: str, text: str,
                     overwrite: bool = False) -> None:
        if name in self.documents and not overwrite:
            raise SchemaError(
                f"document {name!r} already registered "
                f"(pass overwrite=True to replace it)"
            )
        self.documents[name] = LakeDocument(name=name, text=text)
        self.version += 1

    def remove_table(self, name: str) -> None:
        if name not in self.tables:
            raise SchemaError(f"table {name!r} is not registered")
        del self.tables[name]
        self.version += 1

    def table_names(self) -> list[str]:
        return list(self.tables)

    def datasets(self) -> list[tuple[str, str, str]]:
        """All datasets as ``(kind, name, serialized text)`` rows."""
        out = [
            ("table", t.name, t.serialize()) for t in self.tables.values()
        ]
        out.extend(
            ("document", d.name, d.serialize()) for d in self.documents.values()
        )
        return out

    def __len__(self) -> int:
        return len(self.tables) + len(self.documents)
