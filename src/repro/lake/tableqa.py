"""Table question answering (the PASTA stand-in, §3.1(4)).

Answers lookup questions against one table: find the row whose entity column
best matches the question's entity mention, then return the requested
attribute.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParseError
from repro.table import Table
from repro.text.similarity import jaccard_similarity, jaro_winkler_similarity
from repro.text.tokenize import words


@dataclass
class TableAnswer:
    """An answer with the supporting row index."""

    text: str
    row: int
    column: str


class TableQA:
    """Row-lookup QA over a single table."""

    def __init__(self, table_name: str, table: Table):
        self.table_name = table_name
        self.table = table
        self._entity_column = self._pick_entity_column(table)

    @staticmethod
    def _pick_entity_column(table: Table) -> str:
        for column in table.schema.names:
            if column.lower() in ("name", "title"):
                return column
        # Fall back to the first string column.
        for column in table.schema.names:
            if table.schema.dtype_of(column) == "str":
                return column
        return table.schema.names[0]

    def answer(self, question: str) -> TableAnswer:
        """Answer "what is the <attribute> of <entity>" style questions."""
        q = question.lower().strip().rstrip("?")
        column = self._requested_column(q)
        if column is None:
            raise ParseError(f"no attribute of {self.table_name} mentioned in: {q!r}")
        row = self._best_row(q)
        if row is None:
            raise ParseError(f"no row of {self.table_name} matches: {q!r}")
        value = self.table.cell(row, column)
        return TableAnswer(
            text="unknown" if value is None else str(value), row=row, column=column
        )

    def _requested_column(self, q: str) -> str | None:
        tokens = set(words(q))
        best = None
        for column in self.table.schema.names:
            if column == self._entity_column:
                continue
            if set(words(column)) <= tokens:
                if best is None or len(column) > len(best):
                    best = column
        return best

    def _best_row(self, q: str) -> int | None:
        """Row whose entity value overlaps the question most."""
        best_score, best_row = 0.35, None
        for i, value in enumerate(self.table.column(self._entity_column)):
            if value is None:
                continue
            text = str(value).lower()
            score = 0.7 * jaccard_similarity(text, q) + 0.3 * (
                1.0 if text in q else jaro_winkler_similarity(text, q) * 0.5
            )
            if score > best_score:
                best_score, best_row = score, i
        return best_row
