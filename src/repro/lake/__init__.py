"""Data lake substrate + Symphony NL query answering."""

from repro.lake.enrichment import Augmentation, Enricher, EnrichmentReport
from repro.lake.discovery import DiscoveryHit, JoinDiscovery, LakeIndex, unionable_tables
from repro.lake.lake import DataLake, LakeDocument, LakeTable
from repro.lake.symphony import SubQueryResult, Symphony, SymphonyResult
from repro.lake.tableqa import TableAnswer, TableQA
from repro.lake.text2sql import GroundedQuery, TextToSQL

__all__ = [
    "Augmentation",
    "DataLake",
    "Enricher",
    "EnrichmentReport",
    "DiscoveryHit",
    "GroundedQuery",
    "JoinDiscovery",
    "LakeDocument",
    "LakeIndex",
    "LakeTable",
    "SubQueryResult",
    "Symphony",
    "SymphonyResult",
    "TableAnswer",
    "TableQA",
    "TextToSQL",
    "unionable_tables",
]
