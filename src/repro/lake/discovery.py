"""Dataset discovery over the lake: keyword search, joinable and unionable
table search (the Aurum-style primitives the tutorial's intro cites).

Both index classes are **version-tracking**: they remember the
:attr:`~repro.lake.DataLake.version` they were built against and rebuild
lazily on the first query after the lake mutates (a pipeline refresh
overwriting a gold table, a new registration).  Queries therefore never
serve results for a table that has been replaced — at the cost of one
rebuild per batch of mutations rather than per mutation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lake.lake import DataLake
from repro.table import Table
from repro.text.minhash import MinHasher
from repro.text.tfidf import TfidfIndex


@dataclass
class DiscoveryHit:
    """One search result."""

    kind: str  # "table" | "document"
    name: str
    score: float


class LakeIndex:
    """Keyword search over every dataset's serialized representation."""

    def __init__(self, lake: DataLake):
        self.lake = lake
        self._rebuild()

    def _rebuild(self) -> None:
        rows = self.lake.datasets()
        self._kinds = [r[0] for r in rows]
        self._names = [r[1] for r in rows]
        self._index = (
            TfidfIndex([r[2] for r in rows], drop_stopwords=True, stem_tokens=True)
            if rows else None
        )
        self._built_version = self.lake.version

    @property
    def stale(self) -> bool:
        """True when the lake has mutated since the index was built."""
        return self.lake.version != self._built_version

    def search(self, query: str, k: int = 5) -> list[DiscoveryHit]:
        if self.stale:
            self._rebuild()
        if self._index is None:
            return []
        hits = self._index.search(query, k=k)
        return [
            DiscoveryHit(kind=self._kinds[i], name=self._names[i], score=score)
            for i, score in hits
        ]


class JoinDiscovery:
    """Find joinable columns across lake tables via MinHash containment.

    Two columns are join candidates when the estimated Jaccard of their value
    sets exceeds ``threshold``.
    """

    def __init__(self, lake: DataLake, num_perm: int = 64, threshold: float = 0.5):
        self.lake = lake
        self.threshold = threshold
        self._hasher = MinHasher(num_perm=num_perm)
        self._rebuild()

    def _rebuild(self) -> None:
        self._signatures: dict[tuple[str, str], object] = {}
        for lt in self.lake.tables.values():
            for column in lt.table.schema.names:
                values = {
                    str(v) for v in lt.table.column(column) if v is not None
                }
                if values:
                    self._signatures[(lt.name, column)] = self._hasher.signature(values)
        self._built_version = self.lake.version

    @property
    def stale(self) -> bool:
        """True when the lake has mutated since signatures were built."""
        return self.lake.version != self._built_version

    def joinable_with(self, table_name: str, column: str) -> list[tuple[str, str, float]]:
        """Columns in *other* tables joinable with ``table.column``,
        as ``(table, column, estimated jaccard)`` sorted by score."""
        if self.stale:
            self._rebuild()
        key = (table_name, column)
        if key not in self._signatures:
            return []
        own = self._signatures[key]
        out = []
        for (other_table, other_column), sig in self._signatures.items():
            if other_table == table_name:
                continue
            score = MinHasher.estimate_jaccard(own, sig)
            if score >= self.threshold:
                out.append((other_table, other_column, score))
        out.sort(key=lambda x: -x[2])
        return out


def unionable_tables(lake: DataLake, table: Table,
                     min_overlap: float = 0.6) -> list[tuple[str, float]]:
    """Tables whose schemas overlap ``table``'s by at least ``min_overlap``
    (name-level Jaccard over column names) — candidates for unioning."""
    own = set(table.schema.names)
    out = []
    for lt in lake.tables.values():
        other = set(lt.table.schema.names)
        union = own | other
        if not union:
            continue
        score = len(own & other) / len(union)
        if score >= min_overlap:
            out.append((lt.name, score))
    out.sort(key=lambda x: -x[1])
    return out
