"""Recursive-descent parser for the supported SQL subset.

Grammar (case-insensitive keywords)::

    query    := SELECT items FROM name join* [WHERE expr]
                [GROUP BY cols] [ORDER BY col [ASC|DESC]] [LIMIT n]
    join     := JOIN name ON col = col
    items    := '*' | item (',' item)*
    item     := expr [AS name]
    expr     := or-expression over comparisons, arithmetic, literals,
                column refs, and aggregate calls; comparisons include
                [NOT] IN (literal, ...) and [NOT] BETWEEN low AND high,
                desugared to =/<>/>=/<= chains with SQL three-valued
                NULL semantics
"""

from __future__ import annotations

import re

from repro.errors import ParseError
from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    FuncCall,
    JoinClause,
    Literal,
    Query,
    SelectItem,
    UnaryOp,
)

_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<number>-?\d+\.\d+|-?\d+)"
    r"|(?P<string>'(?:[^']|'')*')"
    r"|(?P<op><=|>=|<>|!=|=|<|>|\+|-|\*|/|\(|\)|,|\.)"
    r"|(?P<word>[A-Za-z_][A-Za-z_0-9]*)"
    r")"
)

KEYWORDS = {
    "select", "from", "where", "group", "by", "order", "limit", "as",
    "and", "or", "not", "join", "on", "asc", "desc", "null", "is",
    "true", "false", "in", "between",
}

AGGREGATES = {"count", "sum", "avg", "min", "max"}


def tokenize(sql: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(sql):
        match = _TOKEN_RE.match(sql, pos)
        if not match:
            rest = sql[pos:].strip()
            if not rest:
                break
            raise ParseError(f"cannot tokenize SQL near: {rest[:25]!r}")
        pos = match.end()
        if match.lastgroup == "number":
            tokens.append(("number", match.group("number")))
        elif match.lastgroup == "string":
            raw = match.group("string")[1:-1].replace("''", "'")
            tokens.append(("string", raw))
        elif match.lastgroup == "op":
            tokens.append(("op", match.group("op")))
        else:
            word = match.group("word")
            kind = "keyword" if word.lower() in KEYWORDS else "name"
            tokens.append((kind, word.lower() if kind == "keyword" else word))
    return tokens


class _Parser:
    def __init__(self, tokens: list[tuple[str, str]]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> tuple[str, str] | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> tuple[str, str]:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of SQL")
        self.pos += 1
        return token

    def expect_keyword(self, word: str) -> None:
        kind, value = self.next()
        if kind != "keyword" or value != word:
            raise ParseError(f"expected {word.upper()}, got {value!r}")

    def accept_keyword(self, word: str) -> bool:
        token = self.peek()
        if token and token[0] == "keyword" and token[1] == word:
            self.pos += 1
            return True
        return False

    def accept_op(self, op: str) -> bool:
        token = self.peek()
        if token and token[0] == "op" and token[1] == op:
            self.pos += 1
            return True
        return False

    # -- grammar -------------------------------------------------------------

    def query(self) -> Query:
        self.expect_keyword("select")
        select_star = False
        items: list[SelectItem] = []
        if self.accept_op("*"):
            select_star = True
        else:
            items.append(self.select_item())
            while self.accept_op(","):
                items.append(self.select_item())
        self.expect_keyword("from")
        kind, table = self.next()
        if kind != "name":
            raise ParseError(f"expected table name, got {table!r}")
        query = Query(select=items, table=table, select_star=select_star)
        while self.accept_keyword("join"):
            query.joins.append(self.join_clause())
        if self.accept_keyword("where"):
            query.where = self.expr()
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            query.group_by.append(self.column_name())
            while self.accept_op(","):
                query.group_by.append(self.column_name())
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            column = self.column_name()
            descending = False
            if self.accept_keyword("desc"):
                descending = True
            else:
                self.accept_keyword("asc")
            query.order_by = (column, descending)
        if self.accept_keyword("limit"):
            kind, value = self.next()
            if kind != "number":
                raise ParseError(f"LIMIT expects a number, got {value!r}")
            query.limit = int(value)
        if self.peek() is not None:
            raise ParseError(f"unexpected trailing tokens: {self.tokens[self.pos:]}")
        return query

    def join_clause(self) -> JoinClause:
        kind, table = self.next()
        if kind != "name":
            raise ParseError(f"expected join table name, got {table!r}")
        self.expect_keyword("on")
        left = self.column_name()
        if not self.accept_op("="):
            raise ParseError("JOIN condition must be col = col")
        right = self.column_name()
        return JoinClause(table=table, left_col=left, right_col=right)

    def select_item(self) -> SelectItem:
        expr = self.expr()
        alias = None
        if self.accept_keyword("as"):
            kind, alias_name = self.next()
            if kind != "name":
                raise ParseError(f"expected alias name, got {alias_name!r}")
            alias = alias_name
        return SelectItem(expr=expr, alias=alias)

    def column_name(self) -> str:
        kind, value = self.next()
        if kind != "name":
            raise ParseError(f"expected column name, got {value!r}")
        # Accept a "table.column" qualifier and keep the column: the
        # engine resolves columns by bare name (joins suffix clashes), so
        # the qualifier is documentation, not disambiguation.
        if self.peek() == ("op", "."):
            self.next()
            kind, column = self.next()
            if kind != "name":
                raise ParseError(f"expected column after {value!r}., "
                                 f"got {column!r}")
            return column
        return value

    def expr(self):
        return self.or_expr()

    def or_expr(self):
        left = self.and_expr()
        while self.accept_keyword("or"):
            left = BinaryOp("or", left, self.and_expr())
        return left

    def and_expr(self):
        left = self.not_expr()
        while self.accept_keyword("and"):
            left = BinaryOp("and", left, self.not_expr())
        return left

    def not_expr(self):
        if self.accept_keyword("not"):
            return UnaryOp("not", self.not_expr())
        return self.comparison()

    def comparison(self):
        left = self.additive()
        token = self.peek()
        if token and token[0] == "op" and token[1] in ("=", "<>", "!=", "<", "<=", ">", ">="):
            op = self.next()[1]
            if op == "!=":
                op = "<>"
            return BinaryOp(op, left, self.additive())
        if token and token[0] == "keyword" and token[1] == "is":
            self.next()
            negated = self.accept_keyword("not")
            self.expect_keyword("null")
            node = UnaryOp("isnull", left)
            return UnaryOp("not", node) if negated else node
        # Postfix [NOT] IN / [NOT] BETWEEN.  NOT is only consumed here
        # when IN/BETWEEN follows — a bare trailing NOT belongs to the
        # caller (e.g. "a = 1 and not b").
        negated = False
        if (token == ("keyword", "not")
                and self.pos + 1 < len(self.tokens)
                and self.tokens[self.pos + 1] in (("keyword", "in"),
                                                  ("keyword", "between"))):
            self.next()
            negated = True
            token = self.peek()
        if token and token[0] == "keyword" and token[1] == "in":
            self.next()
            return self._in_list(left, negated)
        if token and token[0] == "keyword" and token[1] == "between":
            self.next()
            return self._between(left, negated)
        return left

    def _in_list(self, left, negated: bool):
        """Desugar ``x [NOT] IN (a, b, ...)`` to comparison chains.

        ``IN`` becomes ``x = a OR x = b``; ``NOT IN`` becomes
        ``x <> a AND x <> b`` — *not* ``NOT (x = a OR ...)``, because a
        NULL ``x`` must drop the row (each ``<>`` is false), whereas the
        engine's NOT over the false comparison would wrongly keep it.
        """
        if not self.accept_op("("):
            raise ParseError("IN expects a parenthesized literal list")
        values = [self._in_literal()]
        while self.accept_op(","):
            values.append(self._in_literal())
        if not self.accept_op(")"):
            raise ParseError("missing ) after IN list")
        if negated:
            out = BinaryOp("<>", left, values[0])
            for value in values[1:]:
                out = BinaryOp("and", out, BinaryOp("<>", left, value))
            return out
        out = BinaryOp("=", left, values[0])
        for value in values[1:]:
            out = BinaryOp("or", out, BinaryOp("=", left, value))
        return out

    def _in_literal(self) -> Literal:
        expr = self.primary()
        if not isinstance(expr, Literal):
            raise ParseError("IN list elements must be literals")
        return expr

    def _between(self, left, negated: bool):
        """Desugar ``x [NOT] BETWEEN low AND high``.

        ``BETWEEN`` becomes ``x >= low AND x <= high``; the negation
        becomes ``x < low OR x > high`` so a NULL ``x`` yields false on
        both sides and the row drops, matching SQL's UNKNOWN.  Bounds
        parse at additive precedence so the separating AND stays ours.
        """
        low = self.additive()
        self.expect_keyword("and")
        high = self.additive()
        if negated:
            return BinaryOp("or", BinaryOp("<", left, low),
                            BinaryOp(">", left, high))
        return BinaryOp("and", BinaryOp(">=", left, low),
                        BinaryOp("<=", left, high))

    def additive(self):
        left = self.multiplicative()
        while True:
            token = self.peek()
            if token and token[0] == "op" and token[1] in ("+", "-"):
                op = self.next()[1]
                left = BinaryOp(op, left, self.multiplicative())
            else:
                return left

    def multiplicative(self):
        left = self.primary()
        while True:
            token = self.peek()
            if token and token[0] == "op" and token[1] in ("*", "/"):
                op = self.next()[1]
                left = BinaryOp(op, left, self.primary())
            else:
                return left

    def primary(self):
        kind, value = self.next()
        if kind == "number":
            return Literal(float(value) if "." in value else int(value))
        if kind == "string":
            return Literal(value)
        if kind == "keyword" and value in ("true", "false"):
            return Literal(value == "true")
        if kind == "keyword" and value == "null":
            return Literal(None)
        if kind == "op" and value == "(":
            inner = self.expr()
            if not self.accept_op(")"):
                raise ParseError("missing closing parenthesis")
            return inner
        if kind == "op" and value == "-":
            operand = self.primary()
            return UnaryOp("neg", operand)
        if kind == "name":
            if value.lower() in AGGREGATES and self.accept_op("("):
                if self.accept_op("*"):
                    argument: object = "*"
                else:
                    argument = self.expr()
                if not self.accept_op(")"):
                    raise ParseError(f"missing ) after {value}(")
                return FuncCall(value.lower(), argument)
            return ColumnRef(value)
        raise ParseError(f"unexpected token {value!r}")


def parse_sql(sql: str) -> Query:
    """Parse a SELECT statement into a :class:`~repro.sql.ast.Query`."""
    return _Parser(tokenize(sql)).query()
