"""Mini SQL engine over repro tables (the MRKL/Symphony database module)."""

from repro.sql.ast import Query
from repro.sql.engine import Database, execute
from repro.sql.parser import parse_sql, tokenize

__all__ = ["Database", "Query", "execute", "parse_sql", "tokenize"]
