"""Mini SQL engine over repro tables (the MRKL/Symphony database module).

Queries run through three layers (see docs/sql.md): a logical plan IR
(:mod:`repro.sql.plan`), a rule-based optimizer
(:mod:`repro.sql.optimizer`), and a physical planner
(:mod:`repro.sql.physical`) that binds each node to columnar, sharded,
or materialized-view backends.  :func:`execute_naive` is the retained
fixed-order interpreter, the optimizer's equivalence oracle.
"""

from repro.sql.ast import Query
from repro.sql.engine import Database, execute, execute_naive
from repro.sql.optimizer import optimize
from repro.sql.parser import parse_sql, tokenize
from repro.sql.physical import PhysicalPlan, bind
from repro.sql.plan import compile_query, plan_key, render_plan

__all__ = [
    "Database",
    "PhysicalPlan",
    "Query",
    "bind",
    "compile_query",
    "execute",
    "execute_naive",
    "optimize",
    "parse_sql",
    "plan_key",
    "render_plan",
    "tokenize",
]
