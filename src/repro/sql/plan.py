"""Logical plan IR for the SQL engine.

:func:`compile_query` lowers a parsed :class:`~repro.sql.ast.Query` into a
tree of relational nodes — ``Scan → Join* → Filter? → (Aggregate | Sort? →
Project?) → Limit?`` — that the optimizer (:mod:`repro.sql.optimizer`)
rewrites and the physical planner (:mod:`repro.sql.physical`) binds to an
execution backend.  The incremental view compiler
(:mod:`repro.sql.views`) lowers through the same function, so ad-hoc
queries and materialized views share one front end (and one plan
fingerprint vocabulary, which is what makes view substitution possible).

Join output naming is resolved *at compile time*: each :class:`Join` node
carries the ``(source, output)`` rename pairs for the right side's kept
columns, computed against the full catalog schemas.  Optimizer rules that
drop columns later can therefore never change which names collide — the
suffixing decision is frozen before any rewrite runs, exactly matching
what the naive executor's ``Table.join`` would have produced.

Nodes are immutable; rewrites build new trees and share unchanged
subtrees.  :func:`plan_key` renders a canonical structural fingerprint
used to match a query prefix against registered materialized views.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.errors import ParseError, SchemaError
from repro.sql.ast import ColumnRef, Expr, FuncCall, Query, SelectItem
from repro.sql.expr import default_name, expr_columns, render_expr
from repro.sql.parser import AGGREGATES
from repro.table.schema import Schema

__all__ = [
    "Aggregate",
    "Filter",
    "Join",
    "Limit",
    "Node",
    "Project",
    "Scan",
    "Sort",
    "ViewScan",
    "compile_query",
    "output_names",
    "output_schema",
    "plan_key",
    "render_plan",
]


@dataclass(frozen=True)
class Scan:
    """Read a base table/stream.  ``columns=None`` means all columns;
    projection pruning narrows it to the referenced subset."""

    table: str
    columns: tuple[str, ...] | None = None


@dataclass(frozen=True)
class ViewScan:
    """Read an existing materialized view whose plan fingerprint matched
    this subtree (installed by the optimizer's view-substitution rule)."""

    name: str


@dataclass(frozen=True)
class Filter:
    child: "Node"
    predicate: Expr


@dataclass(frozen=True)
class Join:
    """Inner equi-join.  ``renames`` maps each kept right-side column to
    its output name (suffix collisions resolved at compile time); the
    right join key is absent when both key names coincide — ``Table.join``
    drops it."""

    left: "Node"
    right: "Node"
    table: str
    left_col: str
    right_col: str
    renames: tuple[tuple[str, str], ...]


@dataclass(frozen=True)
class Aggregate:
    child: "Node"
    group_by: tuple[str, ...]
    items: tuple[SelectItem, ...] = field(hash=False)


@dataclass(frozen=True)
class Project:
    child: "Node"
    items: tuple[SelectItem, ...] = field(hash=False)


@dataclass(frozen=True)
class Sort:
    child: "Node"
    column: str
    descending: bool = False


@dataclass(frozen=True)
class Limit:
    child: "Node"
    n: int = 0


Node = Any  # union of the dataclasses above


def compile_query(query: Query, catalog) -> Node:
    """Lower a parsed query to a logical plan.

    ``catalog`` needs one method: ``schema_of(name) -> Schema`` (the
    :class:`~repro.sql.engine.Database` provides it for tables, streams,
    and views alike).
    """
    node: Node = Scan(query.table)
    names = list(catalog.schema_of(query.table).names)
    for join in query.joins:
        right_names = catalog.schema_of(join.table).names
        if join.right_col not in right_names:
            raise SchemaError(f"no column {join.right_col!r} in row")
        taken = set(names)
        renames = []
        for col in right_names:
            if col == join.right_col and join.left_col == join.right_col:
                continue                 # Table.join drops the duplicate key
            out = col + "_r" if col in taken else col
            renames.append((col, out))
        node = Join(node, Scan(join.table), join.table,
                    join.left_col, join.right_col, tuple(renames))
        names += [out for _, out in renames]
    if query.where is not None:
        node = Filter(node, query.where)
    if query.group_by or any(isinstance(i.expr, FuncCall) for i in query.select):
        _validate_aggregate_items(query.select, query.group_by)
        node = Aggregate(node, tuple(query.group_by), tuple(query.select))
        if query.order_by is not None:
            node = Sort(node, *query.order_by)
    else:
        if query.order_by is not None:
            node = Sort(node, *query.order_by)
        if not query.select_star:
            node = Project(node, tuple(query.select))
    if query.limit is not None:
        node = Limit(node, query.limit)
    return node


def _validate_aggregate_items(items, group_by) -> None:
    """Reject the same shapes the row-at-a-time oracle rejects — but at
    plan time, so they surface even on empty inputs."""
    for item in items:
        expr = item.expr
        if isinstance(expr, ColumnRef) and expr.name not in group_by:
            raise ParseError(
                f"column {expr.name!r} must appear in GROUP BY or an aggregate"
            )
        if isinstance(expr, FuncCall):
            if expr.argument == "*" and expr.name != "count":
                raise ParseError(f"{expr.name}(*) is not valid SQL")
            if expr.name not in AGGREGATES:
                raise ParseError(f"unknown aggregate {expr.name}")


# -- schema derivation ---------------------------------------------------------


def output_names(node: Node, catalog) -> list[str]:
    """Column names a node produces, in order."""
    if isinstance(node, Scan):
        if node.columns is not None:
            return list(node.columns)
        return list(catalog.schema_of(node.table).names)
    if isinstance(node, ViewScan):
        return list(catalog.schema_of(node.name).names)
    if isinstance(node, (Filter, Sort, Limit)):
        return output_names(node.child, catalog)
    if isinstance(node, (Project, Aggregate)):
        return [item.alias or default_name(item.expr) for item in node.items]
    if isinstance(node, Join):
        child = set(output_names(node.right, catalog))
        return (output_names(node.left, catalog)
                + [out for src, out in node.renames if src in child])
    raise TypeError(f"unknown plan node {node!r}")


def output_schema(node: Node, catalog) -> Schema:
    """Typed output schema for the node subset whose dtypes are derivable
    without evaluating expressions (scans, joins, filters, sort/limit, and
    plain-column projections) — what the view compiler needs to probe
    vectorizability against an empty table."""
    if isinstance(node, Scan):
        schema = catalog.schema_of(node.table)
        if node.columns is None:
            return schema
        return schema.project(list(node.columns))
    if isinstance(node, ViewScan):
        return catalog.schema_of(node.name)
    if isinstance(node, (Filter, Sort, Limit)):
        return output_schema(node.child, catalog)
    if isinstance(node, Join):
        left = output_schema(node.left, catalog)
        right = output_schema(node.right, catalog)
        renames = dict(node.renames)
        fields = [(f.name, f.dtype) for f in left]
        fields += [(renames[f.name], f.dtype) for f in right
                   if f.name in renames]
        return Schema(fields)
    if isinstance(node, Project):
        child = output_schema(node.child, catalog)
        fields = []
        for item in node.items:
            if not isinstance(item.expr, ColumnRef):
                raise SchemaError(
                    "output_schema: computed projection has no static dtype"
                )
            fields.append((item.alias or item.expr.name,
                           child.dtype_of(item.expr.name)))
        return Schema(fields)
    raise SchemaError(f"output_schema: unsupported node {type(node).__name__}")


# -- rendering / fingerprints --------------------------------------------------


def describe(node: Node) -> str:
    """One-line description of a node (shared by plan rendering and the
    per-rule rewrite annotations)."""
    if isinstance(node, Scan):
        cols = f" cols=[{', '.join(node.columns)}]" if node.columns else ""
        return f"scan {node.table}{cols}"
    if isinstance(node, ViewScan):
        return f"scan view {node.name}"
    if isinstance(node, Filter):
        return f"filter {render_expr(node.predicate)}"
    if isinstance(node, Join):
        return f"join {node.table} on {node.left_col} = {node.right_col}"
    if isinstance(node, Aggregate):
        by = ", ".join(node.group_by) if node.group_by else "<all>"
        names = ", ".join(i.alias or default_name(i.expr) for i in node.items)
        return f"aggregate by {by} [{names}]"
    if isinstance(node, Project):
        names = ", ".join(i.alias or default_name(i.expr) for i in node.items)
        return f"project [{names}]"
    if isinstance(node, Sort):
        return f"sort {node.column} {'desc' if node.descending else 'asc'}"
    if isinstance(node, Limit):
        return f"limit {node.n}"
    return repr(node)


def render_plan(node: Node, indent: int = 0) -> str:
    """Indented tree rendering (joins nest both inputs)."""
    pad = "  " * indent
    line = pad + describe(node)
    if isinstance(node, Join):
        return "\n".join([line,
                          render_plan(node.left, indent + 1),
                          render_plan(node.right, indent + 1)])
    child = getattr(node, "child", None)
    if child is not None:
        return "\n".join([line, render_plan(child, indent + 1)])
    return line


def plan_key(node: Node) -> str:
    """Canonical structural fingerprint for view matching.

    Computed over the plan *after* constant folding and predicate pushdown
    but before pruning/reordering (see :func:`repro.sql.optimizer.optimize`),
    so a view's stored key and an ad-hoc query's subtree keys agree
    whenever they describe the same computation.
    """
    if isinstance(node, Scan):
        return f"scan({node.table})"     # pruning runs after substitution
    if isinstance(node, ViewScan):
        return f"view({node.name})"
    if isinstance(node, Filter):
        return f"filter({plan_key(node.child)},{node.predicate!r})"
    if isinstance(node, Join):
        return (f"join({plan_key(node.left)},{plan_key(node.right)},"
                f"{node.left_col}={node.right_col})")
    if isinstance(node, Aggregate):
        items = ";".join(f"{i.expr!r} as {i.alias or default_name(i.expr)}"
                         for i in node.items)
        return f"agg({plan_key(node.child)},by={','.join(node.group_by)},{items})"
    if isinstance(node, Project):
        items = ";".join(f"{i.expr!r} as {i.alias or default_name(i.expr)}"
                         for i in node.items)
        return f"project({plan_key(node.child)},{items})"
    if isinstance(node, Sort):
        return f"sort({plan_key(node.child)},{node.column},{node.descending})"
    if isinstance(node, Limit):
        return f"limit({plan_key(node.child)},{node.n})"
    raise TypeError(f"unknown plan node {node!r}")


def replace_child(node: Node, child: Node) -> Node:
    """A copy of a single-input node with its input replaced."""
    return replace(node, child=child)


def referenced_columns(node: Node) -> set[str]:
    """Input columns a single node itself references (not its subtree)."""
    if isinstance(node, Filter):
        return expr_columns(node.predicate)
    if isinstance(node, Sort):
        return {node.column}
    if isinstance(node, (Project, Aggregate)):
        out: set[str] = set(getattr(node, "group_by", ()))
        for item in node.items:
            out |= expr_columns(item.expr)
        return out
    if isinstance(node, Join):
        return {node.left_col, node.right_col}
    return set()
