"""AST node types for the mini SQL engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Union


@dataclass(frozen=True)
class ColumnRef:
    """A reference to a column by name."""

    name: str


@dataclass(frozen=True)
class Literal:
    """A constant value (int, float, str, bool, or None)."""

    value: Any


@dataclass(frozen=True)
class BinaryOp:
    """Comparison / arithmetic / logical operator application."""

    op: str
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class UnaryOp:
    """NOT / negation."""

    op: str
    operand: "Expr"


@dataclass(frozen=True)
class FuncCall:
    """Aggregate call like COUNT(*), SUM(price)."""

    name: str
    argument: Union["Expr", str]  # "*" only for COUNT(*)


Expr = Union[ColumnRef, Literal, BinaryOp, UnaryOp, FuncCall]


@dataclass
class SelectItem:
    """One item of the SELECT list with an optional alias."""

    expr: Expr
    alias: str | None = None


@dataclass
class JoinClause:
    """An INNER JOIN with an equality condition."""

    table: str
    left_col: str
    right_col: str


@dataclass
class Query:
    """A parsed SELECT statement."""

    select: list[SelectItem]
    table: str
    joins: list[JoinClause] = field(default_factory=list)
    where: Expr | None = None
    group_by: list[str] = field(default_factory=list)
    order_by: tuple[str, bool] | None = None  # (column, descending)
    limit: int | None = None
    select_star: bool = False
