"""Execution of parsed SQL queries against :class:`~repro.table.Table`s.

Semantics follow SQL where it matters for the library: three-valued NULL
comparisons (any comparison with NULL is false), aggregates skip NULLs,
COUNT(*) counts rows.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ParseError, SchemaError
from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    Expr,
    FuncCall,
    Literal,
    Query,
    SelectItem,
    UnaryOp,
)
from repro.sql.parser import parse_sql
from repro.table import Table


class Database:
    """A named collection of tables with a ``query`` entry point."""

    def __init__(self, tables: dict[str, Table] | None = None):
        self._tables: dict[str, Table] = dict(tables or {})

    def register(self, name: str, table: Table) -> None:
        self._tables[name] = table

    def table(self, name: str) -> Table:
        if name not in self._tables:
            raise SchemaError(
                f"no table {name!r}; available: {sorted(self._tables)}"
            )
        return self._tables[name]

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def query(self, sql: str) -> Table:
        """Parse and execute a SELECT statement."""
        return execute(parse_sql(sql), self)


def execute(query: Query, db: Database) -> Table:
    table = db.table(query.table)
    for join in query.joins:
        table = table.join(
            db.table(join.table), on=[(join.left_col, join.right_col)]
        )
    if query.where is not None:
        table = table.select(lambda row: bool(_eval(query.where, row)))
    if query.group_by or _has_aggregate(query):
        table = _aggregate(query, table)
        if query.order_by is not None:
            column, descending = query.order_by
            table = table.order_by(column, descending=descending)
    else:
        # ORDER BY may reference source columns the projection drops, so
        # sort before projecting (standard SQL allows both).
        if query.order_by is not None:
            column, descending = query.order_by
            table = table.order_by(column, descending=descending)
        if not query.select_star:
            table = _project(query.select, table)
    if query.limit is not None:
        table = table.limit(query.limit)
    return table


def _has_aggregate(query: Query) -> bool:
    return any(isinstance(item.expr, FuncCall) for item in query.select)


def _project(items: list[SelectItem], table: Table) -> Table:
    names = []
    rows = []
    for item in items:
        names.append(item.alias or _default_name(item.expr))
    for row in table.row_dicts():
        rows.append(tuple(_eval(item.expr, row) for item in items))
    if not rows:
        # Infer dtypes from source schema where possible.
        fields = []
        for item, name in zip(items, names):
            dtype = (
                table.schema.dtype_of(item.expr.name)
                if isinstance(item.expr, ColumnRef) and item.expr.name in table.schema
                else "str"
            )
            fields.append((name, dtype))
        return Table.empty(fields)
    return Table.from_rows(rows, names=names)


def _aggregate(query: Query, table: Table) -> Table:
    groups: dict[tuple, list[dict[str, Any]]] = {}
    order: list[tuple] = []
    for row in table.row_dicts():
        key = tuple(row[k] for k in query.group_by)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(row)
    if not query.group_by and not groups:
        groups[()] = []
        order.append(())
    names = []
    for item in query.select:
        names.append(item.alias or _default_name(item.expr))
    out_rows = []
    for key in order:
        rows = groups[key]
        values = []
        for item in query.select:
            values.append(_eval_aggregate(item.expr, rows, dict(zip(query.group_by, key))))
        out_rows.append(tuple(values))
    return Table.from_rows(out_rows, names=names)


def _eval_aggregate(expr: Expr, rows: list[dict[str, Any]],
                    key_values: dict[str, Any]) -> Any:
    if isinstance(expr, FuncCall):
        if expr.argument == "*":
            if expr.name != "count":
                raise ParseError(f"{expr.name}(*) is not valid SQL")
            return len(rows)
        args = [_eval(expr.argument, row) for row in rows]
        args = [a for a in args if a is not None]
        if expr.name == "count":
            return len(args)
        if not args:
            return None
        if expr.name == "sum":
            return sum(args)
        if expr.name == "min":
            return min(args)
        if expr.name == "max":
            return max(args)
        if expr.name == "avg":
            return sum(args) / len(args)
        raise ParseError(f"unknown aggregate {expr.name}")
    if isinstance(expr, ColumnRef):
        if expr.name in key_values:
            return key_values[expr.name]
        raise ParseError(
            f"column {expr.name!r} must appear in GROUP BY or an aggregate"
        )
    if isinstance(expr, Literal):
        return expr.value
    raise ParseError("unsupported expression in aggregate SELECT list")


def _default_name(expr: Expr) -> str:
    if isinstance(expr, ColumnRef):
        return expr.name
    if isinstance(expr, FuncCall):
        arg = expr.argument if isinstance(expr.argument, str) else _default_name(expr.argument)
        return f"{expr.name}_{arg}".replace("*", "all")
    return "expr"


def _eval(expr: Expr, row: dict[str, Any]) -> Any:
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, ColumnRef):
        if expr.name not in row:
            raise SchemaError(f"no column {expr.name!r} in row")
        return row[expr.name]
    if isinstance(expr, UnaryOp):
        if expr.op == "not":
            return not bool(_eval(expr.operand, row))
        if expr.op == "neg":
            value = _eval(expr.operand, row)
            return -value if value is not None else None
        if expr.op == "isnull":
            return _eval(expr.operand, row) is None
        raise ParseError(f"unknown unary op {expr.op}")
    if isinstance(expr, BinaryOp):
        if expr.op == "and":
            return bool(_eval(expr.left, row)) and bool(_eval(expr.right, row))
        if expr.op == "or":
            return bool(_eval(expr.left, row)) or bool(_eval(expr.right, row))
        left = _eval(expr.left, row)
        right = _eval(expr.right, row)
        if expr.op in ("=", "<>", "<", "<=", ">", ">="):
            if left is None or right is None:
                return False
            if expr.op == "=":
                return left == right
            if expr.op == "<>":
                return left != right
            if expr.op == "<":
                return left < right
            if expr.op == "<=":
                return left <= right
            if expr.op == ">":
                return left > right
            return left >= right
        if left is None or right is None:
            return None
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/":
            return left / right if right != 0 else None
        raise ParseError(f"unknown binary op {expr.op}")
    raise ParseError(f"cannot evaluate {expr!r}")
