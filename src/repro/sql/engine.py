"""Execution of parsed SQL queries against :class:`~repro.table.Table`s.

Semantics follow SQL where it matters for the library: three-valued NULL
comparisons (any comparison with NULL is false), aggregates skip NULLs,
COUNT(*) counts rows.

Expression evaluation over WHERE clauses and SELECT projections is
whole-column vectorized (:func:`_eval_vec`): every parser-produced AST node
evaluates against the table's numpy column arrays and null masks in one
shot, and the filtered/projected table is built through the trusted
columnar path.  The row-at-a-time :func:`_eval` survives as the fallback
for opaque expression nodes and as the aggregate-argument evaluator.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import ParseError, SchemaError
from repro.obs import tracing
from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    Expr,
    FuncCall,
    Literal,
    Query,
    SelectItem,
    UnaryOp,
)
from repro.sql.parser import parse_sql
from repro.table import Column, Table
from repro.table.schema import Schema, infer_dtype


class Database:
    """A named collection of tables with a ``query`` entry point.

    Three namespaces share one name space: plain tables (:meth:`register`),
    mutable streams (:meth:`register_stream`), and incrementally-maintained
    views (:meth:`create_view`).  :meth:`table` resolves any of them to a
    :class:`~repro.table.Table`, so ``query()`` reads streams (current
    snapshot) and views (always fresh, delta-maintained) exactly like
    static tables.
    """

    def __init__(self, tables: dict[str, Table] | None = None):
        self._tables: dict[str, Table] = dict(tables or {})
        self._streams: dict[str, Any] = {}
        self._views: dict[str, Any] = {}

    def register(self, name: str, table: Table) -> None:
        self._check_free(name, allow="table")
        self._tables[name] = table

    def register_stream(self, name: str, source: Any):
        """Register a mutable stream table (see :mod:`repro.ivm`).

        ``source`` is a :class:`~repro.ivm.StreamTable`, or a
        :class:`~repro.table.Table` / schema to wrap in a fresh one.
        Returns the stream, whose ``insert_rows``/``delete_rows`` feed
        every view created over it.
        """
        from repro.ivm import StreamTable
        self._check_free(name)
        stream = (source if isinstance(source, StreamTable)
                  else StreamTable(source, name=name))
        self._streams[name] = stream
        return stream

    def stream(self, name: str):
        if name not in self._streams:
            raise SchemaError(
                f"no stream {name!r}; available: {sorted(self._streams)}"
            )
        return self._streams[name]

    def create_view(self, name: str, sql: str):
        """Create an incrementally-maintained view from a SELECT statement.

        The query must range over registered streams and stay inside the
        supported subset (:mod:`repro.sql.views`); the resulting
        :class:`~repro.ivm.MaterializedView` is registered under ``name``
        and updates itself on every stream push — ``query()`` against it
        never recomputes from scratch.
        """
        from repro.sql.views import compile_view
        self._check_free(name)
        with tracing.span("sql.create_view", view=name, sql=sql.strip()):
            view = compile_view(name, parse_sql(sql), self._streams)
        self._views[name] = view
        return view

    def view(self, name: str):
        if name not in self._views:
            raise SchemaError(
                f"no view {name!r}; available: {sorted(self._views)}"
            )
        return self._views[name]

    def drop_view(self, name: str) -> None:
        self.view(name).detach()
        del self._views[name]

    def _check_free(self, name: str, allow: str | None = None) -> None:
        """Names are unique across tables, streams, and views — except
        plain-table re-registration, which has always meant replacement."""
        taken = (
            ("table", self._tables), ("stream", self._streams),
            ("view", self._views),
        )
        for kind, names in taken:
            if name in names and kind != allow:
                raise SchemaError(
                    f"name {name!r} is already a registered {kind}"
                )

    def table(self, name: str) -> Table:
        if name in self._tables:
            return self._tables[name]
        if name in self._streams:
            return self._streams[name].snapshot()
        if name in self._views:
            return self._views[name].table()
        raise SchemaError(
            f"no table {name!r}; available: {self.table_names()}"
        )

    def table_names(self) -> list[str]:
        return sorted({*self._tables, *self._streams, *self._views})

    def query(self, sql: str) -> Table:
        """Parse and execute a SELECT statement."""
        with tracing.span("sql.query", sql=sql.strip()) as s:
            out = execute(parse_sql(sql), self)
            s.set(rows_out=out.num_rows)
        return out

    def explain(self, sql: str, analyze: bool = False) -> str:
        """EXPLAIN: the stage pipeline the executor will run for ``sql``.

        With ``analyze=True`` the query actually executes and each stage
        reports its measured rows in/out, selectivity and wall-clock time
        (the same numbers the ``sql.*`` / ``table.*`` spans carry), followed
        by the result's per-column statistics
        (:meth:`~repro.table.Table.stats` — null fractions and distinct
        counts, the inputs a cost-based planner needs).
        """
        query = parse_sql(sql)
        if not analyze:
            lines = [f"sql: {sql.strip()}", "plan:"]
            lines += [f"  -> {step}" for step in _describe(query, self)]
            return "\n".join(lines)
        plan: list[dict[str, Any]] = []
        with tracing.span("sql.explain", sql=sql.strip()):
            result = execute(query, self, plan=plan)
        lines = [f"sql: {sql.strip()}", "plan (analyzed):"]
        for entry in plan:
            parts = [f"{entry['stage']}"]
            for key in ("table", "on", "vectorized", "by", "columns",
                        "limit"):
                if key in entry:
                    parts.append(f"{key}={entry[key]}")
            parts.append(f"rows={entry['rows_in']}->{entry['rows_out']}")
            if entry.get("selectivity") is not None:
                parts.append(f"selectivity={entry['selectivity']:.4f}")
            if entry.get("seconds") is not None:
                parts.append(f"time={entry['seconds'] * 1e3:.3f}ms")
            lines.append("  -> " + " ".join(parts))
        lines.append(
            f"result: {result.num_rows} rows x {result.num_columns} columns"
        )
        lines.append(result.explain())
        return "\n".join(lines)


def _describe(query: Query, db: Database) -> list[str]:
    """Static (pre-execution) stage descriptions for EXPLAIN."""
    steps = []
    table = db.table(query.table)
    steps.append(f"scan {query.table} ({table.num_rows} rows)")
    for join in query.joins:
        right = db.table(join.table)
        steps.append(
            f"join {join.table} on {join.left_col}={join.right_col} "
            f"({right.num_rows} rows)"
        )
    if query.where is not None:
        steps.append("filter (WHERE)")
    if query.group_by or _has_aggregate(query):
        by = ", ".join(query.group_by) if query.group_by else "<all rows>"
        steps.append(f"aggregate by {by}")
    if query.order_by is not None:
        column, descending = query.order_by
        steps.append(f"sort by {column} {'desc' if descending else 'asc'}")
    if not query.select_star and not (query.group_by or _has_aggregate(query)):
        names = [item.alias or _default_name(item.expr)
                 for item in query.select]
        steps.append(f"project [{', '.join(names)}]")
    if query.limit is not None:
        steps.append(f"limit {query.limit}")
    return steps


def execute(query: Query, db: Database,
            plan: list[dict[str, Any]] | None = None) -> Table:
    """Run a parsed query.

    Each stage executes under a ``sql.<stage>`` span carrying actual row
    counts; when ``plan`` is given (EXPLAIN ANALYZE), one dict per executed
    stage is appended with the same numbers plus the stage wall-clock.
    """

    def record(stage: str, span: Any, rows_in: int, rows_out: int,
               **extra: Any) -> None:
        if plan is None:
            return
        entry: dict[str, Any] = {
            "stage": stage, "rows_in": rows_in, "rows_out": rows_out,
        }
        if span is not None:
            entry["seconds"] = span.duration
        entry.update(extra)
        plan.append(entry)

    table = db.table(query.table)
    record("scan", None, table.num_rows, table.num_rows, table=query.table)
    for join in query.joins:
        rows_in = table.num_rows
        right = db.table(join.table)
        with tracing.span("sql.join", table=join.table) as s:
            table = table.join(right, on=[(join.left_col, join.right_col)])
            s.set(rows_out=table.num_rows)
        record("join", s, rows_in, table.num_rows, table=join.table,
               on=f"{join.left_col}={join.right_col}")
    if query.where is not None:
        rows_in = table.num_rows
        with tracing.span("sql.where") as s:
            keep = _where_mask(query.where, table)
            if keep is None:             # opaque expression — row fallback
                table = table.select(
                    lambda row: bool(_eval(query.where, row))
                )
            else:
                table = table.filter(keep)
            selectivity = table.num_rows / rows_in if rows_in else None
            s.set(rows_out=table.num_rows, vectorized=keep is not None)
        record("where", s, rows_in, table.num_rows,
               selectivity=selectivity, vectorized=keep is not None)
    if query.group_by or _has_aggregate(query):
        rows_in = table.num_rows
        with tracing.span("sql.aggregate") as s:
            table = _aggregate(query, table)
            s.set(rows_out=table.num_rows)
        record("aggregate", s, rows_in, table.num_rows,
               by=",".join(query.group_by) or "<all>")
        if query.order_by is not None:
            column, descending = query.order_by
            with tracing.span("sql.sort", by=column) as s:
                table = table.order_by(column, descending=descending)
            record("sort", s, table.num_rows, table.num_rows, by=column)
    else:
        # ORDER BY may reference source columns the projection drops, so
        # sort before projecting (standard SQL allows both).
        if query.order_by is not None:
            column, descending = query.order_by
            with tracing.span("sql.sort", by=column) as s:
                table = table.order_by(column, descending=descending)
            record("sort", s, table.num_rows, table.num_rows, by=column)
        if not query.select_star:
            rows_in = table.num_rows
            with tracing.span("sql.project") as s:
                table = _project(query.select, table)
                s.set(columns=table.num_columns)
            record("project", s, rows_in, table.num_rows,
                   columns=table.num_columns)
    if query.limit is not None:
        rows_in = table.num_rows
        with tracing.span("sql.limit", limit=query.limit) as s:
            table = table.limit(query.limit)
        record("limit", s, rows_in, table.num_rows, limit=query.limit)
    return table


def _has_aggregate(query: Query) -> bool:
    return any(isinstance(item.expr, FuncCall) for item in query.select)


def _project(items: list[SelectItem], table: Table) -> Table:
    names = [item.alias or _default_name(item.expr) for item in items]
    if table.num_rows == 0:
        # Infer dtypes from source schema where possible.
        fields = []
        for item, name in zip(items, names):
            dtype = (
                table.schema.dtype_of(item.expr.name)
                if isinstance(item.expr, ColumnRef) and item.expr.name in table.schema
                else "str"
            )
            fields.append((name, dtype))
        return Table.empty(fields)
    columns = []
    for item in items:
        col = _project_column(item.expr, table)
        if col is None:                  # opaque expression — row fallback
            return _project_rows(items, names, table)
        columns.append(col)
    schema = Schema(
        (name, col.dtype) for name, col in zip(names, columns)
    )
    return Table.from_columns(schema, columns)


def _project_column(expr: Expr, table: Table) -> Column | None:
    """One SELECT item as a trusted :class:`Column`, or None if opaque.

    Dtype rules mirror the historic row path, which re-inferred dtypes from
    the materialized python values: an all-null result degrades to ``str``
    (what :func:`infer_dtype` does with no evidence), a source column
    otherwise keeps its dtype, and computed expressions take the numpy
    result dtype.
    """
    out = _eval_vec(expr, table)
    if out is None:
        return None
    values, mask = out
    n = table.num_rows
    if not isinstance(values, np.ndarray):     # scalar expression: broadcast
        if values is None:
            mask = np.ones(n, dtype=bool)
            values = np.full(n, None, dtype=object)
        else:
            values = np.full(
                n, values,
                dtype=object if isinstance(values, str) else None,
            )
    if mask is None:
        mask = np.zeros(n, dtype=bool)
    if mask.all():
        return Column("str", np.full(n, None, dtype=object),
                      np.ones(n, dtype=bool))
    if isinstance(expr, ColumnRef) and expr.name in table.schema:
        return Column(table.schema.dtype_of(expr.name), values, mask)
    if values.dtype == np.bool_:
        dtype = "bool"
    elif np.issubdtype(values.dtype, np.integer):
        dtype = "int"
    elif np.issubdtype(values.dtype, np.floating):
        dtype = "float"
    else:
        pylist = values.tolist()
        for i in np.flatnonzero(mask).tolist():
            pylist[i] = None
        dtype = infer_dtype(pylist)
        return Column.build(pylist, dtype)
    return Column(dtype, values, mask)


def _project_rows(items: list[SelectItem], names: list[str],
                  table: Table) -> Table:
    """Row-at-a-time projection fallback for opaque expressions."""
    rows = [
        tuple(_eval(item.expr, row) for item in items)
        for row in table.row_dicts()
    ]
    return Table.from_rows(rows, names=names)


def _aggregate(query: Query, table: Table) -> Table:
    groups: dict[tuple, list[dict[str, Any]]] = {}
    order: list[tuple] = []
    for row in table.row_dicts():
        key = tuple(row[k] for k in query.group_by)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(row)
    if not query.group_by and not groups:
        groups[()] = []
        order.append(())
    names = []
    for item in query.select:
        names.append(item.alias or _default_name(item.expr))
    out_rows = []
    for key in order:
        rows = groups[key]
        values = []
        for item in query.select:
            values.append(_eval_aggregate(item.expr, rows, dict(zip(query.group_by, key))))
        out_rows.append(tuple(values))
    return Table.from_rows(out_rows, names=names)


def _eval_aggregate(expr: Expr, rows: list[dict[str, Any]],
                    key_values: dict[str, Any]) -> Any:
    if isinstance(expr, FuncCall):
        if expr.argument == "*":
            if expr.name != "count":
                raise ParseError(f"{expr.name}(*) is not valid SQL")
            return len(rows)
        args = [_eval(expr.argument, row) for row in rows]
        args = [a for a in args if a is not None]
        if expr.name == "count":
            return len(args)
        if not args:
            return None
        if expr.name == "sum":
            return sum(args)
        if expr.name == "min":
            return min(args)
        if expr.name == "max":
            return max(args)
        if expr.name == "avg":
            return sum(args) / len(args)
        raise ParseError(f"unknown aggregate {expr.name}")
    if isinstance(expr, ColumnRef):
        if expr.name in key_values:
            return key_values[expr.name]
        raise ParseError(
            f"column {expr.name!r} must appear in GROUP BY or an aggregate"
        )
    if isinstance(expr, Literal):
        return expr.value
    raise ParseError("unsupported expression in aggregate SELECT list")


def _default_name(expr: Expr) -> str:
    if isinstance(expr, ColumnRef):
        return expr.name
    if isinstance(expr, FuncCall):
        arg = expr.argument if isinstance(expr.argument, str) else _default_name(expr.argument)
        return f"{expr.name}_{arg}".replace("*", "all")
    return "expr"


def _eval(expr: Expr, row: dict[str, Any]) -> Any:
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, ColumnRef):
        if expr.name not in row:
            raise SchemaError(f"no column {expr.name!r} in row")
        return row[expr.name]
    if isinstance(expr, UnaryOp):
        if expr.op == "not":
            return not bool(_eval(expr.operand, row))
        if expr.op == "neg":
            value = _eval(expr.operand, row)
            return -value if value is not None else None
        if expr.op == "isnull":
            return _eval(expr.operand, row) is None
        raise ParseError(f"unknown unary op {expr.op}")
    if isinstance(expr, BinaryOp):
        if expr.op == "and":
            return bool(_eval(expr.left, row)) and bool(_eval(expr.right, row))
        if expr.op == "or":
            return bool(_eval(expr.left, row)) or bool(_eval(expr.right, row))
        left = _eval(expr.left, row)
        right = _eval(expr.right, row)
        if expr.op in ("=", "<>", "<", "<=", ">", ">="):
            if left is None or right is None:
                return False
            if expr.op == "=":
                return left == right
            if expr.op == "<>":
                return left != right
            if expr.op == "<":
                return left < right
            if expr.op == "<=":
                return left <= right
            if expr.op == ">":
                return left > right
            return left >= right
        if left is None or right is None:
            return None
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/":
            return left / right if right != 0 else None
        raise ParseError(f"unknown binary op {expr.op}")
    raise ParseError(f"cannot evaluate {expr!r}")


# -- vectorized expression evaluation -----------------------------------------
#
# ``_eval_vec`` mirrors ``_eval`` over whole columns.  An expression
# evaluates to ``(values, mask)`` where ``values`` is a numpy array of
# length num_rows (or a python scalar for literal-only subtrees) and
# ``mask`` marks NULL results (``None`` = no nulls).  Returning ``None``
# from ``_eval_vec`` means "this node cannot be vectorized" and sends the
# caller down the row-at-a-time path.

_Vec = "tuple[Any, np.ndarray | None]"


def _where_mask(expr: Expr, table: Table) -> np.ndarray | None:
    """WHERE clause as a boolean keep-mask, or None for opaque expressions."""
    out = _eval_vec(expr, table)
    if out is None:
        return None
    values, mask = out
    return _truthy(values, mask, table.num_rows)


def _truthy(values: Any, mask: np.ndarray | None, n: int) -> np.ndarray:
    """SQL condition truthiness: NULL is false, everything else is bool()."""
    if not isinstance(values, np.ndarray):
        arr = np.full(n, bool(values))
    elif values.dtype == object:
        arr = np.frompyfunc(bool, 1, 1)(values).astype(bool)
    else:
        arr = values.astype(bool)
    if mask is not None:
        arr = arr & ~mask
    return arr


def _filled(values: Any, mask: np.ndarray | None) -> Any:
    """Replace masked object slots with '' so elementwise ops never touch
    None (numeric sentinels are already computable)."""
    if (isinstance(values, np.ndarray) and values.dtype == object
            and mask is not None and mask.any()):
        return np.where(mask, "", values)
    return values


def _combine_masks(a: np.ndarray | None, b: np.ndarray | None) -> np.ndarray | None:
    if a is None:
        return b
    if b is None:
        return a
    return a | b


def _eval_vec(expr: Expr, table: Table):
    n = table.num_rows
    if isinstance(expr, Literal):
        return expr.value, None
    if isinstance(expr, ColumnRef):
        if expr.name not in table.schema:
            raise SchemaError(f"no column {expr.name!r} in row")
        mask = table.null_mask(expr.name)
        return table.column_array(expr.name), (mask if mask.any() else None)
    if isinstance(expr, UnaryOp):
        operand = _eval_vec(expr.operand, table)
        if operand is None:
            return None
        values, mask = operand
        if expr.op == "not":
            return ~_truthy(values, mask, n), None
        if expr.op == "neg":
            if values is None:
                return None, np.ones(n, dtype=bool)
            return -values, mask
        if expr.op == "isnull":
            if values is None:
                return np.ones(n, dtype=bool), None
            if not isinstance(values, np.ndarray):
                return np.zeros(n, dtype=bool), None
            return (mask.copy() if mask is not None
                    else np.zeros(n, dtype=bool)), None
        raise ParseError(f"unknown unary op {expr.op}")
    if isinstance(expr, BinaryOp):
        if expr.op in ("and", "or"):
            left = _eval_vec(expr.left, table)
            right = _eval_vec(expr.right, table)
            if left is None or right is None:
                return None
            lb = _truthy(left[0], left[1], n)
            rb = _truthy(right[0], right[1], n)
            return (lb & rb) if expr.op == "and" else (lb | rb), None
        left = _eval_vec(expr.left, table)
        right = _eval_vec(expr.right, table)
        if left is None or right is None:
            return None
        lv, lm = left
        rv, rm = right
        if expr.op in ("=", "<>", "<", "<=", ">", ">="):
            if lv is None or rv is None:   # NULL literal: comparison is false
                return np.zeros(n, dtype=bool), None
            a, b = _filled(lv, lm), _filled(rv, rm)
            if expr.op == "=":
                res = a == b
            elif expr.op == "<>":
                res = a != b
            elif expr.op == "<":
                res = a < b
            elif expr.op == "<=":
                res = a <= b
            elif expr.op == ">":
                res = a > b
            else:
                res = a >= b
            res = np.broadcast_to(np.asarray(res, dtype=bool), (n,)).copy()
            null = _combine_masks(lm, rm)
            if null is not None:
                res &= ~null
            return res, None
        # arithmetic: NULL operands propagate
        if lv is None or rv is None:
            return np.zeros(n), np.ones(n, dtype=bool)
        a, b = _filled(lv, lm), _filled(rv, rm)
        mask = _combine_masks(lm, rm)
        if expr.op == "+":
            return a + b, mask
        if expr.op == "-":
            return a - b, mask
        if expr.op == "*":
            return a * b, mask
        if expr.op == "/":
            b_arr = np.asarray(b)
            zero = b_arr == 0
            safe = np.where(zero, 1, b_arr) if np.any(zero) else b_arr
            res = np.asarray(a) / safe
            if np.any(zero):
                zmask = np.broadcast_to(
                    np.asarray(zero, dtype=bool), (n,)
                ).copy()
                mask = _combine_masks(mask, zmask)
            return res, mask
        raise ParseError(f"unknown binary op {expr.op}")
    return None
