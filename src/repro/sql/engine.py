"""Execution of parsed SQL queries against :class:`~repro.table.Table`s.

Semantics follow SQL where it matters for the library: three-valued NULL
comparisons (any comparison with NULL is false), aggregates skip NULLs,
COUNT(*) counts rows.

Queries run through three layers: :func:`repro.sql.plan.compile_query`
lowers the parsed AST to a logical plan, :func:`repro.sql.optimizer.optimize`
rewrites it (constant folding, predicate pushdown, materialized-view
substitution, projection pruning, stats-driven join reordering), and
:func:`repro.sql.physical.bind` binds each node to an execution backend —
single-table columnar kernels, :mod:`repro.shard` morsel kernels for
partitioned sources, or an existing incremental view.  The original
fixed-order AST interpreter survives as :func:`execute_naive`, the
equivalence oracle behind ``optimizer=False``.
"""

from __future__ import annotations

from typing import Any

from repro.errors import SchemaError
from repro.obs import tracing
from repro.sql import plan as plan_ir
from repro.sql.ast import Query
from repro.sql.expr import (
    aggregate_rows,
    default_name,
    eval_aggregate,
    eval_row,
    eval_vec,
    has_aggregate,
    project_items,
    where_mask,
)
from repro.sql.optimizer import optimize
from repro.sql.parser import parse_sql
from repro.sql.physical import bind
from repro.table import Table
from repro.table.schema import Schema


class Database:
    """A named collection of tables with a ``query`` entry point.

    Three namespaces share one name space: plain tables (:meth:`register`,
    which also accepts :class:`~repro.shard.PartitionedTable`), mutable
    streams (:meth:`register_stream`), and incrementally-maintained views
    (:meth:`create_view`).  :meth:`table` resolves any of them to a
    :class:`~repro.table.Table`, so ``query()`` reads streams (current
    snapshot) and views (always fresh, delta-maintained) exactly like
    static tables.

    ``optimizer=False`` pins every query to the naive fixed-order
    executor (:func:`execute_naive`); per-call
    ``query(sql, optimizer=...)`` overrides the default either way.
    ``pmap`` forwards a :class:`~repro.par.BaseMap` to the shard kernels
    when partitioned tables are queried.
    """

    def __init__(self, tables: dict[str, Any] | None = None, *,
                 optimizer: bool = True, pmap: Any = None):
        self._tables: dict[str, Any] = {}
        self._materialized: dict[str, Table] = {}
        self._streams: dict[str, Any] = {}
        self._views: dict[str, Any] = {}
        self._view_keys: dict[str, str] = {}
        self._optimizer = optimizer
        self._pmap = pmap
        for name, table in (tables or {}).items():
            self.register(name, table)

    def register(self, name: str, table: Any) -> None:
        """Register a :class:`Table` or a partitioned table under ``name``."""
        self._check_free(name, allow="table")
        self._tables[name] = table
        self._materialized.pop(name, None)

    def register_stream(self, name: str, source: Any):
        """Register a mutable stream table (see :mod:`repro.ivm`).

        ``source`` is a :class:`~repro.ivm.StreamTable`, or a
        :class:`~repro.table.Table` / schema to wrap in a fresh one.
        Returns the stream, whose ``insert_rows``/``delete_rows`` feed
        every view created over it.
        """
        from repro.ivm import StreamTable
        self._check_free(name)
        stream = (source if isinstance(source, StreamTable)
                  else StreamTable(source, name=name))
        self._streams[name] = stream
        return stream

    def stream(self, name: str):
        if name not in self._streams:
            raise SchemaError(
                f"no stream {name!r}; available: {sorted(self._streams)}"
            )
        return self._streams[name]

    def create_view(self, name: str, sql: str):
        """Create an incrementally-maintained view from a SELECT statement.

        The query must range over registered streams and stay inside the
        supported subset (:mod:`repro.sql.views`); the resulting
        :class:`~repro.ivm.MaterializedView` is registered under ``name``
        and updates itself on every stream push — ``query()`` against it
        never recomputes from scratch.  The view's logical-plan
        fingerprint is also recorded so the optimizer can substitute it
        into matching ad-hoc queries.
        """
        from repro.sql.views import compile_view
        self._check_free(name)
        query = parse_sql(sql)
        with tracing.span("sql.create_view", view=name, sql=sql.strip()):
            view = compile_view(name, query, self._streams)
        self._views[name] = view
        try:
            node, _ = optimize(plan_ir.compile_query(query, self), self,
                               prune=False, reorder=False)
            self._view_keys[plan_ir.plan_key(node)] = name
        except Exception:
            # Fingerprinting is best-effort: a view outside the plannable
            # subset simply never substitutes.
            pass
        return view

    def view(self, name: str):
        if name not in self._views:
            raise SchemaError(
                f"no view {name!r}; available: {sorted(self._views)}"
            )
        return self._views[name]

    def drop_view(self, name: str) -> None:
        self.view(name).detach()
        del self._views[name]
        self._view_keys = {key: view for key, view in self._view_keys.items()
                           if view != name}

    def _check_free(self, name: str, allow: str | None = None) -> None:
        """Names are unique across tables, streams, and views — except
        plain-table re-registration, which has always meant replacement."""
        taken = (
            ("table", self._tables), ("stream", self._streams),
            ("view", self._views),
        )
        for kind, names in taken:
            if name in names and kind != allow:
                raise SchemaError(
                    f"name {name!r} is already a registered {kind}"
                )

    def table(self, name: str) -> Table:
        if name in self._tables:
            source = self._tables[name]
            if isinstance(source, Table):
                return source
            cached = self._materialized.get(name)
            if cached is None:
                cached = self._materialized[name] = source.to_table()
            return cached
        if name in self._streams:
            return self._streams[name].snapshot()
        if name in self._views:
            return self._views[name].table()
        raise SchemaError(
            f"no table {name!r}; available: {self.table_names()}"
        )

    def table_names(self) -> list[str]:
        return sorted({*self._tables, *self._streams, *self._views})

    # -- catalog interface (logical planner / optimizer / physical) ------------

    def schema_of(self, name: str) -> Schema:
        """Schema of a table, stream, or view without materializing it."""
        for namespace in (self._tables, self._streams, self._views):
            if name in namespace:
                return namespace[name].schema
        raise SchemaError(
            f"no table {name!r}; available: {self.table_names()}"
        )

    def stats_of(self, name: str) -> dict[str, dict[str, Any]]:
        """Per-column statistics (memoized on the table)."""
        return self.table(name).stats()

    def is_partitioned(self, name: str) -> bool:
        source = self._tables.get(name)
        return source is not None and not isinstance(source, Table)

    def scan_source(self, name: str) -> Any:
        """What a Scan node reads: the raw partitioned table when one is
        registered (so shard kernels can run on it), else a plain table."""
        if name in self._tables:
            return self._tables[name]
        if name in self._streams:
            return self._streams[name].snapshot()
        if name in self._views:
            return self._views[name].table()
        raise SchemaError(
            f"no table {name!r}; available: {self.table_names()}"
        )

    def plan_is_partitioned(self, node: plan_ir.Node) -> bool:
        """Whether a plan subtree yields a partitioned table (per-shard
        filters preserve partitioning; everything else is conservative)."""
        if isinstance(node, plan_ir.Scan):
            return self.is_partitioned(node.table)
        if isinstance(node, plan_ir.Filter):
            return self.plan_is_partitioned(node.child)
        return False

    def plan_partition_keys(self, node: plan_ir.Node) -> tuple[str, ...] | None:
        """Partition keys of a subtree's output, or None when unknown —
        the guarantee behind the partition-aligned GROUP BY backend."""
        if isinstance(node, plan_ir.Scan):
            source = self._tables.get(node.table)
            if source is not None and not isinstance(source, Table):
                return tuple(source.partitioner.keys)
            return None
        if isinstance(node, plan_ir.Filter):
            return self.plan_partition_keys(node.child)
        return None

    # -- query / explain -------------------------------------------------------

    def query(self, sql: str, optimizer: bool | None = None) -> Table:
        """Parse and execute a SELECT statement.

        ``optimizer`` overrides the database default: ``False`` forces the
        naive fixed-order executor (the equivalence oracle), ``True`` the
        plan-based path.
        """
        with tracing.span("sql.query", sql=sql.strip()) as s:
            out = execute(parse_sql(sql), self, optimizer=optimizer)
            s.set(rows_out=out.num_rows)
        return out

    def explain(self, sql: str, analyze: bool = False,
                optimizer: bool | None = None) -> str:
        """EXPLAIN: logical, optimized, and physical plans for ``sql``,
        with one annotation per applied rewrite rule.

        With ``analyze=True`` the query actually executes and each stage
        reports its measured rows in/out, selectivity and wall-clock time
        (the same numbers the ``sql.*`` / ``table.*`` spans carry), followed
        by the result's per-column statistics
        (:meth:`~repro.table.Table.stats` — null fractions and distinct
        counts, the inputs the cost-based join reorderer needs).

        Under ``optimizer=False`` the historic fixed-stage pipeline is
        described instead (the before/after views in docs/sql.md diff the
        two renderings).
        """
        query = parse_sql(sql)
        use_optimizer = self._optimizer if optimizer is None else optimizer
        lines = [f"sql: {sql.strip()}"]
        physical = None
        if use_optimizer:
            logical = plan_ir.compile_query(query, self)
            optimized, notes = optimize(logical, self,
                                        view_keys=self._view_keys or None)
            physical = bind(optimized, self, self._pmap)
            lines.append("logical plan:")
            lines += ["  " + row
                      for row in plan_ir.render_plan(logical).splitlines()]
            lines.append("rewrites:" if notes else "rewrites: (none)")
            lines += [f"  - {note}" for note in notes]
            lines.append("optimized plan:")
            lines += ["  " + row
                      for row in plan_ir.render_plan(optimized).splitlines()]
            lines.append("physical plan:")
            lines += ["  " + row for row in physical.render().splitlines()]
        else:
            lines.append("plan:")
            lines += [f"  -> {step}" for step in _describe(query, self)]
        if not analyze:
            return "\n".join(lines)
        plan: list[dict[str, Any]] = []
        with tracing.span("sql.explain", sql=sql.strip()):
            if physical is not None:
                result = physical.execute(plan)
            else:
                result = execute_naive(query, self, plan)
        lines.append("plan (analyzed):")
        for entry in plan:
            parts = [f"{entry['stage']}"]
            for key in ("table", "on", "vectorized", "by", "columns",
                        "limit"):
                if key in entry:
                    parts.append(f"{key}={entry[key]}")
            parts.append(f"rows={entry['rows_in']}->{entry['rows_out']}")
            if entry.get("selectivity") is not None:
                parts.append(f"selectivity={entry['selectivity']:.4f}")
            if entry.get("seconds") is not None:
                parts.append(f"time={entry['seconds'] * 1e3:.3f}ms")
            lines.append("  -> " + " ".join(parts))
        lines.append(
            f"result: {result.num_rows} rows x {result.num_columns} columns"
        )
        lines.append(result.explain())
        return "\n".join(lines)


def _describe(query: Query, db: Database) -> list[str]:
    """Static stage descriptions for the naive fixed-order pipeline."""
    steps = []
    table = db.table(query.table)
    steps.append(f"scan {query.table} ({table.num_rows} rows)")
    for join in query.joins:
        right = db.table(join.table)
        steps.append(
            f"join {join.table} on {join.left_col}={join.right_col} "
            f"({right.num_rows} rows)"
        )
    if query.where is not None:
        steps.append("filter (WHERE)")
    if query.group_by or _has_aggregate(query):
        by = ", ".join(query.group_by) if query.group_by else "<all rows>"
        steps.append(f"aggregate by {by}")
    if query.order_by is not None:
        column, descending = query.order_by
        steps.append(f"sort by {column} {'desc' if descending else 'asc'}")
    if not query.select_star and not (query.group_by or _has_aggregate(query)):
        names = [item.alias or default_name(item.expr)
                 for item in query.select]
        steps.append(f"project [{', '.join(names)}]")
    if query.limit is not None:
        steps.append(f"limit {query.limit}")
    return steps


def execute(query: Query, db: Database,
            plan: list[dict[str, Any]] | None = None,
            optimizer: bool | None = None) -> Table:
    """Run a parsed query through compile → optimize → bind → execute.

    ``optimizer=False`` (or a database constructed with
    ``optimizer=False``) routes to :func:`execute_naive` instead.  Each
    stage executes under a ``sql.<stage>`` span carrying actual row
    counts; when ``plan`` is given (EXPLAIN ANALYZE), one dict per
    executed stage is appended with the same numbers plus the stage
    wall-clock.
    """
    use = db._optimizer if optimizer is None else optimizer
    if not use:
        return execute_naive(query, db, plan)
    node = plan_ir.compile_query(query, db)
    node, _notes = optimize(node, db, view_keys=db._view_keys or None)
    return bind(node, db, db._pmap).execute(plan)


def execute_naive(query: Query, db: Database,
                  plan: list[dict[str, Any]] | None = None) -> Table:
    """The historic fixed-order AST interpreter (join → where → aggregate
    → project), kept verbatim as the optimizer's equivalence oracle."""

    def record(stage: str, span: Any, rows_in: int, rows_out: int,
               **extra: Any) -> None:
        if plan is None:
            return
        entry: dict[str, Any] = {
            "stage": stage, "rows_in": rows_in, "rows_out": rows_out,
        }
        if span is not None:
            entry["seconds"] = span.duration
        entry.update(extra)
        plan.append(entry)

    table = db.table(query.table)
    record("scan", None, table.num_rows, table.num_rows, table=query.table)
    for join in query.joins:
        rows_in = table.num_rows
        right = db.table(join.table)
        with tracing.span("sql.join", table=join.table) as s:
            table = table.join(right, on=[(join.left_col, join.right_col)])
            s.set(rows_out=table.num_rows)
        record("join", s, rows_in, table.num_rows, table=join.table,
               on=f"{join.left_col}={join.right_col}")
    if query.where is not None:
        rows_in = table.num_rows
        with tracing.span("sql.where") as s:
            keep = where_mask(query.where, table)
            if keep is None:             # opaque expression — row fallback
                table = table.select(
                    lambda row: bool(eval_row(query.where, row))
                )
            else:
                table = table.filter(keep)
            selectivity = table.num_rows / rows_in if rows_in else None
            s.set(rows_out=table.num_rows, vectorized=keep is not None)
        record("where", s, rows_in, table.num_rows,
               selectivity=selectivity, vectorized=keep is not None)
    if query.group_by or _has_aggregate(query):
        rows_in = table.num_rows
        with tracing.span("sql.aggregate") as s:
            table = aggregate_rows(list(query.select), list(query.group_by),
                                   table)
            s.set(rows_out=table.num_rows)
        record("aggregate", s, rows_in, table.num_rows,
               by=",".join(query.group_by) or "<all>")
        if query.order_by is not None:
            column, descending = query.order_by
            with tracing.span("sql.sort", by=column) as s:
                table = table.order_by(column, descending=descending)
            record("sort", s, table.num_rows, table.num_rows, by=column)
    else:
        # ORDER BY may reference source columns the projection drops, so
        # sort before projecting (standard SQL allows both).
        if query.order_by is not None:
            column, descending = query.order_by
            with tracing.span("sql.sort", by=column) as s:
                table = table.order_by(column, descending=descending)
            record("sort", s, table.num_rows, table.num_rows, by=column)
        if not query.select_star:
            rows_in = table.num_rows
            with tracing.span("sql.project") as s:
                table = project_items(list(query.select), table)
                s.set(columns=table.num_columns)
            record("project", s, rows_in, table.num_rows,
                   columns=table.num_columns)
    if query.limit is not None:
        rows_in = table.num_rows
        with tracing.span("sql.limit", limit=query.limit) as s:
            table = table.limit(query.limit)
        record("limit", s, rows_in, table.num_rows, limit=query.limit)
    return table


def _has_aggregate(query: Query) -> bool:
    return has_aggregate(query.select)


# Historic private names, re-exported for back-compat (the expression
# machinery now lives in repro.sql.expr, shared by every executor).
_default_name = default_name
_eval = eval_row
_eval_aggregate = eval_aggregate
_eval_vec = eval_vec
_where_mask = where_mask
