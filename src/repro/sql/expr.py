"""Expression evaluation for the SQL engine — row-wise and vectorized.

Semantics follow SQL where it matters for the library: three-valued NULL
comparisons (any comparison with NULL is false), aggregates skip NULLs,
COUNT(*) counts rows.

:func:`eval_vec` mirrors :func:`eval_row` over whole columns: every
parser-produced AST node evaluates against the table's numpy column
arrays and null masks in one shot.  An expression evaluates to
``(values, mask)`` where ``values`` is a numpy array of length num_rows
(or a python scalar for literal-only subtrees) and ``mask`` marks NULL
results (``None`` = no nulls).  Returning ``None`` from :func:`eval_vec`
means "this node cannot be vectorized" and sends the caller down the
row-at-a-time path.

This module is the shared bottom layer of the SQL stack: the logical
plan (:mod:`repro.sql.plan`), the optimizer (:mod:`repro.sql.optimizer`),
the physical executor (:mod:`repro.sql.physical`), the naive oracle
executor (:mod:`repro.sql.engine`) and the incremental view compiler
(:mod:`repro.sql.views`) all evaluate expressions through it, so the
optimized, sharded, incremental, and naive paths cannot drift apart.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import ParseError, SchemaError
from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    Expr,
    FuncCall,
    Literal,
    SelectItem,
    UnaryOp,
)
from repro.table import Column, Table
from repro.table.schema import Schema, infer_dtype

__all__ = [
    "aggregate_rows",
    "default_name",
    "eval_aggregate",
    "eval_row",
    "eval_vec",
    "expr_columns",
    "has_aggregate",
    "project_column",
    "project_items",
    "render_expr",
    "rewrite_refs",
    "where_mask",
]


# -- structural utilities ------------------------------------------------------


def expr_columns(expr: Expr | str) -> set[str]:
    """The set of column names an expression references."""
    if isinstance(expr, ColumnRef):
        return {expr.name}
    if isinstance(expr, BinaryOp):
        return expr_columns(expr.left) | expr_columns(expr.right)
    if isinstance(expr, UnaryOp):
        return expr_columns(expr.operand)
    if isinstance(expr, FuncCall):
        return set() if expr.argument == "*" else expr_columns(expr.argument)
    return set()


def rewrite_refs(expr: Expr | str, mapping: dict[str, str]):
    """Rename every :class:`ColumnRef` through ``mapping`` (missing names
    pass through).  Nodes are immutable, so unchanged subtrees are shared."""
    if isinstance(expr, ColumnRef):
        new = mapping.get(expr.name, expr.name)
        return expr if new == expr.name else ColumnRef(new)
    if isinstance(expr, BinaryOp):
        left = rewrite_refs(expr.left, mapping)
        right = rewrite_refs(expr.right, mapping)
        if left is expr.left and right is expr.right:
            return expr
        return BinaryOp(expr.op, left, right)
    if isinstance(expr, UnaryOp):
        operand = rewrite_refs(expr.operand, mapping)
        return expr if operand is expr.operand else UnaryOp(expr.op, operand)
    if isinstance(expr, FuncCall):
        if expr.argument == "*":
            return expr
        arg = rewrite_refs(expr.argument, mapping)
        return expr if arg is expr.argument else FuncCall(expr.name, arg)
    return expr


def render_expr(expr: Expr | str) -> str:
    """SQL-ish text for an expression (EXPLAIN plan rendering)."""
    if isinstance(expr, Literal):
        if expr.value is None:
            return "null"
        if isinstance(expr.value, bool):
            return "true" if expr.value else "false"
        if isinstance(expr.value, str):
            escaped = expr.value.replace("'", "''")
            return f"'{escaped}'"
        return repr(expr.value)
    if isinstance(expr, ColumnRef):
        return expr.name
    if isinstance(expr, UnaryOp):
        if expr.op == "not":
            return f"(not {render_expr(expr.operand)})"
        if expr.op == "neg":
            return f"(-{render_expr(expr.operand)})"
        if expr.op == "isnull":
            return f"({render_expr(expr.operand)} is null)"
        return f"({expr.op} {render_expr(expr.operand)})"
    if isinstance(expr, BinaryOp):
        return f"({render_expr(expr.left)} {expr.op} {render_expr(expr.right)})"
    if isinstance(expr, FuncCall):
        arg = "*" if expr.argument == "*" else render_expr(expr.argument)
        return f"{expr.name}({arg})"
    return repr(expr)


def default_name(expr: Expr) -> str:
    if isinstance(expr, ColumnRef):
        return expr.name
    if isinstance(expr, FuncCall):
        arg = (expr.argument if isinstance(expr.argument, str)
               else default_name(expr.argument))
        return f"{expr.name}_{arg}".replace("*", "all")
    return "expr"


def has_aggregate(items: list[SelectItem]) -> bool:
    return any(isinstance(item.expr, FuncCall) for item in items)


# -- row-at-a-time evaluation --------------------------------------------------


def eval_row(expr: Expr, row: dict[str, Any]) -> Any:
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, ColumnRef):
        if expr.name not in row:
            raise SchemaError(f"no column {expr.name!r} in row")
        return row[expr.name]
    if isinstance(expr, UnaryOp):
        if expr.op == "not":
            return not bool(eval_row(expr.operand, row))
        if expr.op == "neg":
            value = eval_row(expr.operand, row)
            return -value if value is not None else None
        if expr.op == "isnull":
            return eval_row(expr.operand, row) is None
        raise ParseError(f"unknown unary op {expr.op}")
    if isinstance(expr, BinaryOp):
        if expr.op == "and":
            return bool(eval_row(expr.left, row)) and bool(eval_row(expr.right, row))
        if expr.op == "or":
            return bool(eval_row(expr.left, row)) or bool(eval_row(expr.right, row))
        left = eval_row(expr.left, row)
        right = eval_row(expr.right, row)
        if expr.op in ("=", "<>", "<", "<=", ">", ">="):
            if left is None or right is None:
                return False
            if expr.op == "=":
                return left == right
            if expr.op == "<>":
                return left != right
            if expr.op == "<":
                return left < right
            if expr.op == "<=":
                return left <= right
            if expr.op == ">":
                return left > right
            return left >= right
        if left is None or right is None:
            return None
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/":
            return left / right if right != 0 else None
        raise ParseError(f"unknown binary op {expr.op}")
    raise ParseError(f"cannot evaluate {expr!r}")


def eval_aggregate(expr: Expr, rows: list[dict[str, Any]],
                   key_values: dict[str, Any]) -> Any:
    if isinstance(expr, FuncCall):
        if expr.argument == "*":
            if expr.name != "count":
                raise ParseError(f"{expr.name}(*) is not valid SQL")
            return len(rows)
        args = [eval_row(expr.argument, row) for row in rows]
        args = [a for a in args if a is not None]
        if expr.name == "count":
            return len(args)
        if not args:
            return None
        if expr.name == "sum":
            return sum(args)
        if expr.name == "min":
            return min(args)
        if expr.name == "max":
            return max(args)
        if expr.name == "avg":
            return sum(args) / len(args)
        raise ParseError(f"unknown aggregate {expr.name}")
    if isinstance(expr, ColumnRef):
        if expr.name in key_values:
            return key_values[expr.name]
        raise ParseError(
            f"column {expr.name!r} must appear in GROUP BY or an aggregate"
        )
    if isinstance(expr, Literal):
        return expr.value
    raise ParseError("unsupported expression in aggregate SELECT list")


def aggregate_rows(items: list[SelectItem], group_by: list[str],
                   table: Table) -> Table:
    """Row-at-a-time GROUP BY over ``row_dicts()`` — the aggregate oracle."""
    groups: dict[tuple, list[dict[str, Any]]] = {}
    order: list[tuple] = []
    for row in table.row_dicts():
        key = tuple(row[k] for k in group_by)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(row)
    if not group_by and not groups:
        groups[()] = []
        order.append(())
    names = [item.alias or default_name(item.expr) for item in items]
    out_rows = []
    for key in order:
        rows = groups[key]
        values = [
            eval_aggregate(item.expr, rows, dict(zip(group_by, key)))
            for item in items
        ]
        out_rows.append(tuple(values))
    return Table.from_rows(out_rows, names=names)


# -- projection ---------------------------------------------------------------


def project_items(items: list[SelectItem], table: Table) -> Table:
    names = [item.alias or default_name(item.expr) for item in items]
    if table.num_rows == 0:
        # Infer dtypes from source schema where possible.
        fields = []
        for item, name in zip(items, names):
            dtype = (
                table.schema.dtype_of(item.expr.name)
                if isinstance(item.expr, ColumnRef) and item.expr.name in table.schema
                else "str"
            )
            fields.append((name, dtype))
        return Table.empty(fields)
    columns = []
    for item in items:
        col = project_column(item.expr, table)
        if col is None:                  # opaque expression — row fallback
            return _project_rows(items, names, table)
        columns.append(col)
    schema = Schema(
        (name, col.dtype) for name, col in zip(names, columns)
    )
    return Table.from_columns(schema, columns)


def project_column(expr: Expr, table: Table) -> Column | None:
    """One SELECT item as a trusted :class:`Column`, or None if opaque.

    Dtype rules mirror the historic row path, which re-inferred dtypes from
    the materialized python values: an all-null result degrades to ``str``
    (what :func:`infer_dtype` does with no evidence), a source column
    otherwise keeps its dtype, and computed expressions take the numpy
    result dtype.
    """
    out = eval_vec(expr, table)
    if out is None:
        return None
    values, mask = out
    n = table.num_rows
    if not isinstance(values, np.ndarray):     # scalar expression: broadcast
        if values is None:
            mask = np.ones(n, dtype=bool)
            values = np.full(n, None, dtype=object)
        else:
            values = np.full(
                n, values,
                dtype=object if isinstance(values, str) else None,
            )
    if mask is None:
        mask = np.zeros(n, dtype=bool)
    if mask.all():
        return Column("str", np.full(n, None, dtype=object),
                      np.ones(n, dtype=bool))
    if isinstance(expr, ColumnRef) and expr.name in table.schema:
        return Column(table.schema.dtype_of(expr.name), values, mask)
    if values.dtype == np.bool_:
        dtype = "bool"
    elif np.issubdtype(values.dtype, np.integer):
        dtype = "int"
    elif np.issubdtype(values.dtype, np.floating):
        dtype = "float"
    else:
        pylist = values.tolist()
        for i in np.flatnonzero(mask).tolist():
            pylist[i] = None
        dtype = infer_dtype(pylist)
        return Column.build(pylist, dtype)
    return Column(dtype, values, mask)


def _project_rows(items: list[SelectItem], names: list[str],
                  table: Table) -> Table:
    """Row-at-a-time projection fallback for opaque expressions."""
    rows = [
        tuple(eval_row(item.expr, row) for item in items)
        for row in table.row_dicts()
    ]
    return Table.from_rows(rows, names=names)


# -- vectorized evaluation -----------------------------------------------------


def where_mask(expr: Expr, table: Table) -> np.ndarray | None:
    """WHERE clause as a boolean keep-mask, or None for opaque expressions."""
    out = eval_vec(expr, table)
    if out is None:
        return None
    values, mask = out
    return _truthy(values, mask, table.num_rows)


def _truthy(values: Any, mask: np.ndarray | None, n: int) -> np.ndarray:
    """SQL condition truthiness: NULL is false, everything else is bool()."""
    if not isinstance(values, np.ndarray):
        arr = np.full(n, bool(values))
    elif values.dtype == object:
        arr = np.frompyfunc(bool, 1, 1)(values).astype(bool)
    else:
        arr = values.astype(bool)
    if mask is not None:
        arr = arr & ~mask
    return arr


def _filled(values: Any, mask: np.ndarray | None) -> Any:
    """Replace masked object slots with '' so elementwise ops never touch
    None (numeric sentinels are already computable)."""
    if (isinstance(values, np.ndarray) and values.dtype == object
            and mask is not None and mask.any()):
        return np.where(mask, "", values)
    return values


def _combine_masks(a: np.ndarray | None, b: np.ndarray | None) -> np.ndarray | None:
    if a is None:
        return b
    if b is None:
        return a
    return a | b


def eval_vec(expr: Expr, table: Table):
    n = table.num_rows
    if isinstance(expr, Literal):
        return expr.value, None
    if isinstance(expr, ColumnRef):
        if expr.name not in table.schema:
            raise SchemaError(f"no column {expr.name!r} in row")
        mask = table.null_mask(expr.name)
        return table.column_array(expr.name), (mask if mask.any() else None)
    if isinstance(expr, UnaryOp):
        operand = eval_vec(expr.operand, table)
        if operand is None:
            return None
        values, mask = operand
        if expr.op == "not":
            return ~_truthy(values, mask, n), None
        if expr.op == "neg":
            if values is None:
                return None, np.ones(n, dtype=bool)
            return -values, mask
        if expr.op == "isnull":
            if values is None:
                return np.ones(n, dtype=bool), None
            if not isinstance(values, np.ndarray):
                return np.zeros(n, dtype=bool), None
            return (mask.copy() if mask is not None
                    else np.zeros(n, dtype=bool)), None
        raise ParseError(f"unknown unary op {expr.op}")
    if isinstance(expr, BinaryOp):
        if expr.op in ("and", "or"):
            left = eval_vec(expr.left, table)
            right = eval_vec(expr.right, table)
            if left is None or right is None:
                return None
            lb = _truthy(left[0], left[1], n)
            rb = _truthy(right[0], right[1], n)
            return (lb & rb) if expr.op == "and" else (lb | rb), None
        left = eval_vec(expr.left, table)
        right = eval_vec(expr.right, table)
        if left is None or right is None:
            return None
        lv, lm = left
        rv, rm = right
        if expr.op in ("=", "<>", "<", "<=", ">", ">="):
            if lv is None or rv is None:   # NULL literal: comparison is false
                return np.zeros(n, dtype=bool), None
            a, b = _filled(lv, lm), _filled(rv, rm)
            if expr.op == "=":
                res = a == b
            elif expr.op == "<>":
                res = a != b
            elif expr.op == "<":
                res = a < b
            elif expr.op == "<=":
                res = a <= b
            elif expr.op == ">":
                res = a > b
            else:
                res = a >= b
            res = np.broadcast_to(np.asarray(res, dtype=bool), (n,)).copy()
            null = _combine_masks(lm, rm)
            if null is not None:
                res &= ~null
            return res, None
        # arithmetic: NULL operands propagate
        if lv is None or rv is None:
            return np.zeros(n), np.ones(n, dtype=bool)
        a, b = _filled(lv, lm), _filled(rv, rm)
        mask = _combine_masks(lm, rm)
        if expr.op == "+":
            return a + b, mask
        if expr.op == "-":
            return a - b, mask
        if expr.op == "*":
            return a * b, mask
        if expr.op == "/":
            b_arr = np.asarray(b)
            zero = b_arr == 0
            safe = np.where(zero, 1, b_arr) if np.any(zero) else b_arr
            res = np.asarray(a) / safe
            if np.any(zero):
                zmask = np.broadcast_to(
                    np.asarray(zero, dtype=bool), (n,)
                ).copy()
                mask = _combine_masks(mask, zmask)
            return res, mask
        raise ParseError(f"unknown binary op {expr.op}")
    return None
