"""Compile parsed SELECT statements into incrementally-maintained views.

:meth:`repro.sql.Database.create_view` lands here: a :class:`Query` over
registered :class:`~repro.ivm.StreamTable`s becomes a
:class:`~repro.ivm.ViewBuilder` recipe — scan → join* → filter →
(group-by → project | project) — materialized with ORDER BY / LIMIT as
read-time options.  The batch executor (:func:`repro.sql.engine.execute`
over stream snapshots) is the semantics; ``db.query(sql)`` and
``db.create_view(...).table()`` are property-tested equal row-for-row.

Supported subset (anything else raises :class:`~repro.errors.IvmError`
at ``create_view`` time, never at push time):

* FROM / INNER JOIN over registered streams only
* WHERE clauses the vectorized evaluator accepts (no aggregates)
* SELECT of plain columns (with aliases), or GROUP BY with
  count/sum/min/max/avg/COUNT(*) over plain columns — global aggregates
  without GROUP BY are rejected (an empty incremental group cannot emit
  the ``COUNT(*) = 0`` row batch SQL produces)
* ORDER BY / LIMIT, applied when the view is read

One deliberate divergence: the batch aggregate path re-infers output
dtypes from materialized python values, so an all-NULL aggregate column
degrades to ``str`` there while the view keeps the declared dtype.  Row
values are identical either way.
"""

from __future__ import annotations

from repro.errors import IvmError
from repro.ivm import MaterializedView, StreamTable, ViewBuilder
from repro.sql.ast import ColumnRef, Expr, FuncCall, Query
from repro.sql.engine import _default_name, _has_aggregate, _where_mask
from repro.table import Table

_AGG_FNS = ("count", "sum", "min", "max", "avg")


class _WherePredicate:
    """A WHERE clause as an ivm filter predicate (vectorized mask)."""

    __slots__ = ("expr",)

    def __init__(self, expr: Expr):
        self.expr = expr

    def mask(self, table: Table):
        mask = _where_mask(self.expr, table)
        if mask is None:                     # guarded at compile time
            raise IvmError(
                f"WHERE clause {self.expr!r} stopped being vectorizable"
            )
        return mask


def compile_view(name: str, query: Query,
                 streams: dict[str, StreamTable]) -> MaterializedView:
    """Build and seed a materialized view for ``query`` over ``streams``."""

    def stream_of(table_name: str) -> StreamTable:
        if table_name not in streams:
            raise IvmError(
                f"view {name!r} references {table_name!r}, which is not a "
                f"registered stream; available: {sorted(streams)}"
            )
        return streams[table_name]

    base = stream_of(query.table)
    builder: ViewBuilder = base.view()
    probe = Table.empty(base.schema)
    for join in query.joins:
        right = stream_of(join.table)
        pairs = [(join.left_col, join.right_col)]
        builder = builder.join(right, on=pairs)
        _lt, _rt, out_schema, _k = probe.join_indices(
            Table.empty(right.schema), pairs, "inner", "_r"
        )
        probe = Table.empty(out_schema)

    if query.where is not None:
        # Vectorizability is structural (no aggregate nodes), so probing
        # the empty post-join schema decides it once, at creation — and
        # surfaces unknown-column errors before any state exists.
        if _where_mask(query.where, probe) is None:
            raise IvmError(
                f"view {name!r}: WHERE clause is not vectorizable; "
                f"materialized views require vectorized predicates"
            )
        builder = builder.filter(_WherePredicate(query.where))

    if query.group_by or _has_aggregate(query):
        builder = _compile_grouped(name, query, builder)
    elif not query.select_star:
        builder = _compile_projection(name, query, builder)

    view = builder.materialize(name, order_by=query.order_by,
                               limit=query.limit)
    if query.order_by is not None and query.order_by[0] not in view.schema:
        view.detach()
        raise IvmError(
            f"view {name!r}: ORDER BY column {query.order_by[0]!r} is not "
            f"in the view output {view.schema.names}"
        )
    return view


def _compile_grouped(name: str, query: Query,
                     builder: ViewBuilder) -> ViewBuilder:
    if not query.group_by:
        raise IvmError(
            f"view {name!r}: aggregates without GROUP BY are not "
            f"supported in materialized views (an empty group cannot "
            f"emit the zero row incrementally)"
        )
    keys = list(query.group_by)
    aggregates: list[tuple[str, str | None, str]] = []
    internal: list[str] = []
    finals: list[str] = []
    for i, item in enumerate(query.select):
        expr = item.expr
        final = item.alias or _default_name(expr)
        if isinstance(expr, ColumnRef):
            if expr.name not in keys:
                raise IvmError(
                    f"view {name!r}: column {expr.name!r} must appear in "
                    f"GROUP BY or an aggregate"
                )
            internal.append(expr.name)
        elif isinstance(expr, FuncCall):
            slot = f"__agg{i}"
            if expr.argument == "*":
                if expr.name != "count":
                    raise IvmError(f"{expr.name}(*) is not valid SQL")
                aggregates.append(("count_star", None, slot))
            elif isinstance(expr.argument, ColumnRef):
                if expr.name not in _AGG_FNS:
                    raise IvmError(
                        f"view {name!r}: unknown aggregate {expr.name!r}"
                    )
                aggregates.append((expr.name, expr.argument.name, slot))
            else:
                raise IvmError(
                    f"view {name!r}: aggregates over expressions are not "
                    f"supported in materialized views"
                )
            internal.append(slot)
        else:
            raise IvmError(
                f"view {name!r}: unsupported SELECT expression in "
                f"aggregate query"
            )
        finals.append(final)
    builder = builder.group_by(keys, aggregates)
    rename = {src: dst for src, dst in zip(internal, finals) if src != dst}
    return builder.project(internal, rename)


def _compile_projection(name: str, query: Query,
                        builder: ViewBuilder) -> ViewBuilder:
    names: list[str] = []
    rename: dict[str, str] = {}
    for item in query.select:
        expr = item.expr
        if not isinstance(expr, ColumnRef):
            raise IvmError(
                f"view {name!r}: only plain column projections are "
                f"supported in materialized views"
            )
        names.append(expr.name)
        final = item.alias or expr.name
        if final != expr.name:
            rename[expr.name] = final
    return builder.project(names, rename)
