"""Compile parsed SELECT statements into incrementally-maintained views.

:meth:`repro.sql.Database.create_view` lands here: a :class:`Query` over
registered :class:`~repro.ivm.StreamTable`s is lowered through the same
logical-plan front end the batch executor uses
(:func:`repro.sql.plan.compile_query`) and the plan is walked into a
:class:`~repro.ivm.ViewBuilder` recipe — scan → join* → filter →
(group-by → project | project) — materialized with ORDER BY / LIMIT as
read-time options.  The batch executor over stream snapshots is the
semantics; ``db.query(sql)`` and ``db.create_view(...).table()`` are
property-tested equal row-for-row.  Because both sides share one plan
vocabulary, :meth:`~repro.sql.Database.create_view` also registers the
view's plan fingerprint so the optimizer substitutes the maintained view
into matching ad-hoc queries.

Supported subset (anything else raises :class:`~repro.errors.IvmError`
at ``create_view`` time, never at push time):

* FROM / INNER JOIN over registered streams only
* WHERE clauses the vectorized evaluator accepts (no aggregates)
* SELECT of plain columns (with aliases), or GROUP BY with
  count/sum/min/max/avg/COUNT(*) over plain columns — global aggregates
  without GROUP BY are rejected (an empty incremental group cannot emit
  the ``COUNT(*) = 0`` row batch SQL produces)
* ORDER BY / LIMIT, applied when the view is read

One deliberate divergence: the batch aggregate path re-infers output
dtypes from materialized python values, so an all-NULL aggregate column
degrades to ``str`` there while the view keeps the declared dtype.  Row
values are identical either way.
"""

from __future__ import annotations

from repro.errors import IvmError, ParseError
from repro.ivm import MaterializedView, StreamTable, ViewBuilder
from repro.sql.ast import ColumnRef, Expr, FuncCall, Query
from repro.sql.expr import default_name, where_mask
from repro.sql.plan import (
    Aggregate,
    Filter,
    Join,
    Limit,
    Node,
    Project,
    Scan,
    Sort,
    compile_query,
    describe,
    output_schema,
)
from repro.table import Table

_AGG_FNS = ("count", "sum", "min", "max", "avg")


class _StreamCatalog:
    """Schema catalog over the database's registered streams — what
    :func:`compile_query` resolves names against for view definitions."""

    __slots__ = ("view_name", "streams")

    def __init__(self, view_name: str, streams: dict[str, StreamTable]):
        self.view_name = view_name
        self.streams = streams

    def schema_of(self, table_name: str):
        if table_name not in self.streams:
            raise IvmError(
                f"view {self.view_name!r} references {table_name!r}, which "
                f"is not a registered stream; available: "
                f"{sorted(self.streams)}"
            )
        return self.streams[table_name].schema


class _WherePredicate:
    """A WHERE clause as an ivm filter predicate (vectorized mask)."""

    __slots__ = ("expr",)

    def __init__(self, expr: Expr):
        self.expr = expr

    def mask(self, table: Table):
        mask = where_mask(self.expr, table)
        if mask is None:                     # guarded at compile time
            raise IvmError(
                f"WHERE clause {self.expr!r} stopped being vectorizable"
            )
        return mask


def compile_view(name: str, query: Query,
                 streams: dict[str, StreamTable]) -> MaterializedView:
    """Build and seed a materialized view for ``query`` over ``streams``."""
    catalog = _StreamCatalog(name, streams)
    try:
        plan = compile_query(query, catalog)
    except ParseError as exc:
        # Plan-time SELECT-list validation mirrors the batch oracle;
        # surface it under the view-compilation error type.
        raise IvmError(f"view {name!r}: {exc}") from exc

    # Peel read-time options: LIMIT caps the top, and the Sort node (above
    # an Aggregate, or below the Project for plain queries) becomes the
    # view's ORDER BY — applied on read, over the output columns.
    limit: int | None = None
    order_by: tuple[str, bool] | None = None
    if isinstance(plan, Limit):
        limit, plan = plan.n, plan.child
    if isinstance(plan, Sort):
        order_by, plan = (plan.column, plan.descending), plan.child
    elif isinstance(plan, Project) and isinstance(plan.child, Sort):
        order_by = (plan.child.column, plan.child.descending)
        plan = Project(plan.child.child, plan.items)

    builder = _compile_node(name, plan, streams, catalog)
    view = builder.materialize(name, order_by=order_by, limit=limit)
    if order_by is not None and order_by[0] not in view.schema:
        view.detach()
        raise IvmError(
            f"view {name!r}: ORDER BY column {order_by[0]!r} is not "
            f"in the view output {view.schema.names}"
        )
    return view


def _compile_node(name: str, node: Node, streams: dict[str, StreamTable],
                  catalog: _StreamCatalog) -> ViewBuilder:
    """Walk a logical plan into a ViewBuilder recipe."""
    if isinstance(node, Scan):
        return streams[node.table].view()
    if isinstance(node, Join):
        if not isinstance(node.right, Scan):
            raise IvmError(
                f"view {name!r}: unsupported join input "
                f"{describe(node.right)}"
            )
        builder = _compile_node(name, node.left, streams, catalog)
        return builder.join(streams[node.table],
                            on=[(node.left_col, node.right_col)])
    if isinstance(node, Filter):
        builder = _compile_node(name, node.child, streams, catalog)
        # Vectorizability is structural (no aggregate nodes), so probing
        # the empty input schema decides it once, at creation — and
        # surfaces unknown-column errors before any state exists.
        probe = Table.empty(output_schema(node.child, catalog))
        if where_mask(node.predicate, probe) is None:
            raise IvmError(
                f"view {name!r}: WHERE clause is not vectorizable; "
                f"materialized views require vectorized predicates"
            )
        return builder.filter(_WherePredicate(node.predicate))
    if isinstance(node, Aggregate):
        builder = _compile_node(name, node.child, streams, catalog)
        return _compile_grouped(name, node, builder)
    if isinstance(node, Project):
        builder = _compile_node(name, node.child, streams, catalog)
        return _compile_projection(name, node, builder)
    raise IvmError(
        f"view {name!r}: unsupported plan node {describe(node)}"
    )


def _compile_grouped(name: str, node: Aggregate,
                     builder: ViewBuilder) -> ViewBuilder:
    if not node.group_by:
        raise IvmError(
            f"view {name!r}: aggregates without GROUP BY are not "
            f"supported in materialized views (an empty group cannot "
            f"emit the zero row incrementally)"
        )
    keys = list(node.group_by)
    aggregates: list[tuple[str, str | None, str]] = []
    internal: list[str] = []
    finals: list[str] = []
    for i, item in enumerate(node.items):
        expr = item.expr
        final = item.alias or default_name(expr)
        if isinstance(expr, ColumnRef):
            if expr.name not in keys:
                raise IvmError(
                    f"view {name!r}: column {expr.name!r} must appear in "
                    f"GROUP BY or an aggregate"
                )
            internal.append(expr.name)
        elif isinstance(expr, FuncCall):
            slot = f"__agg{i}"
            if expr.argument == "*":
                if expr.name != "count":
                    raise IvmError(f"{expr.name}(*) is not valid SQL")
                aggregates.append(("count_star", None, slot))
            elif isinstance(expr.argument, ColumnRef):
                if expr.name not in _AGG_FNS:
                    raise IvmError(
                        f"view {name!r}: unknown aggregate {expr.name!r}"
                    )
                aggregates.append((expr.name, expr.argument.name, slot))
            else:
                raise IvmError(
                    f"view {name!r}: aggregates over expressions are not "
                    f"supported in materialized views"
                )
            internal.append(slot)
        else:
            raise IvmError(
                f"view {name!r}: unsupported SELECT expression in "
                f"aggregate query"
            )
        finals.append(final)
    builder = builder.group_by(keys, aggregates)
    rename = {src: dst for src, dst in zip(internal, finals) if src != dst}
    return builder.project(internal, rename)


def _compile_projection(name: str, node: Project,
                        builder: ViewBuilder) -> ViewBuilder:
    names: list[str] = []
    rename: dict[str, str] = {}
    for item in node.items:
        expr = item.expr
        if not isinstance(expr, ColumnRef):
            raise IvmError(
                f"view {name!r}: only plain column projections are "
                f"supported in materialized views"
            )
        names.append(expr.name)
        final = item.alias or expr.name
        if final != expr.name:
            rename[expr.name] = final
    return builder.project(names, rename)
