"""Physical planner: bind optimized logical plans to execution backends.

Each logical node becomes a :class:`PhysicalNode` bound to one of three
backends:

* **columnar** — the single-table vectorized kernels
  (:meth:`~repro.table.Table.filter` under a compiled mask,
  :meth:`~repro.table.Table.join` with compile-time renames,
  :meth:`~repro.table.Table.group_by` for simple aggregates) with the
  row-at-a-time evaluators as fallback for opaque expressions.
* **shard** — :mod:`repro.shard` morsel kernels when the scanned source is
  a :class:`~repro.shard.PartitionedTable`: per-shard filter (keeps the
  partitioning), broadcast join, and partition-aligned group-by.  Only
  strategies that provably preserve the single-table kernels' byte-exact
  output are used; anything else materializes first.
* **view** — a :class:`~repro.sql.plan.ViewScan` installed by the
  optimizer's view-substitution rule reads an existing
  :class:`~repro.ivm.MaterializedView` instead of recomputing its prefix.

Execution emits the same ``sql.<stage>`` spans and EXPLAIN ANALYZE plan
records as the naive executor, so observability output is identical
modulo the extra per-table scan entries.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.errors import SchemaError
from repro.obs import tracing
from repro.sql.ast import ColumnRef, Expr, FuncCall
from repro.sql.expr import (
    aggregate_rows,
    default_name,
    eval_row,
    project_column,
    project_items,
    where_mask,
)
from repro.sql.plan import (
    Aggregate,
    Filter,
    Join,
    Limit,
    Node,
    Project,
    Scan,
    Sort,
    ViewScan,
    describe,
    output_schema,
)
from repro.table import Column, Table
from repro.table.schema import Schema

__all__ = ["PhysicalNode", "PhysicalPlan", "bind"]


class _MaskPredicate:
    """A WHERE clause as a per-shard mask predicate (picklable: the AST is
    frozen dataclasses all the way down)."""

    __slots__ = ("expr",)

    def __init__(self, expr: Expr):
        self.expr = expr

    def __call__(self, table: Table) -> np.ndarray:
        mask = where_mask(self.expr, table)
        if mask is None:                 # guarded at bind time
            raise SchemaError(
                f"predicate {self.expr!r} stopped being vectorizable"
            )
        return mask


class PhysicalNode:
    """One bound operator: a runner plus rendering metadata."""

    __slots__ = ("op", "detail", "backend", "children", "runner")

    def __init__(self, op: str, detail: str, backend: str,
                 children: list["PhysicalNode"],
                 runner: Callable[[Any], Any]):
        self.op = op
        self.detail = detail
        self.backend = backend
        self.children = children
        self.runner = runner

    def run(self, record) -> Any:
        return self.runner(record)

    def render(self, indent: int = 0) -> str:
        pad = "  " * indent
        lines = [f"{pad}{self.detail} [{self.backend}]"]
        lines += [child.render(indent + 1) for child in self.children]
        return "\n".join(lines)


class PhysicalPlan:
    def __init__(self, root: PhysicalNode):
        self.root = root

    def execute(self, plan_record: list[dict[str, Any]] | None = None) -> Table:
        """Run the bound plan; ``plan_record`` collects EXPLAIN ANALYZE
        stage entries in execution order."""

        def record(stage: str, span, rows_in: int, rows_out: int,
                   **extra: Any) -> None:
            if plan_record is None:
                return
            entry: dict[str, Any] = {
                "stage": stage, "rows_in": rows_in, "rows_out": rows_out,
            }
            if span is not None:
                entry["seconds"] = span.duration
            entry.update(extra)
            plan_record.append(entry)

        return _materialize(self.root.run(record))

    def render(self) -> str:
        return self.root.render()


def _materialize(result: Any) -> Table:
    if isinstance(result, Table):
        return result
    return result.to_table()            # PartitionedTable


def bind(node: Node, db, pmap=None) -> PhysicalPlan:
    """Bind an optimized logical plan against ``db``.

    ``db`` is the :class:`~repro.sql.engine.Database` (also the catalog);
    ``pmap`` an optional :class:`~repro.par.BaseMap` forwarded to the
    shard kernels.
    """
    return PhysicalPlan(_bind(node, db, pmap))


def _bind(node: Node, db, pmap) -> PhysicalNode:
    if isinstance(node, Scan):
        return _bind_scan(node, db)
    if isinstance(node, ViewScan):
        return _bind_view_scan(node, db)
    if isinstance(node, Filter):
        return _bind_filter(node, db, pmap)
    if isinstance(node, Join):
        return _bind_join(node, db, pmap)
    if isinstance(node, Aggregate):
        return _bind_aggregate(node, db, pmap)
    if isinstance(node, Sort):
        return _bind_sort(node, db, pmap)
    if isinstance(node, Project):
        return _bind_project(node, db, pmap)
    if isinstance(node, Limit):
        return _bind_limit(node, db, pmap)
    raise TypeError(f"unknown plan node {node!r}")


# -- scans --------------------------------------------------------------------


def _bind_scan(node: Scan, db) -> PhysicalNode:
    sharded = db.is_partitioned(node.table)
    backend = "shard" if sharded else "columnar"

    def run(record):
        source = db.scan_source(node.table)
        if node.columns is not None:
            cols = list(node.columns)
            if isinstance(source, Table):
                source = source.project(cols)
            else:
                source = source.map_shards(lambda t: t.project(cols))
        rows = source.num_rows
        record("scan", None, rows, rows, table=node.table)
        return source

    return PhysicalNode("scan", describe(node), backend, [], run)


def _bind_view_scan(node: ViewScan, db) -> PhysicalNode:
    def run(record):
        table = db.view(node.name).table()
        record("scan", None, table.num_rows, table.num_rows,
               table=f"view:{node.name}")
        return table

    return PhysicalNode("scan", describe(node), "view", [], run)


# -- filter -------------------------------------------------------------------


def _bind_filter(node: Filter, db, pmap) -> PhysicalNode:
    child = _bind(node.child, db, pmap)
    schema = output_schema(node.child, db)
    vectorized = where_mask(node.predicate, Table.empty(schema)) is not None
    backend = ("shard" if db.plan_is_partitioned(node.child) and vectorized
               else f"columnar[{'vectorized' if vectorized else 'rows'}]")

    def run(record):
        source = child.run(record)
        rows_in = source.num_rows
        with tracing.span("sql.where") as s:
            if not isinstance(source, Table) and vectorized:
                from repro.shard import kernels as shard_kernels

                out: Any = shard_kernels.filter(
                    source, _MaskPredicate(node.predicate), pmap)
            else:
                table = _materialize(source)
                if vectorized:
                    out = table.filter(where_mask(node.predicate, table))
                else:
                    out = table.select(
                        lambda row: bool(eval_row(node.predicate, row))
                    )
            selectivity = out.num_rows / rows_in if rows_in else None
            s.set(rows_out=out.num_rows, vectorized=vectorized)
        record("where", s, rows_in, out.num_rows,
               selectivity=selectivity, vectorized=vectorized)
        return out

    return PhysicalNode("where", describe(node), backend, [child], run)


# -- join ---------------------------------------------------------------------


def _bind_join(node: Join, db, pmap) -> PhysicalNode:
    left = _bind(node.left, db, pmap)
    right = _bind(node.right, db, pmap)
    left_sharded = db.plan_is_partitioned(node.left)
    backend = "shard[broadcast]|columnar" if left_sharded else "columnar"
    renames = dict(node.renames)
    right_key = renames.get(node.right_col, node.right_col)

    def run(record):
        from repro.shard.kernels import BROADCAST_LIMIT

        left_out = left.run(record)
        right_table = _materialize(right.run(record))
        mapping = {src: out for src, out in node.renames
                   if src != out and src in right_table.schema}
        if mapping:
            right_table = right_table.rename(mapping)
        rows_in = left_out.num_rows
        on = [(node.left_col, right_key)]
        with tracing.span("sql.join", table=node.table) as s:
            if (not isinstance(left_out, Table)
                    and right_table.num_rows <= BROADCAST_LIMIT):
                from repro.shard import kernels as shard_kernels

                out = shard_kernels.join(left_out, right_table, on=on,
                                         pmap=pmap)
            else:
                out = _materialize(left_out).join(right_table, on=on)
            s.set(rows_out=out.num_rows)
        record("join", s, rows_in, out.num_rows, table=node.table,
               on=f"{node.left_col}={node.right_col}")
        return out

    return PhysicalNode("join", describe(node), backend, [left, right], run)


# -- aggregate ----------------------------------------------------------------


def _bind_aggregate(node: Aggregate, db, pmap) -> PhysicalNode:
    child = _bind(node.child, db, pmap)
    schema = output_schema(node.child, db)
    simple = _aggregate_plan(node, schema)
    sharded = (simple is not None and simple.shardable
               and db.plan_partition_keys(node.child) is not None
               and set(db.plan_partition_keys(node.child))
               <= set(node.group_by))
    if sharded:
        backend = "shard[partition-aligned]"
    else:
        backend = ("columnar[group_by]" if simple is not None
                   else "columnar[rows]")
    by = ",".join(node.group_by) or "<all>"

    def run(record):
        source = child.run(record)
        rows_in = source.num_rows
        with tracing.span("sql.aggregate") as s:
            if (sharded and not isinstance(source, Table)
                    and source.num_rows > 0):
                from repro.shard import kernels as shard_kernels

                grouped = shard_kernels.group_by(
                    source, list(node.group_by), simple.specs, pmap)
                out = simple.finish(grouped)
                vectorized = True
            else:
                table = _materialize(source)
                out, vectorized = _run_aggregate(node, simple, table)
            s.set(rows_out=out.num_rows)
        record("aggregate", s, rows_in, out.num_rows, by=by,
               vectorized=vectorized)
        return out

    return PhysicalNode("aggregate", describe(node), backend, [child], run)


class _AggregatePlan:
    """A vectorizable aggregate: group_by specs plus output assembly."""

    __slots__ = ("specs", "sources", "group_by", "star_slots",
                 "computed", "shardable", "sources_and_finals")

    def __init__(self, group_by):
        self.group_by = list(group_by)
        self.specs: list[tuple[str, str, str]] = []
        self.sources: list[str] = []     # grouped-table column per item
        self.computed: list[tuple[str, Expr]] = []  # helper columns to add
        self.star_slots: list[str] = []
        self.shardable = True
        self.sources_and_finals: list[tuple[str, str]] = []

    def finish(self, grouped: Table) -> Table:
        """Reassemble the grouped output in SELECT order with final names."""
        fields = []
        columns = []
        for src, final in self.sources_and_finals:
            dtype = grouped.schema.dtype_of(src)
            fields.append((final, dtype))
            columns.append(Column(dtype, grouped.column_array(src),
                                  grouped.null_mask(src)))
        return Table.from_columns(Schema(fields), columns)


def _aggregate_plan(node: Aggregate, schema: Schema) -> _AggregatePlan | None:
    """Compile SELECT items to ``Table.group_by`` specs, or None when the
    row-at-a-time oracle must run (literal items, opaque expressions,
    sum/avg over non-numeric columns)."""
    plan = _AggregatePlan(node.group_by)
    finals = []
    for i, item in enumerate(node.items):
        expr = item.expr
        final = item.alias or default_name(expr)
        finals.append(final)
        if isinstance(expr, ColumnRef):
            if expr.name not in node.group_by:
                return None              # oracle raises the ParseError
            plan.sources.append(expr.name)
            continue
        if not isinstance(expr, FuncCall):
            return None                  # literals etc.: keep oracle semantics
        slot = f"__a{i}"
        if expr.argument == "*":
            if expr.name != "count":
                return None
            star = "__star"
            plan.star_slots.append(star)
            plan.specs.append(("count", star, slot))
            plan.sources.append(slot)
            plan.shardable = False       # needs the injected ones column
            continue
        arg = expr.argument
        if isinstance(arg, ColumnRef) and arg.name in schema:
            arg_name, arg_dtype = arg.name, schema.dtype_of(arg.name)
        else:
            arg_name = f"__arg{i}"
            plan.computed.append((arg_name, arg))
            arg_dtype = None             # checked when the column is built
            plan.shardable = False
        if expr.name in ("sum", "avg") and arg_dtype not in (None, "int",
                                                             "float"):
            return None
        plan.specs.append((expr.name, arg_name, slot))
        plan.sources.append(slot)
    plan.sources_and_finals = list(zip(plan.sources, finals))
    return plan


def _run_aggregate(node: Aggregate, simple: _AggregatePlan | None,
                   table: Table) -> tuple[Table, bool]:
    items = list(node.items)
    group_by = list(node.group_by)
    if simple is None or (table.num_rows == 0 and not group_by):
        # Global aggregate over zero rows still emits one row (COUNT = 0):
        # only the row oracle produces it.
        return aggregate_rows(items, group_by, table), False
    work = table
    extra_fields = []
    extra_cols = []
    n = table.num_rows
    if simple.star_slots:
        ones = Column("int", np.ones(n, dtype=np.int64),
                      np.zeros(n, dtype=bool))
        for star in dict.fromkeys(simple.star_slots):
            extra_fields.append((star, "int"))
            extra_cols.append(ones)
    for arg_name, expr in simple.computed:
        col = project_column(expr, work)
        if col is None:
            return aggregate_rows(items, group_by, table), False
        fn = next(f for f, c, _ in simple.specs if c == arg_name)
        if fn in ("sum", "avg") and col.dtype not in ("int", "float"):
            return aggregate_rows(items, group_by, table), False
        extra_fields.append((arg_name, col.dtype))
        extra_cols.append(col)
    if extra_cols:
        fields = [(f.name, f.dtype) for f in work.schema] + extra_fields
        work = Table.from_columns(
            Schema(fields), list(work.columns()) + extra_cols)
    grouped = work.group_by(group_by, simple.specs)
    return simple.finish(grouped), True


# -- sort / project / limit ---------------------------------------------------


def _bind_sort(node: Sort, db, pmap) -> PhysicalNode:
    child = _bind(node.child, db, pmap)

    def run(record):
        table = _materialize(child.run(record))
        with tracing.span("sql.sort", by=node.column) as s:
            out = table.order_by(node.column, descending=node.descending)
        record("sort", s, table.num_rows, out.num_rows, by=node.column)
        return out

    return PhysicalNode("sort", describe(node), "columnar", [child], run)


def _bind_project(node: Project, db, pmap) -> PhysicalNode:
    child = _bind(node.child, db, pmap)
    refs = [item.expr.name if isinstance(item.expr, ColumnRef) else None
            for item in node.items]
    finals = [item.alias or default_name(item.expr) for item in node.items]
    plain = (all(r is not None for r in refs)
             and len(set(refs)) == len(refs)
             and len(set(finals)) == len(finals))
    backend = f"columnar[{'zero-copy' if plain else 'vectorized'}]"

    def run(record):
        table = _materialize(child.run(record))
        rows_in = table.num_rows
        with tracing.span("sql.project") as s:
            if plain and all(r in table.schema for r in refs):
                out = table.project(refs)
                mapping = {r: f for r, f in zip(refs, finals) if r != f}
                if mapping:
                    out = out.rename(mapping)
            else:
                out = project_items(list(node.items), table)
            s.set(columns=out.num_columns)
        record("project", s, rows_in, out.num_rows, columns=out.num_columns)
        return out

    return PhysicalNode("project", describe(node), backend, [child], run)


def _bind_limit(node: Limit, db, pmap) -> PhysicalNode:
    child = _bind(node.child, db, pmap)

    def run(record):
        table = _materialize(child.run(record))
        rows_in = table.num_rows
        with tracing.span("sql.limit", limit=node.n) as s:
            out = table.limit(node.n)
        record("limit", s, rows_in, out.num_rows, limit=node.n)
        return out

    return PhysicalNode("limit", describe(node), "columnar", [child], run)
