"""Rule-based optimizer over the logical plan IR.

:func:`optimize` runs a fixed rule pipeline and returns the rewritten
plan plus one human-readable annotation per applied rewrite (surfaced by
``Database.explain()``):

1. **constant folding** — literal-only subtrees collapse via the same
   row evaluator the naive executor uses (so ``1/0`` folds to NULL, not
   an error), and always-true filters disappear.
2. **predicate pushdown** — AND-conjuncts of every WHERE move through
   inner joins toward the side whose columns they reference (right-side
   refs rewritten through the join's compile-time renames) and below
   aggregates when they only touch group keys.
3. **view substitution** — a subtree whose :func:`~repro.sql.plan.plan_key`
   matches a registered materialized view becomes a :class:`ViewScan`;
   the keys are computed at this pipeline position on both sides, so
   fingerprints agree exactly.
4. **projection pruning** — scans narrow to the columns the rest of the
   plan references (always keeping join/sort keys and at least one
   column).
5. **join reordering** — a chain of inner joins re-orders
   most-selective-first, driven by ``Table.stats()`` distinct counts and
   null fractions.  Applied only when it provably preserves the naive
   executor's byte-identical output: every joined table's key is unique
   (so joins are semi-join filters with fanout ≤ 1), no suffix renames
   fire anywhere in the chain, and the original column order is restored
   by name when no Project/Aggregate ancestor would do it anyway.

Every rule preserves the naive executor's output *exactly* — same rows,
same row order, same column names — which is what the randomized
optimizer-on/off equivalence suite (tests/test_sql_optimizer.py) pins.
"""

from __future__ import annotations

from dataclasses import replace
from functools import reduce
from typing import Any

from repro.sql.ast import BinaryOp, ColumnRef, Expr, FuncCall, Literal, SelectItem, UnaryOp
from repro.sql.expr import (
    eval_row,
    expr_columns,
    render_expr,
    rewrite_refs,
)
from repro.sql.plan import (
    Aggregate,
    Filter,
    Join,
    Limit,
    Node,
    Project,
    Scan,
    Sort,
    ViewScan,
    output_names,
    plan_key,
)

__all__ = ["optimize", "split_conjuncts"]


def optimize(node: Node, catalog, *, view_keys: dict[str, str] | None = None,
             prune: bool = True, reorder: bool = True
             ) -> tuple[Node, list[str]]:
    """Run the rule pipeline; returns ``(plan, rewrite annotations)``.

    ``catalog`` provides ``schema_of(name)`` (always) and ``stats_of(name)``
    (only consulted when ``reorder`` is on).  The view compiler calls this
    with ``prune=False, reorder=False`` so stored view fingerprints and
    ad-hoc subtree fingerprints come from the same pipeline stage.
    """
    notes: list[str] = []
    node = _fold_node(node, notes)
    node = _push(node, [], catalog, notes)
    if view_keys:
        node = _substitute(node, view_keys, notes)
    if prune:
        node = _prune(node, None, catalog, notes)
    if reorder:
        node = _reorder(node, catalog, notes, covered=False)
    return node, notes


# -- constant folding ----------------------------------------------------------


def _is_literal(expr: Any) -> bool:
    return isinstance(expr, Literal)


def fold_expr(expr: Expr) -> Expr:
    """Collapse literal-only subtrees using the row evaluator, so folded
    semantics (NULL comparisons false, division by zero -> NULL) are the
    naive executor's by construction."""
    if isinstance(expr, (Literal, ColumnRef)):
        return expr
    if isinstance(expr, FuncCall):
        if expr.argument == "*":
            return expr
        arg = fold_expr(expr.argument)
        return expr if arg is expr.argument else FuncCall(expr.name, arg)
    if isinstance(expr, UnaryOp):
        operand = fold_expr(expr.operand)
        out = expr if operand is expr.operand else UnaryOp(expr.op, operand)
        if _is_literal(operand):
            return Literal(eval_row(out, {}))
        return out
    if isinstance(expr, BinaryOp):
        left = fold_expr(expr.left)
        right = fold_expr(expr.right)
        out = (expr if left is expr.left and right is expr.right
               else BinaryOp(expr.op, left, right))
        if _is_literal(left) and _is_literal(right):
            return Literal(eval_row(out, {}))
        return out
    return expr


def _fold_items(items: tuple[SelectItem, ...],
                notes: list[str]) -> tuple[SelectItem, ...]:
    folded = []
    changed = False
    for item in items:
        expr = fold_expr(item.expr)
        if expr is not item.expr:
            notes.append(
                f"constant_folding: {render_expr(item.expr)} "
                f"-> {render_expr(expr)}"
            )
            changed = True
            item = SelectItem(expr, item.alias)
        folded.append(item)
    return tuple(folded) if changed else items


def _fold_node(node: Node, notes: list[str]) -> Node:
    if isinstance(node, (Scan, ViewScan)):
        return node
    if isinstance(node, Join):
        return replace(node, left=_fold_node(node.left, notes),
                       right=_fold_node(node.right, notes))
    child = _fold_node(node.child, notes)
    if isinstance(node, Filter):
        pred = fold_expr(node.predicate)
        if pred is not node.predicate:
            notes.append(
                f"constant_folding: {render_expr(node.predicate)} "
                f"-> {render_expr(pred)}"
            )
        if isinstance(pred, Literal):
            if pred.value is not None and bool(pred.value):
                notes.append("constant_folding: removed always-true filter")
                return child
            # Always-false/NULL filters stay: they evaluate in O(n) as a
            # constant mask and keeping the node keeps EXPLAIN honest.
        return Filter(child, pred)
    if isinstance(node, (Project, Aggregate)):
        return replace(node, child=child, items=_fold_items(node.items, notes))
    return replace(node, child=child)


# -- predicate pushdown --------------------------------------------------------


def split_conjuncts(expr: Expr) -> list[Expr]:
    """Top-level AND split (filtering by each conjunct in turn equals
    filtering by the conjunction: NULL and false both drop the row)."""
    if isinstance(expr, BinaryOp) and expr.op == "and":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def _conjoin(conjuncts: list[Expr]) -> Expr:
    return reduce(lambda a, b: BinaryOp("and", a, b), conjuncts)


def _wrap(node: Node, pending: list[Expr]) -> Node:
    return Filter(node, _conjoin(pending)) if pending else node


def _push(node: Node, pending: list[Expr], catalog,
          notes: list[str]) -> Node:
    """Move ``pending`` conjuncts (referencing ``node``'s output names) as
    close to the leaves as possible; unplaceable ones wrap ``node``."""
    if isinstance(node, Filter):
        return _push(node.child, pending + split_conjuncts(node.predicate),
                     catalog, notes)
    if isinstance(node, Join):
        left_names = set(output_names(node.left, catalog))
        right_child = set(output_names(node.right, catalog))
        inverse = {out: src for src, out in node.renames
                   if src in right_child}
        left_p: list[Expr] = []
        right_p: list[Expr] = []
        keep: list[Expr] = []
        for conj in pending:
            refs = expr_columns(conj)
            if refs and refs <= left_names:
                left_p.append(conj)
                notes.append(
                    f"predicate_pushdown: {render_expr(conj)} below "
                    f"join {node.table} (left input)"
                )
            elif refs and all(r in inverse for r in refs):
                right_p.append(rewrite_refs(conj, inverse))
                notes.append(
                    f"predicate_pushdown: {render_expr(conj)} below "
                    f"join {node.table} (into {node.table})"
                )
            else:
                keep.append(conj)
        out = replace(node,
                      left=_push(node.left, left_p, catalog, notes),
                      right=_push(node.right, right_p, catalog, notes))
        return _wrap(out, keep)
    if isinstance(node, Aggregate):
        # A filter above an aggregate may move below it when it only
        # references group keys (same groups survive either way, in the
        # same first-appearance order).
        key_map = {}
        for item in node.items:
            if (isinstance(item.expr, ColumnRef)
                    and item.expr.name in node.group_by):
                key_map[item.alias or item.expr.name] = item.expr.name
        below: list[Expr] = []
        keep = []
        for conj in pending:
            refs = expr_columns(conj)
            if refs and all(r in key_map for r in refs):
                below.append(rewrite_refs(conj, key_map))
                notes.append(
                    f"predicate_pushdown: {render_expr(conj)} below aggregate"
                )
            else:
                keep.append(conj)
        out = replace(node, child=_push(node.child, below, catalog, notes))
        return _wrap(out, keep)
    if isinstance(node, (Scan, ViewScan)):
        return _wrap(node, pending)
    # Sort/Limit/Project: nothing ever compiles a filter above these, but
    # stay correct if one shows up — park it right here.
    return _wrap(replace(node, child=_push(node.child, [], catalog, notes)),
                 pending)


# -- view substitution ---------------------------------------------------------


def _substitute(node: Node, view_keys: dict[str, str],
                notes: list[str]) -> Node:
    """Top-down largest-prefix match of subtrees against registered view
    fingerprints."""
    key = plan_key(node)
    if key in view_keys:
        name = view_keys[key]
        notes.append(f"view_substitution: plan prefix -> view {name!r}")
        return ViewScan(name)
    if isinstance(node, Join):
        return replace(node,
                       left=_substitute(node.left, view_keys, notes),
                       right=_substitute(node.right, view_keys, notes))
    if isinstance(node, (Scan, ViewScan)):
        return node
    return replace(node, child=_substitute(node.child, view_keys, notes))


# -- projection pruning --------------------------------------------------------


def _prune(node: Node, required: set[str] | None, catalog,
           notes: list[str]) -> Node:
    """Narrow scans to ``required`` columns (None = all)."""
    if isinstance(node, Scan):
        names = catalog.schema_of(node.table).names
        if required is None:
            return node
        keep = [n for n in names if n in required]
        if keep == list(names):
            return node
        if not keep:
            # A table must keep at least one column to keep its row count
            # (COUNT(*) with no referenced columns).
            keep = [names[0]]
        notes.append(
            f"projection_pruning: scan {node.table} -> [{', '.join(keep)}]"
        )
        return Scan(node.table, tuple(keep))
    if isinstance(node, ViewScan):
        return node
    if isinstance(node, Filter):
        child_req = (None if required is None
                     else required | expr_columns(node.predicate))
        return Filter(_prune(node.child, child_req, catalog, notes),
                      node.predicate)
    if isinstance(node, Sort):
        child_req = None if required is None else required | {node.column}
        return replace(node, child=_prune(node.child, child_req, catalog,
                                          notes))
    if isinstance(node, Limit):
        return replace(node, child=_prune(node.child, required, catalog,
                                          notes))
    if isinstance(node, Project):
        child_req: set[str] = set()
        for item in node.items:
            child_req |= expr_columns(item.expr)
        return replace(node, child=_prune(node.child, child_req, catalog,
                                          notes))
    if isinstance(node, Aggregate):
        # Pure COUNT(*) leaves the set empty; scans keep one column anyway.
        child_req = set(node.group_by)
        for item in node.items:
            child_req |= expr_columns(item.expr)
        return replace(node, child=_prune(node.child, child_req, catalog,
                                          notes))
    if isinstance(node, Join):
        left_names = set(output_names(node.left, catalog))
        right_child = set(output_names(node.right, catalog))
        inverse = {out: src for src, out in node.renames
                   if src in right_child}
        if required is None:
            left_req: set[str] | None = None
            right_req: set[str] | None = None
        else:
            left_req = {r for r in required if r in left_names}
            left_req.add(node.left_col)
            right_req = {inverse[r] for r in required if r in inverse}
            right_req.add(node.right_col)
        return replace(node,
                       left=_prune(node.left, left_req, catalog, notes),
                       right=_prune(node.right, right_req, catalog, notes))
    raise TypeError(f"unknown plan node {node!r}")


# -- join reordering -----------------------------------------------------------


def _base_scan(node: Node) -> Scan | None:
    """The Scan under an optional Filter — the only right-input shapes the
    reorder rule accepts (what pushdown produces for base tables)."""
    if isinstance(node, Filter):
        node = node.child
    return node if isinstance(node, Scan) else None


def _unique_key(stats: dict, column: str) -> bool:
    st = stats.get(column)
    if st is None:
        return False
    return st["count"] > 0 and st["distinct"] == st["count"] - st["nulls"]


def _filter_selectivity(node: Node, stats: dict) -> float:
    """Estimated surviving fraction of the (optionally filtered) scan."""
    if not isinstance(node, Filter):
        return 1.0
    sel = 1.0
    for conj in split_conjuncts(node.predicate):
        sel *= _predicate_selectivity(conj, stats)
    return sel


def _predicate_selectivity(expr: Expr, stats: dict) -> float:
    """Textbook selectivity guesses from exact column statistics."""
    if isinstance(expr, BinaryOp):
        if expr.op == "and":
            return (_predicate_selectivity(expr.left, stats)
                    * _predicate_selectivity(expr.right, stats))
        if expr.op == "or":
            return min(1.0, _predicate_selectivity(expr.left, stats)
                       + _predicate_selectivity(expr.right, stats))
        refs = sorted(expr_columns(expr))
        st = stats.get(refs[0]) if refs else None
        non_null = 1.0 - (st["null_fraction"] if st else 0.0)
        if expr.op == "=":
            distinct = max(st["distinct"], 1) if st else 10
            return non_null / distinct
        if expr.op == "<>":
            distinct = max(st["distinct"], 1) if st else 10
            return non_null * (1.0 - 1.0 / distinct)
        if expr.op in ("<", "<=", ">", ">="):
            return non_null / 3.0
        return 1.0 / 3.0
    if isinstance(expr, UnaryOp):
        if expr.op == "isnull":
            refs = sorted(expr_columns(expr))
            st = stats.get(refs[0]) if refs else None
            return st["null_fraction"] if st else 0.1
        if expr.op == "not":
            return 1.0 - _predicate_selectivity(expr.operand, stats)
    return 1.0 / 3.0


def _reorder(node: Node, catalog, notes: list[str], covered: bool) -> Node:
    """Reorder chains of inner joins most-selective-first.

    Only fires when byte-identical output is provable: all right-side
    join keys unique (fanout <= 1, so each join is a pure filter on the
    driving rows), no suffix renames anywhere in the chain, and right
    inputs are plain (optionally filtered) scans.  When no Project or
    Aggregate sits above the chain (SELECT *), a name-projection restores
    the original column order.
    """
    if isinstance(node, (Scan, ViewScan)):
        return node
    if isinstance(node, (Project, Aggregate)):
        return replace(node, child=_reorder(node.child, catalog, notes,
                                            covered=True))
    if not isinstance(node, Join):
        return replace(node, child=_reorder(node.child, catalog, notes,
                                            covered=covered))

    # Collect the left-deep chain of joins above a non-join base.
    units: list[Join] = []
    cursor: Node = node
    while isinstance(cursor, Join):
        units.append(cursor)
        cursor = cursor.left
    base = _reorder(cursor, catalog, notes, covered=covered)
    units.reverse()                      # innermost-first

    def bail() -> Node:
        out = base
        for unit in units:
            out = replace(unit, left=out,
                          right=_reorder(unit.right, catalog, notes,
                                         covered=covered))
        return out

    if len(units) < 2:
        return bail()
    for unit in units:
        scan = _base_scan(unit.right)
        if scan is None or scan.table != unit.table:
            return bail()
        if any(src != out for src, out in unit.renames):
            return bail()
        if not _unique_key(catalog.stats_of(unit.table), unit.right_col):
            return bail()

    ranked = sorted(
        range(len(units)),
        key=lambda i: (_filter_selectivity(units[i].right,
                                           catalog.stats_of(units[i].table)),
                       i),
    )
    # Greedy placement respecting key availability.
    available = set(output_names(base, catalog))
    placed: list[int] = []
    remaining = list(ranked)
    while remaining:
        pick = next((i for i in remaining
                     if units[i].left_col in available), None)
        if pick is None:
            return bail()                # key comes from an unplaced unit
        remaining.remove(pick)
        placed.append(pick)
        available |= {out for _, out in units[pick].renames}
    if placed == list(range(len(units))):
        return bail()

    original_names = output_names(node, catalog)
    out: Node = base
    for i in placed:
        out = replace(units[i], left=out)
    notes.append(
        "join_reorder: "
        + " -> ".join(units[i].table for i in placed)
        + " (most selective first)"
    )
    if not covered:
        # SELECT *: restore the original column order by name.
        out = Project(out, tuple(SelectItem(ColumnRef(n))
                                 for n in original_names))
        notes.append("join_reorder: added column-order-restoring projection")
    return out
