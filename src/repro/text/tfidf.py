"""TF-IDF vectorizer over word tokens, plus cosine retrieval.

This backs the Retro-style retrieval module, the Symphony data-lake index,
and the cheap document features used by several matchers.
"""

from __future__ import annotations

import math
from collections import Counter

import numpy as np

from repro.errors import NotFittedError
from repro.text.tokenize import STOPWORDS, stem, words


class TfidfVectorizer:
    """Fit a vocabulary + IDF table on a corpus; transform texts to dense
    L2-normalized vectors.  ``drop_stopwords`` removes common function words
    — essential when the corpus is small and IDF alone cannot discount them."""

    def __init__(self, min_df: int = 1, max_features: int | None = None,
                 drop_stopwords: bool = False, stem_tokens: bool = False):
        self.min_df = min_df
        self.max_features = max_features
        self.drop_stopwords = drop_stopwords
        self.stem_tokens = stem_tokens
        self.vocabulary_: dict[str, int] | None = None
        self.idf_: np.ndarray | None = None

    def _tokens(self, text: str) -> list[str]:
        tokens = words(text)
        if self.drop_stopwords:
            tokens = [t for t in tokens if t not in STOPWORDS]
        if self.stem_tokens:
            tokens = [stem(t) for t in tokens]
        return tokens

    def fit(self, texts: list[str]) -> "TfidfVectorizer":
        doc_freq: Counter[str] = Counter()
        for text in texts:
            doc_freq.update(set(self._tokens(text)))
        items = [(t, df) for t, df in doc_freq.items() if df >= self.min_df]
        # Sort by (-df, token) for a deterministic vocabulary.
        items.sort(key=lambda kv: (-kv[1], kv[0]))
        if self.max_features is not None:
            items = items[: self.max_features]
        self.vocabulary_ = {t: i for i, (t, _df) in enumerate(items)}
        n_docs = max(len(texts), 1)
        idf = np.zeros(len(items))
        for token, df in items:
            idf[self.vocabulary_[token]] = math.log((1 + n_docs) / (1 + df)) + 1.0
        self.idf_ = idf
        return self

    def transform(self, texts: list[str]) -> np.ndarray:
        if self.vocabulary_ is None or self.idf_ is None:
            raise NotFittedError("TfidfVectorizer.transform called before fit")
        out = np.zeros((len(texts), len(self.vocabulary_)))
        for i, text in enumerate(texts):
            counts = Counter(self._tokens(text))
            for token, count in counts.items():
                j = self.vocabulary_.get(token)
                if j is not None:
                    out[i, j] = count * self.idf_[j]
            norm = np.linalg.norm(out[i])
            if norm > 0:
                out[i] /= norm
        return out

    def fit_transform(self, texts: list[str]) -> np.ndarray:
        return self.fit(texts).transform(texts)


def cosine_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise cosine similarity between rows of ``a`` and rows of ``b``.

    Inputs need not be normalized; zero rows yield zero similarity.
    """
    a_norm = np.linalg.norm(a, axis=1, keepdims=True)
    b_norm = np.linalg.norm(b, axis=1, keepdims=True)
    a_safe = np.divide(a, a_norm, out=np.zeros_like(a, dtype=float), where=a_norm > 0)
    b_safe = np.divide(b, b_norm, out=np.zeros_like(b, dtype=float), where=b_norm > 0)
    return a_safe @ b_safe.T


class TfidfIndex:
    """A tiny dense retrieval index: fit on documents, query by cosine."""

    def __init__(self, documents: list[str], max_features: int | None = None,
                 drop_stopwords: bool = False, stem_tokens: bool = False):
        self.documents = list(documents)
        self._vectorizer = TfidfVectorizer(
            max_features=max_features, drop_stopwords=drop_stopwords,
            stem_tokens=stem_tokens,
        )
        self._matrix = self._vectorizer.fit_transform(self.documents)

    def search(self, query: str, k: int = 5) -> list[tuple[int, float]]:
        """Return the top-``k`` ``(document index, score)`` pairs for ``query``."""
        if not self.documents:
            return []
        scores = cosine_matrix(self._vectorizer.transform([query]), self._matrix)[0]
        k = min(k, len(self.documents))
        top = np.argsort(-scores, kind="stable")[:k]
        return [(int(i), float(scores[i])) for i in top]
