"""Text processing substrate: tokenization, similarity, TF-IDF, MinHash."""

from repro.text.minhash import LSHIndex, MinHasher
from repro.text.similarity import (
    cosine_token_similarity,
    jaccard_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_similarity,
    monge_elkan_similarity,
    numeric_similarity,
    overlap_coefficient,
)
from repro.text.tfidf import TfidfIndex, TfidfVectorizer, cosine_matrix
from repro.text.tokenize import char_ngrams, qgrams, sentences, words

__all__ = [
    "LSHIndex",
    "MinHasher",
    "TfidfIndex",
    "TfidfVectorizer",
    "char_ngrams",
    "cosine_matrix",
    "cosine_token_similarity",
    "jaccard_similarity",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "levenshtein_distance",
    "levenshtein_similarity",
    "monge_elkan_similarity",
    "numeric_similarity",
    "overlap_coefficient",
    "qgrams",
    "sentences",
    "words",
]
