"""Tokenization primitives shared by the embedding, PLM and matching stacks."""

from __future__ import annotations

import re

_WORD_RE = re.compile(r"[0-9]+(?:\.[0-9]+)?|[a-z]+")

#: Common function words that carry no retrieval signal.  Small by design:
#: only words that appear in virtually every English sentence.
STOPWORDS = frozenset(
    (
        "a an and are as at be by for from has have in is it of on or the "
        "this that to was were what which who with how do does did"
    ).split()
)


def words(text: str) -> list[str]:
    """Lowercased word tokens.

    Punctuation splits tokens, decimal numbers like ``3.5`` stay whole, and
    letter/digit boundaries split (``512gb`` → ``512``, ``gb``) so format
    variants of the same value share tokens — the convention entity-matching
    tokenizers use.
    """
    return _WORD_RE.findall(text.lower())


def qgrams(text: str, q: int = 3, pad: bool = True) -> list[str]:
    """Character q-grams of ``text``; padded with ``#`` so short strings and
    string boundaries still produce grams."""
    if q < 1:
        raise ValueError("q must be >= 1")
    s = text.lower()
    if pad:
        s = "#" * (q - 1) + s + "#" * (q - 1)
    if len(s) < q:
        return [s] if s else []
    return [s[i : i + q] for i in range(len(s) - q + 1)]


def char_ngrams(token: str, n_min: int = 3, n_max: int = 5) -> list[str]:
    """fastText-style subword units: boundary-marked char n-grams plus the
    whole token."""
    marked = f"<{token.lower()}>"
    grams = []
    for n in range(n_min, n_max + 1):
        if len(marked) < n:
            continue
        grams.extend(marked[i : i + n] for i in range(len(marked) - n + 1))
    grams.append(marked)
    return grams


def stem(token: str) -> str:
    """Naive plural stemmer: 'cameras' → 'camera', 'boxes' → 'box'.

    Deliberately minimal — just enough that singular/plural query terms meet
    catalog values in retrieval.  Words ending in 'ss' (glass) are left alone.
    """
    if token.endswith("es") and len(token) > 4 and token[-3] in "sxz":
        return token[:-2]
    if token.endswith("s") and not token.endswith("ss") and len(token) > 3:
        return token[:-1]
    return token


def sentences(text: str) -> list[str]:
    """Split text into sentences on ``.!?`` boundaries (simple heuristic)."""
    parts = re.split(r"(?<=[.!?])\s+", text.strip())
    return [p for p in parts if p]
