"""MinHash signatures and LSH banding.

Used by the blocking layer (LSH blocker) and by the data lake's
joinable-table discovery.  The implementation follows the classic
Broder construction with universal hashing over a Mersenne prime.
"""

from __future__ import annotations

import hashlib
from collections import defaultdict
from typing import Hashable, Iterable

import numpy as np

_PRIME = (1 << 61) - 1


def _stable_hash(item: Hashable) -> int:
    """A hash that is stable across processes (unlike built-in ``hash``)."""
    digest = hashlib.blake2b(repr(item).encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class MinHasher:
    """Generates fixed-length MinHash signatures for token sets."""

    def __init__(self, num_perm: int = 64, seed: int = 7):
        if num_perm < 1:
            raise ValueError("num_perm must be positive")
        rng = np.random.default_rng(seed)
        self.num_perm = num_perm
        self._a = rng.integers(1, _PRIME, size=num_perm, dtype=np.uint64)
        self._b = rng.integers(0, _PRIME, size=num_perm, dtype=np.uint64)

    def signature(self, tokens: Iterable[Hashable]) -> np.ndarray:
        """MinHash signature of a token set; empty sets map to the max value."""
        hashes = np.array(
            [_stable_hash(t) % _PRIME for t in set(tokens)], dtype=np.uint64
        )
        if hashes.size == 0:
            return np.full(self.num_perm, _PRIME, dtype=np.uint64)
        # (a * h + b) mod p for every permutation x token, then min per perm.
        products = (
            self._a[:, None] * hashes[None, :] + self._b[:, None]
        ) % _PRIME
        return products.min(axis=1)

    @staticmethod
    def estimate_jaccard(sig_a: np.ndarray, sig_b: np.ndarray) -> float:
        """Estimate Jaccard similarity from two signatures."""
        if sig_a.shape != sig_b.shape:
            raise ValueError("signatures have different lengths")
        return float(np.mean(sig_a == sig_b))


class LSHIndex:
    """Banded LSH over MinHash signatures.

    Items whose signatures agree on all rows of at least one band become
    candidates for each other.  ``num_perm`` must be divisible by ``bands``.
    """

    def __init__(self, num_perm: int = 64, bands: int = 16, seed: int = 7):
        if num_perm % bands != 0:
            raise ValueError(f"num_perm={num_perm} not divisible by bands={bands}")
        self.hasher = MinHasher(num_perm=num_perm, seed=seed)
        self.bands = bands
        self.rows_per_band = num_perm // bands
        self._buckets: list[dict[bytes, list[Hashable]]] = [
            defaultdict(list) for _ in range(bands)
        ]
        self._signatures: dict[Hashable, np.ndarray] = {}

    def add(self, key: Hashable, tokens: Iterable[Hashable]) -> None:
        """Insert an item under ``key`` with the given token set."""
        sig = self.hasher.signature(tokens)
        self._signatures[key] = sig
        for band, bucket in enumerate(self._buckets):
            lo = band * self.rows_per_band
            chunk = sig[lo : lo + self.rows_per_band].tobytes()
            bucket[chunk].append(key)

    def query(self, tokens: Iterable[Hashable]) -> set[Hashable]:
        """Return keys of all items sharing at least one band with the query."""
        sig = self.hasher.signature(tokens)
        found: set[Hashable] = set()
        for band, bucket in enumerate(self._buckets):
            lo = band * self.rows_per_band
            chunk = sig[lo : lo + self.rows_per_band].tobytes()
            found.update(bucket.get(chunk, ()))
        return found

    def candidate_pairs(self) -> set[tuple[Hashable, Hashable]]:
        """All unordered pairs co-located in at least one bucket."""
        pairs: set[tuple[Hashable, Hashable]] = set()
        for bucket in self._buckets:
            for keys in bucket.values():
                if len(keys) < 2:
                    continue
                for i, a in enumerate(keys):
                    for b in keys[i + 1 :]:
                        pairs.add((a, b) if repr(a) <= repr(b) else (b, a))
        return pairs

    def jaccard(self, key_a: Hashable, key_b: Hashable) -> float:
        """Estimated Jaccard between two previously added items."""
        return MinHasher.estimate_jaccard(
            self._signatures[key_a], self._signatures[key_b]
        )
