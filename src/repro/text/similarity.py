"""String similarity measures.

These are the classical functions the tutorial's "traditional methods"
baselines use (rule-based entity matching, schema matching, blocking keys).
All return a similarity in ``[0, 1]`` where 1 means identical.
"""

from __future__ import annotations

import math
from collections import Counter

from repro.text.tokenize import qgrams, words


def levenshtein_distance(a: str, b: str) -> int:
    """Edit distance with unit costs (two-row dynamic program)."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            current.append(
                min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost)
            )
        previous = current
    return previous[-1]


def levenshtein_similarity(a: str, b: str) -> float:
    """Edit distance normalized by the longer string's length."""
    if not a and not b:
        return 1.0
    return 1.0 - levenshtein_distance(a, b) / max(len(a), len(b))


def jaro_similarity(a: str, b: str) -> float:
    """Jaro similarity (transposition-aware matching-window measure)."""
    if a == b:
        return 1.0
    if not a or not b:
        return 0.0
    window = max(len(a), len(b)) // 2 - 1
    window = max(window, 0)
    a_flags = [False] * len(a)
    b_flags = [False] * len(b)
    matches = 0
    for i, ca in enumerate(a):
        lo = max(0, i - window)
        hi = min(len(b), i + window + 1)
        for j in range(lo, hi):
            if not b_flags[j] and b[j] == ca:
                a_flags[i] = b_flags[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0
    a_matched = [ca for ca, f in zip(a, a_flags) if f]
    b_matched = [cb for cb, f in zip(b, b_flags) if f]
    transpositions = sum(x != y for x, y in zip(a_matched, b_matched)) // 2
    m = matches
    return (m / len(a) + m / len(b) + (m - transpositions) / m) / 3.0


def jaro_winkler_similarity(a: str, b: str, prefix_weight: float = 0.1) -> float:
    """Jaro-Winkler: Jaro boosted by shared prefixes (up to 4 chars)."""
    jaro = jaro_similarity(a, b)
    prefix = 0
    for ca, cb in zip(a[:4], b[:4]):
        if ca != cb:
            break
        prefix += 1
    return jaro + prefix * prefix_weight * (1.0 - jaro)


def jaccard_similarity(a: str, b: str, q: int | None = None) -> float:
    """Jaccard over word tokens, or over q-grams when ``q`` is given."""
    sa = set(qgrams(a, q) if q else words(a))
    sb = set(qgrams(b, q) if q else words(b))
    if not sa and not sb:
        return 1.0
    union = sa | sb
    if not union:
        return 1.0
    return len(sa & sb) / len(union)


def overlap_coefficient(a: str, b: str) -> float:
    """Token overlap normalized by the smaller token set."""
    sa, sb = set(words(a)), set(words(b))
    if not sa or not sb:
        return 1.0 if sa == sb else 0.0
    return len(sa & sb) / min(len(sa), len(sb))


def cosine_token_similarity(a: str, b: str) -> float:
    """Cosine between bag-of-words count vectors."""
    ca, cb = Counter(words(a)), Counter(words(b))
    if not ca and not cb:
        return 1.0
    if not ca or not cb:
        return 0.0
    dot = sum(ca[t] * cb[t] for t in ca.keys() & cb.keys())
    norm = math.sqrt(sum(v * v for v in ca.values())) * math.sqrt(
        sum(v * v for v in cb.values())
    )
    return dot / norm if norm else 0.0


def monge_elkan_similarity(a: str, b: str) -> float:
    """Monge-Elkan: mean over tokens of ``a`` of the best Jaro-Winkler match
    in ``b``.  Asymmetric; good for multi-word names with typos."""
    ta, tb = words(a), words(b)
    if not ta:
        return 1.0 if not tb else 0.0
    if not tb:
        return 0.0
    return sum(max(jaro_winkler_similarity(x, y) for y in tb) for x in ta) / len(ta)


def numeric_similarity(a: float, b: float) -> float:
    """Relative closeness of two numbers: 1 when equal, 0 when one is far
    larger than the other."""
    if a == b:
        return 1.0
    denom = max(abs(a), abs(b))
    if denom == 0:
        return 1.0
    return max(0.0, 1.0 - abs(a - b) / denom)
