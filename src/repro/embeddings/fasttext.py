"""fastText-style subword embeddings (Bojanowski et al., 2017).

A token's vector is the mean of its character-n-gram vectors, so *unseen*
tokens — typo'd product names, new model numbers — still embed near their
clean forms.  This is why DeepBlocker uses fastText for blocking, and the
property our E7 bench relies on.
"""

from __future__ import annotations

import numpy as np

from repro.embeddings.vocab import Vocab
from repro.text.tokenize import char_ngrams, words

_BUCKETS_DEFAULT = 4096


def _bucket(gram: str, num_buckets: int) -> int:
    """FNV-1a hash of a gram into a bucket (stable across processes)."""
    h = 2166136261
    for ch in gram.encode("utf-8"):
        h ^= ch
        h = (h * 16777619) & 0xFFFFFFFF
    return h % num_buckets


class FastTextModel:
    """Subword skip-gram with negative sampling over hashed n-gram buckets."""

    def __init__(self, vocab: Vocab, dim: int = 32, window: int = 3,
                 negatives: int = 5, lr: float = 0.05,
                 num_buckets: int = _BUCKETS_DEFAULT,
                 n_min: int = 3, n_max: int = 5, seed: int = 0):
        self.vocab = vocab
        self.dim = dim
        self.window = window
        self.negatives = negatives
        self.lr = lr
        self.num_buckets = num_buckets
        self.n_min = n_min
        self.n_max = n_max
        rng = np.random.default_rng(seed)
        self.grams = rng.normal(0.0, 0.5 / dim, size=(num_buckets, dim))
        self.out_vectors = np.zeros((len(vocab), dim))
        self._rng = rng
        counts = np.array(
            [vocab.counts[t] for t in vocab.tokens()], dtype=float
        )
        counts[: len(Vocab.SPECIALS)] = 0.0
        powered = counts**0.75
        total = powered.sum()
        self._noise = powered / total if total > 0 else np.ones_like(powered) / len(powered)
        self._gram_cache: dict[str, np.ndarray] = {}

    def _gram_ids(self, token: str) -> np.ndarray:
        cached = self._gram_cache.get(token)
        if cached is None:
            grams = char_ngrams(token, self.n_min, self.n_max)
            cached = np.array(
                [_bucket(g, self.num_buckets) for g in grams], dtype=int
            )
            self._gram_cache[token] = cached
        return cached

    def token_vector(self, token: str) -> np.ndarray:
        """Mean of the token's n-gram bucket vectors (works out-of-vocab)."""
        ids = self._gram_ids(token.lower())
        return self.grams[ids].mean(axis=0)

    def embed_text(self, text: str) -> np.ndarray:
        tokens = words(text)
        if not tokens:
            return np.zeros(self.dim)
        return np.mean([self.token_vector(t) for t in tokens], axis=0)

    def train(self, corpus: list[str], epochs: int = 3) -> float:
        """SGNS where the center word is composed of its n-gram buckets."""
        tokenized = [words(s) for s in corpus]
        last_loss = 0.0
        for _ in range(epochs):
            losses = []
            order = self._rng.permutation(len(tokenized))
            for idx in order:
                sentence = tokenized[idx]
                ids = [self.vocab.id_of(t) for t in sentence]
                for pos, token in enumerate(sentence):
                    lo = max(0, pos - self.window)
                    hi = min(len(sentence), pos + self.window + 1)
                    for ctx_pos in range(lo, hi):
                        if ctx_pos == pos:
                            continue
                        context = ids[ctx_pos]
                        if context == self.vocab.unk_id:
                            continue
                        losses.append(self._step(token, context))
            last_loss = float(np.mean(losses)) if losses else 0.0
        return last_loss

    def _step(self, center_token: str, context: int) -> float:
        gram_ids = self._gram_ids(center_token)
        v_in = self.grams[gram_ids].mean(axis=0)
        negs = self._rng.choice(len(self._noise), size=self.negatives, p=self._noise)
        negs = negs[negs != context]  # collisions cancel the positive signal
        targets = np.concatenate([[context], negs]).astype(int)
        labels = np.zeros(len(targets))
        labels[0] = 1.0
        v_out = self.out_vectors[targets]
        scores = v_out @ v_in
        probs = 1.0 / (1.0 + np.exp(-scores))
        grad_scale = probs - labels
        grad_in = grad_scale @ v_out / len(gram_ids)
        self.out_vectors[targets] -= self.lr * np.outer(grad_scale, v_in)
        np.add.at(self.grams, gram_ids, -self.lr * grad_in)
        eps = 1e-10
        loss = -np.log(probs[0] + eps) - np.log(1.0 - probs[1:] + eps).sum()
        return float(loss)
