"""Skip-gram with negative sampling (word2vec), trained with direct numpy
updates (the closed-form SGNS gradient) rather than the autograd engine —
embedding training is the hot loop of the first-generation-PLM experiments.

The training kernel is **minibatched**: every epoch materializes its
(center, context) pairs, draws all negatives in one call, and then updates
``batch_size`` pairs at a time with one fused batched matmul for the
scores and scatter-adds (``np.add.at``) for the weight updates —
duplicate rows within a batch accumulate, exactly like the pairwise
reference.  :meth:`train_reference` keeps the thin per-pair loop over the
*same* pair/negative streams, so equivalence tests can assert the two
kernels agree to float tolerance and the perf bench can time old-vs-new.
"""

from __future__ import annotations

import numpy as np

from repro.embeddings.vocab import Vocab
from repro.obs import metrics, tracing
from repro.text.tokenize import words


def _sigmoid(x: np.ndarray) -> np.ndarray:
    """Overflow-safe sigmoid, shared by both kernels so the vectorized and
    reference paths stay bit-identical."""
    out = np.empty_like(x, dtype=float)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


class SkipGramModel:
    """First-generation PLM #1: static word embeddings from local context."""

    def __init__(self, vocab: Vocab, dim: int = 32, window: int = 3,
                 negatives: int = 5, lr: float = 0.05, seed: int = 0):
        self.vocab = vocab
        self.dim = dim
        self.window = window
        self.negatives = negatives
        self.lr = lr
        rng = np.random.default_rng(seed)
        v = len(vocab)
        self.in_vectors = rng.normal(0.0, 0.5 / dim, size=(v, dim))
        self.out_vectors = np.zeros((v, dim))
        self._rng = rng
        self._noise = self._noise_distribution()
        self._unit_cache: np.ndarray | None = None

    def _noise_distribution(self) -> np.ndarray:
        """Unigram^0.75 noise distribution over the vocabulary."""
        counts = np.array(
            [self.vocab.counts[t] for t in self.vocab.tokens()], dtype=float
        )
        counts[: len(Vocab.SPECIALS)] = 0.0
        powered = counts**0.75
        total = powered.sum()
        if total == 0:
            powered = np.ones_like(powered)
            total = powered.sum()
        return powered / total

    # -- pair/negative streams (shared by both kernels) ---------------------

    def _sentence_pairs(self, corpus: list[str]) -> list[np.ndarray]:
        """Per-sentence ``(centers, contexts)`` pair arrays, window-expanded.

        Computed once per ``train`` call; epochs only re-permute sentence
        order, matching the historic traversal (center position ascending,
        context position ascending, center skipped at its own position).
        """
        out = []
        for sentence in corpus:
            ids = np.array(
                [self.vocab.id_of(t) for t in words(sentence)], dtype=np.int64
            )
            n = len(ids)
            if n < 2:
                out.append(np.empty((2, 0), dtype=np.int64))
                continue
            centers, contexts = [], []
            for pos in range(n):
                if ids[pos] == self.vocab.unk_id:
                    continue
                lo = max(0, pos - self.window)
                hi = min(n, pos + self.window + 1)
                ctx = np.concatenate([ids[lo:pos], ids[pos + 1 : hi]])
                ctx = ctx[ctx != self.vocab.unk_id]
                centers.append(np.full(len(ctx), ids[pos]))
                contexts.append(ctx)
            if centers:
                out.append(np.stack([np.concatenate(centers),
                                     np.concatenate(contexts)]))
            else:
                out.append(np.empty((2, 0), dtype=np.int64))
        return out

    def _epoch_pairs(self, sentence_pairs: list[np.ndarray]) -> np.ndarray:
        """One epoch's (2, n_pairs) pair stream in permuted sentence order."""
        order = self._rng.permutation(len(sentence_pairs))
        chosen = [sentence_pairs[i] for i in order]
        if not chosen:
            return np.empty((2, 0), dtype=np.int64)
        return np.concatenate(chosen, axis=1)

    def _draw_negatives(self, n_pairs: int) -> np.ndarray:
        """All of one epoch's negatives in a single draw: (n_pairs, K)."""
        return self._rng.choice(
            len(self._noise), size=(n_pairs, self.negatives), p=self._noise
        )

    # -- kernels ------------------------------------------------------------

    def train(self, corpus: list[str], epochs: int = 3,
              batch_size: int = 512) -> float:
        """Train over the corpus; returns the mean loss of the final epoch.

        The vectorized kernel: per batch of pairs, one fused batched matmul
        scores the positive and all negatives together, and the SGNS
        gradient is applied with scatter-adds so duplicate centers/targets
        within a batch accumulate.
        """
        with tracing.span("skipgram.train", sentences=len(corpus),
                          epochs=epochs, batch_size=batch_size) as span:
            sentence_pairs = self._sentence_pairs(corpus)
            last_loss = 0.0
            for _ in range(epochs):
                pairs = self._epoch_pairs(sentence_pairs)
                n = pairs.shape[1]
                if n == 0:
                    last_loss = 0.0
                    continue
                negatives = self._draw_negatives(n)
                total, count = 0.0, 0
                for lo in range(0, n, batch_size):
                    hi = min(lo + batch_size, n)
                    batch_loss = self._step_batch(
                        pairs[0, lo:hi], pairs[1, lo:hi], negatives[lo:hi]
                    )
                    total += batch_loss
                    count += hi - lo
                metrics.counter("skipgram.pairs").inc(n)
                last_loss = total / count if count else 0.0
            span.set(final_loss=last_loss)
        self._unit_cache = None
        return last_loss

    def _step_batch(self, centers: np.ndarray, contexts: np.ndarray,
                    negatives: np.ndarray) -> float:
        """One vectorized SGNS update on a (B,) pair batch; returns the
        summed loss.

        Negative draws that collide with their pair's true context are
        masked out — with the small vocabularies this library trains on,
        the collision rate is high enough to cancel the positive signal
        otherwise.
        """
        targets = np.concatenate([contexts[:, None], negatives], axis=1)
        valid = np.ones(targets.shape)
        valid[:, 1:] = negatives != contexts[:, None]
        labels = np.zeros(targets.shape)
        labels[:, 0] = 1.0
        v_in = self.in_vectors[centers]                    # (B, D)
        v_out = self.out_vectors[targets]                  # (B, 1+K, D)
        # The fused gemm: all (1+K) scores per pair in one batched matmul.
        scores = (v_out @ v_in[:, :, None])[:, :, 0]       # (B, 1+K)
        probs = _sigmoid(scores)
        grad_scale = (probs - labels) * valid              # d(loss)/d(score)
        grad_in = (grad_scale[:, :, None] * v_out).sum(axis=1)   # (B, D)
        grad_out = grad_scale[:, :, None] * v_in[:, None, :]     # (B, 1+K, D)
        np.add.at(self.out_vectors, targets.reshape(-1),
                  -self.lr * grad_out.reshape(-1, self.dim))
        np.add.at(self.in_vectors, centers, -self.lr * grad_in)
        eps = 1e-10
        pos_loss = -np.log(probs[:, 0] + eps)
        neg_loss = -(valid[:, 1:] * np.log(1.0 - probs[:, 1:] + eps)).sum(axis=1)
        return float((pos_loss + neg_loss).sum())

    def train_reference(self, corpus: list[str], epochs: int = 3,
                        batch_size: int = 512) -> float:
        """The thin per-pair reference kernel (equivalence/bench baseline).

        Consumes the identical pair and negative streams as :meth:`train`
        and applies the same batch semantics — gradients computed against
        batch-start weights, scatter-added in pair order — one python-level
        pair at a time.
        """
        sentence_pairs = self._sentence_pairs(corpus)
        last_loss = 0.0
        for _ in range(epochs):
            pairs = self._epoch_pairs(sentence_pairs)
            n = pairs.shape[1]
            if n == 0:
                last_loss = 0.0
                continue
            negatives = self._draw_negatives(n)
            total, count = 0.0, 0
            for lo in range(0, n, batch_size):
                hi = min(lo + batch_size, n)
                in_snap = self.in_vectors.copy()
                out_snap = self.out_vectors.copy()
                for i in range(lo, hi):
                    total += self._step_reference(
                        int(pairs[0, i]), int(pairs[1, i]), negatives[i],
                        in_snap, out_snap,
                    )
                    count += 1
            last_loss = total / count if count else 0.0
        self._unit_cache = None
        return last_loss

    def _step_reference(self, center: int, context: int,
                        negatives: np.ndarray, in_snap: np.ndarray,
                        out_snap: np.ndarray) -> float:
        """One SGNS update: positive pair + masked noise words (reference)."""
        targets = np.concatenate([[context], negatives]).astype(int)
        valid = np.ones(len(targets))
        valid[1:] = targets[1:] != context
        labels = np.zeros(len(targets))
        labels[0] = 1.0
        v_in = in_snap[center]
        v_out = out_snap[targets]
        scores = v_out @ v_in
        probs = _sigmoid(scores)
        grad_scale = (probs - labels) * valid
        grad_in = grad_scale @ v_out
        np.add.at(self.out_vectors, targets,
                  -self.lr * np.outer(grad_scale, v_in))
        self.in_vectors[center] -= self.lr * grad_in
        eps = 1e-10
        loss = -np.log(probs[0] + eps) - (
            valid[1:] * np.log(1.0 - probs[1:] + eps)
        ).sum()
        return float(loss)

    # -- lookup -----------------------------------------------------------

    def vector(self, token: str) -> np.ndarray:
        """Embedding of a token (the ``[unk]`` vector when out-of-vocab)."""
        return self.in_vectors[self.vocab.id_of(token)]

    def embed_text(self, text: str) -> np.ndarray:
        """Mean of in-vocabulary token embeddings (zeros when none)."""
        ids = np.array([self.vocab.id_of(t) for t in words(text)])
        ids = ids[ids != self.vocab.unk_id] if ids.size else ids
        if ids.size == 0:
            return np.zeros(self.dim)
        return self.in_vectors[ids.astype(int)].mean(axis=0)

    def _unit_vectors(self) -> np.ndarray:
        """Row-normalized embedding matrix, cached until the next train."""
        if self._unit_cache is None:
            norms = np.linalg.norm(self.in_vectors, axis=1, keepdims=True)
            self._unit_cache = self.in_vectors / np.maximum(norms, 1e-12)
        return self._unit_cache

    def most_similar(self, token: str, k: int = 5) -> list[tuple[str, float]]:
        """Nearest vocabulary tokens by cosine similarity.

        Works off the cached normalized matrix (:meth:`_unit_vectors`) so
        repeated queries cost one matrix-vector product, not a fresh
        normalization of the whole table.
        """
        unit = self._unit_vectors()
        own = self.vocab.id_of(token)
        query = unit[own]
        sims = unit @ query
        sims[own] = -np.inf
        sims[: len(Vocab.SPECIALS)] = -np.inf
        top = np.argsort(-sims)[:k]
        return [(self.vocab.token_of(int(i)), float(sims[i])) for i in top]
