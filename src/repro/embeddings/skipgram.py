"""Skip-gram with negative sampling (word2vec), trained with direct numpy
updates (the closed-form SGNS gradient) rather than the autograd engine —
embedding training is the hot loop of the first-generation-PLM experiments.
"""

from __future__ import annotations

import numpy as np

from repro.embeddings.vocab import Vocab
from repro.text.tokenize import words


class SkipGramModel:
    """First-generation PLM #1: static word embeddings from local context."""

    def __init__(self, vocab: Vocab, dim: int = 32, window: int = 3,
                 negatives: int = 5, lr: float = 0.05, seed: int = 0):
        self.vocab = vocab
        self.dim = dim
        self.window = window
        self.negatives = negatives
        self.lr = lr
        rng = np.random.default_rng(seed)
        v = len(vocab)
        self.in_vectors = rng.normal(0.0, 0.5 / dim, size=(v, dim))
        self.out_vectors = np.zeros((v, dim))
        self._rng = rng
        self._noise = self._noise_distribution()

    def _noise_distribution(self) -> np.ndarray:
        """Unigram^0.75 noise distribution over the vocabulary."""
        counts = np.array(
            [self.vocab.counts[t] for t in self.vocab.tokens()], dtype=float
        )
        counts[: len(Vocab.SPECIALS)] = 0.0
        powered = counts**0.75
        total = powered.sum()
        if total == 0:
            powered = np.ones_like(powered)
            total = powered.sum()
        return powered / total

    def train(self, corpus: list[str], epochs: int = 3) -> float:
        """Train over the corpus; returns the mean loss of the final epoch."""
        encoded = [
            [self.vocab.id_of(t) for t in words(s)] for s in corpus
        ]
        last_loss = 0.0
        for _ in range(epochs):
            losses = []
            order = self._rng.permutation(len(encoded))
            for idx in order:
                sentence = encoded[idx]
                for pos, center in enumerate(sentence):
                    if center == self.vocab.unk_id:
                        continue
                    lo = max(0, pos - self.window)
                    hi = min(len(sentence), pos + self.window + 1)
                    for ctx_pos in range(lo, hi):
                        if ctx_pos == pos:
                            continue
                        context = sentence[ctx_pos]
                        if context == self.vocab.unk_id:
                            continue
                        losses.append(self._step(center, context))
            last_loss = float(np.mean(losses)) if losses else 0.0
        return last_loss

    def _step(self, center: int, context: int) -> float:
        """One SGNS update: positive pair + ``negatives`` noise words.

        Draws that collide with the true context are dropped — with the
        small vocabularies this library trains on, the collision rate is
        high enough to cancel the positive signal otherwise.
        """
        negs = self._rng.choice(
            len(self._noise), size=self.negatives, p=self._noise
        )
        negs = negs[negs != context]
        v_in = self.in_vectors[center]
        targets = np.concatenate([[context], negs]).astype(int)
        labels = np.zeros(len(targets))
        labels[0] = 1.0
        v_out = self.out_vectors[targets]
        scores = v_out @ v_in
        probs = 1.0 / (1.0 + np.exp(-scores))
        grad_scale = probs - labels  # d(loss)/d(score)
        grad_in = grad_scale @ v_out
        self.out_vectors[targets] -= self.lr * np.outer(grad_scale, v_in)
        self.in_vectors[center] -= self.lr * grad_in
        eps = 1e-10
        loss = -np.log(probs[0] + eps) - np.log(1.0 - probs[1:] + eps).sum()
        return float(loss)

    # -- lookup -----------------------------------------------------------

    def vector(self, token: str) -> np.ndarray:
        """Embedding of a token (the ``[unk]`` vector when out-of-vocab)."""
        return self.in_vectors[self.vocab.id_of(token)]

    def embed_text(self, text: str) -> np.ndarray:
        """Mean of in-vocabulary token embeddings (zeros when none)."""
        ids = [
            self.vocab.id_of(t) for t in words(text)
            if self.vocab.id_of(t) != self.vocab.unk_id
        ]
        if not ids:
            return np.zeros(self.dim)
        return self.in_vectors[ids].mean(axis=0)

    def most_similar(self, token: str, k: int = 5) -> list[tuple[str, float]]:
        """Nearest vocabulary tokens by cosine similarity."""
        query = self.vector(token)
        norms = np.linalg.norm(self.in_vectors, axis=1) * (
            np.linalg.norm(query) + 1e-12
        )
        sims = self.in_vectors @ query / np.maximum(norms, 1e-12)
        own = self.vocab.id_of(token)
        sims[own] = -np.inf
        sims[: len(Vocab.SPECIALS)] = -np.inf
        top = np.argsort(-sims)[:k]
        return [(self.vocab.token_of(int(i)), float(sims[i])) for i in top]
