"""Vocabulary construction shared by the embedding trainers and the PLM."""

from __future__ import annotations

from collections import Counter

from repro.text.tokenize import words


class Vocab:
    """Token ↔ id mapping with reserved special tokens.

    Ids are assigned by descending frequency (ties broken alphabetically) so
    vocabularies are deterministic for a given corpus.
    """

    PAD = "[pad]"
    UNK = "[unk]"
    CLS = "[cls]"
    SEP = "[sep]"
    MASK = "[mask]"
    SPECIALS = (PAD, UNK, CLS, SEP, MASK)

    def __init__(self, corpus: list[str], min_count: int = 1,
                 max_size: int | None = None):
        counts: Counter[str] = Counter()
        for sentence in corpus:
            counts.update(words(sentence))
        items = [(t, c) for t, c in counts.items() if c >= min_count]
        items.sort(key=lambda kv: (-kv[1], kv[0]))
        if max_size is not None:
            items = items[: max(max_size - len(self.SPECIALS), 0)]
        self._tokens = list(self.SPECIALS) + [t for t, _c in items]
        self._ids = {t: i for i, t in enumerate(self._tokens)}
        self.counts = {t: counts.get(t, 0) for t in self._tokens}

    def __len__(self) -> int:
        return len(self._tokens)

    def __contains__(self, token: str) -> bool:
        return token in self._ids

    @property
    def pad_id(self) -> int:
        return self._ids[self.PAD]

    @property
    def unk_id(self) -> int:
        return self._ids[self.UNK]

    @property
    def cls_id(self) -> int:
        return self._ids[self.CLS]

    @property
    def sep_id(self) -> int:
        return self._ids[self.SEP]

    @property
    def mask_id(self) -> int:
        return self._ids[self.MASK]

    def id_of(self, token: str) -> int:
        return self._ids.get(token, self.unk_id)

    def token_of(self, token_id: int) -> str:
        return self._tokens[token_id]

    def encode(self, text: str) -> list[int]:
        """Token ids of ``text`` (unknowns map to ``[unk]``)."""
        return [self.id_of(t) for t in words(text)]

    def decode(self, ids: list[int]) -> str:
        return " ".join(self._tokens[i] for i in ids)

    def tokens(self) -> list[str]:
        return list(self._tokens)
