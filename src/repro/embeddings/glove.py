"""GloVe-style embeddings: weighted factorization of the log co-occurrence
matrix (Pennington et al., 2014), trained by AdaGrad as in the original."""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.embeddings.vocab import Vocab
from repro.text.tokenize import words


class GloVeModel:
    """First-generation PLM #2: global co-occurrence embeddings."""

    def __init__(self, vocab: Vocab, dim: int = 32, window: int = 3,
                 x_max: float = 50.0, alpha: float = 0.75,
                 lr: float = 0.05, seed: int = 0):
        self.vocab = vocab
        self.dim = dim
        self.window = window
        self.x_max = x_max
        self.alpha = alpha
        self.lr = lr
        rng = np.random.default_rng(seed)
        v = len(vocab)
        self.w_main = rng.uniform(-0.5, 0.5, size=(v, dim)) / dim
        self.w_ctx = rng.uniform(-0.5, 0.5, size=(v, dim)) / dim
        self.b_main = np.zeros(v)
        self.b_ctx = np.zeros(v)
        self._rng = rng

    def cooccurrences(self, corpus: list[str]) -> dict[tuple[int, int], float]:
        """Distance-weighted co-occurrence counts within the window."""
        counts: Counter[tuple[int, int]] = Counter()
        for sentence in corpus:
            ids = [self.vocab.id_of(t) for t in words(sentence)]
            for i, center in enumerate(ids):
                if center == self.vocab.unk_id:
                    continue
                hi = min(len(ids), i + self.window + 1)
                for j in range(i + 1, hi):
                    context = ids[j]
                    if context == self.vocab.unk_id:
                        continue
                    weight = 1.0 / (j - i)
                    counts[(center, context)] += weight
                    counts[(context, center)] += weight
        return dict(counts)

    def train(self, corpus: list[str], epochs: int = 15) -> float:
        """AdaGrad on the GloVe objective; returns final epoch mean loss."""
        cooc = self.cooccurrences(corpus)
        if not cooc:
            return 0.0
        pairs = np.array(list(cooc.keys()), dtype=int)
        values = np.array(list(cooc.values()))
        weights = np.minimum((values / self.x_max) ** self.alpha, 1.0)
        logs = np.log(values)

        grad_sq_main = np.ones_like(self.w_main)
        grad_sq_ctx = np.ones_like(self.w_ctx)
        grad_sq_bm = np.ones_like(self.b_main)
        grad_sq_bc = np.ones_like(self.b_ctx)

        last = 0.0
        for _ in range(epochs):
            order = self._rng.permutation(len(pairs))
            total = 0.0
            for idx in order:
                i, j = pairs[idx]
                diff = (
                    self.w_main[i] @ self.w_ctx[j]
                    + self.b_main[i] + self.b_ctx[j] - logs[idx]
                )
                loss_weight = weights[idx]
                total += 0.5 * loss_weight * diff * diff
                grad = loss_weight * diff
                g_main = grad * self.w_ctx[j]
                g_ctx = grad * self.w_main[i]
                self.w_main[i] -= self.lr * g_main / np.sqrt(grad_sq_main[i])
                self.w_ctx[j] -= self.lr * g_ctx / np.sqrt(grad_sq_ctx[j])
                self.b_main[i] -= self.lr * grad / np.sqrt(grad_sq_bm[i])
                self.b_ctx[j] -= self.lr * grad / np.sqrt(grad_sq_bc[j])
                grad_sq_main[i] += g_main**2
                grad_sq_ctx[j] += g_ctx**2
                grad_sq_bm[i] += grad**2
                grad_sq_bc[j] += grad**2
            last = total / len(pairs)
        return float(last)

    def vector(self, token: str) -> np.ndarray:
        """GloVe uses main + context vectors summed as the final embedding."""
        i = self.vocab.id_of(token)
        return self.w_main[i] + self.w_ctx[i]

    def embed_text(self, text: str) -> np.ndarray:
        ids = [
            self.vocab.id_of(t) for t in words(text)
            if self.vocab.id_of(t) != self.vocab.unk_id
        ]
        if not ids:
            return np.zeros(self.dim)
        return (self.w_main[ids] + self.w_ctx[ids]).mean(axis=0)
