"""First-generation PLMs: static word embeddings (skip-gram, GloVe, fastText)."""

from repro.embeddings.fasttext import FastTextModel
from repro.embeddings.glove import GloVeModel
from repro.embeddings.skipgram import SkipGramModel
from repro.embeddings.vocab import Vocab

__all__ = ["FastTextModel", "GloVeModel", "SkipGramModel", "Vocab"]
