"""Experiment harness shared by the benchmark suite."""

from repro.evaluation.results import ResultTable

__all__ = ["ResultTable"]
