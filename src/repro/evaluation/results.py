"""Result tables for experiments: collect rows, print aligned, compare.

Every benchmark in ``benchmarks/`` builds one of these and shows it, so
EXPERIMENTS.md entries and bench output share a format; ``to_dict`` /
``to_json`` are the serialization path :class:`~repro.obs.report.RunReport`
shares.  ``show()`` routes through the ``repro.results`` logger rather than
bare ``print``, so applications can silence or redirect table output with
ordinary logging configuration.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any


@dataclass
class ResultTable:
    """A named table of experiment results."""

    title: str
    columns: list[str]
    rows: list[list[Any]] = field(default_factory=list)

    def add(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values; table has {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def column(self, name: str) -> list[Any]:
        i = self.columns.index(name)
        return [row[i] for row in self.rows]

    def row_dict(self, i: int) -> dict[str, Any]:
        return dict(zip(self.columns, self.rows[i]))

    def render(self) -> str:
        def fmt(value: Any) -> str:
            if isinstance(value, float):
                return f"{value:.3f}"
            return str(value)

        shown = [[fmt(v) for v in row] for row in self.rows]
        widths = [len(c) for c in self.columns]
        for row in shown:
            widths = [max(w, len(v)) for w, v in zip(widths, row)]
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        sep = "-+-".join("-" * w for w in widths)
        body = "\n".join(
            " | ".join(v.ljust(w) for v, w in zip(row, widths)) for row in shown
        )
        return f"== {self.title} ==\n{header}\n{sep}\n{body}"

    def markdown(self) -> str:
        def fmt(value: Any) -> str:
            if isinstance(value, float):
                return f"{value:.3f}"
            return str(value)

        header = "| " + " | ".join(self.columns) + " |"
        sep = "|" + "|".join("---" for _ in self.columns) + "|"
        body = "\n".join(
            "| " + " | ".join(fmt(v) for v in row) + " |" for row in self.rows
        )
        return f"{header}\n{sep}\n{body}"

    def to_dict(self) -> dict[str, Any]:
        return {"title": self.title, "columns": list(self.columns),
                "rows": [list(row) for row in self.rows]}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ResultTable":
        return cls(
            title=data["title"],
            columns=list(data["columns"]),
            rows=[list(row) for row in data.get("rows", [])],
        )

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ResultTable":
        return cls.from_dict(json.loads(text))

    def show(self) -> None:
        # Routed through the obs logging hierarchy (lazily, to keep this
        # module importable before repro.obs finishes initializing).
        from repro.obs.logging import results_logger

        results_logger().info(self.render())
