"""Degradation events: the audit trail of every graceful failure.

Whenever the library absorbs a failure instead of raising — a pipeline
operator skipped, a fallback tier served a request, an evaluator cached a
crash, a Symphony sub-query answered "unknown" — it records a
:class:`DegradationEvent` into the process-global :class:`DegradationLog`.
:meth:`repro.obs.RunReport.collect` snapshots the log, so a run report
answers not just "how fast" but "what quietly went wrong".
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

from repro.obs import metrics

#: Cap on retained events; beyond it the log only counts drops.  A chaos run
#: at high fault rates must not turn the report into the bottleneck.
MAX_EVENTS = 10_000


@dataclass
class DegradationEvent:
    """One absorbed failure: where, what failed, and what served instead."""

    component: str            # "pipeline", "symphony", "fallback.fm.complete", ...
    point: str                # operator / sub-query / injection-point name
    action: str               # "skipped", "identity", "served:rule", "cached_failure"
    error: str = ""           # stringified cause, "" when none
    detail: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "component": self.component,
            "point": self.point,
            "action": self.action,
            "error": self.error,
        }
        if self.detail:
            out["detail"] = dict(self.detail)
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "DegradationEvent":
        return cls(
            component=data["component"],
            point=data.get("point", ""),
            action=data.get("action", ""),
            error=data.get("error", ""),
            detail=dict(data.get("detail", {})),
        )

    def render(self) -> str:
        text = f"{self.component}/{self.point}: {self.action}"
        return f"{text} ({self.error})" if self.error else text


class DegradationLog:
    """Thread-safe, bounded event list (one per process; see :func:`get_log`)."""

    def __init__(self, max_events: int = MAX_EVENTS):
        self._lock = threading.Lock()
        self._events: list[DegradationEvent] = []
        self.max_events = max_events
        self.dropped = 0

    def record(self, event: DegradationEvent) -> DegradationEvent:
        with self._lock:
            if len(self._events) < self.max_events:
                self._events.append(event)
            else:
                self.dropped += 1
        metrics.counter("resilience.degradations").inc()
        metrics.counter(f"resilience.degradations.{event.component}").inc()
        return event

    def events(self) -> list[DegradationEvent]:
        with self._lock:
            return list(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def reset(self) -> None:
        with self._lock:
            self._events.clear()
            self.dropped = 0


_LOG = DegradationLog()


def get_log() -> DegradationLog:
    """The process-global log every graceful-degradation site records into."""
    return _LOG


def record(component: str, point: str, action: str, error: str = "",
           **detail: Any) -> DegradationEvent:
    """Record one event into the global log (the instrumented-code helper)."""
    return _LOG.record(
        DegradationEvent(component=component, point=point, action=action,
                         error=error, detail=detail)
    )
