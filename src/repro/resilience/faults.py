"""Deterministic fault injection: the chaos harness.

Library hot paths declare *named injection points*::

    from repro.resilience import faults

    faults.point("fm.complete")         # may raise / delay, per config
    text = faults.corrupt("fm.complete", text)   # may mangle, per config

A disarmed injector (the default) makes both calls near-free no-ops.  Armed
— programmatically via :meth:`FaultInjector.configure` or process-wide via
environment knobs — each ``point()`` draws from one seeded RNG and, at the
configured rate, raises :class:`~repro.errors.FaultInjectionError` (mode
``raise``), sleeps through the injectable clock (mode ``delay``), or marks
the point so :func:`corrupt` mangles the value (mode ``corrupt``).  The
same seed and call sequence reproduce the same faults, so chaos runs are
debuggable.

Environment knobs (read once, on first :func:`get_injector`):

- ``REPRO_CHAOS_SEED``  — arm process-wide with this RNG seed;
- ``REPRO_CHAOS_RATE``  — per-point injection probability (default 0.05);
- ``REPRO_CHAOS_POINTS``— comma list of points to target (default: all);
- ``REPRO_CHAOS_MODE``  — ``raise`` (default) / ``delay`` / ``corrupt``;
- ``REPRO_CHAOS_DELAY`` — injected latency seconds for mode ``delay``.
"""

from __future__ import annotations

import os
import random
import threading
from dataclasses import dataclass
from typing import Any

from repro.errors import FaultInjectionError
from repro.obs import metrics
from repro.resilience.clock import Clock, get_clock

MODES = ("raise", "delay", "corrupt")


@dataclass
class FaultRule:
    """Per-point injection config: how often and what kind of fault."""

    rate: float = 0.0
    mode: str = "raise"
    delay: float = 0.01

    def __post_init__(self):
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.mode not in MODES:
            raise ValueError(f"fault mode must be one of {MODES}, got {self.mode!r}")


class FaultInjector:
    """Seeded, process-wide fault source for named injection points."""

    def __init__(self, seed: int = 0, clock: Clock | None = None):
        self.seed = seed
        self._rng = random.Random(seed)
        self._clock = clock or get_clock()
        self._lock = threading.Lock()
        self._rules: dict[str, FaultRule] = {}
        self._default: FaultRule | None = None
        self.armed = False
        #: point → number of faults injected (all modes), for recovery math.
        self.injected: dict[str, int] = {}
        #: points whose *current* call drew a corrupt-mode fault.
        self._corrupt_pending: set[str] = set()

    # -- configuration ------------------------------------------------------

    def configure(self, point: str | None = None, rate: float = 0.1,
                  mode: str = "raise", delay: float = 0.01) -> "FaultInjector":
        """Target one point (or, with ``point=None``, every point) and arm."""
        rule = FaultRule(rate=rate, mode=mode, delay=delay)
        with self._lock:
            if point is None:
                self._default = rule
            else:
                self._rules[point] = rule
            self.armed = True
        return self

    def disarm(self) -> None:
        with self._lock:
            self.armed = False
            self._rules.clear()
            self._default = None
            self._corrupt_pending.clear()

    def _rule_for(self, point: str) -> FaultRule | None:
        return self._rules.get(point, self._default)

    # -- injection ----------------------------------------------------------

    def point(self, name: str) -> None:
        """Maybe inject at ``name``: raise, delay, or mark for corruption."""
        if not self.armed:
            return
        rule = self._rule_for(name)
        if rule is None or rule.rate <= 0.0:
            return
        metrics.counter(f"faults.{name}.checked").inc()
        with self._lock:
            fire = self._rng.random() < rule.rate
        self._corrupt_pending.discard(name)
        if not fire:
            return
        self.injected[name] = self.injected.get(name, 0) + 1
        metrics.counter(f"faults.{name}.injected").inc()
        if rule.mode == "raise":
            raise FaultInjectionError(f"injected fault at {name}")
        if rule.mode == "delay":
            self._clock.sleep(rule.delay)
        else:  # corrupt: the next corrupt(name, value) call mangles
            self._corrupt_pending.add(name)

    def corrupt(self, name: str, value: Any) -> Any:
        """Mangle ``value`` iff ``point(name)`` drew a corrupt-mode fault."""
        if not self.armed or name not in self._corrupt_pending:
            return value
        self._corrupt_pending.discard(name)
        metrics.counter(f"faults.{name}.corrupted").inc()
        if isinstance(value, str):
            return value[::-1] if value else "☠"
        if isinstance(value, (int, float)):
            return -value if value else 1
        return None


_LOCK = threading.Lock()
_INJECTOR: FaultInjector | None = None


def _from_env() -> FaultInjector:
    """Build the initial global injector, armed iff REPRO_CHAOS_SEED is set."""
    seed_text = os.environ.get("REPRO_CHAOS_SEED", "")
    injector = FaultInjector(seed=int(seed_text) if seed_text else 0)
    if not seed_text:
        return injector
    rate = float(os.environ.get("REPRO_CHAOS_RATE", "0.05"))
    mode = os.environ.get("REPRO_CHAOS_MODE", "raise")
    delay = float(os.environ.get("REPRO_CHAOS_DELAY", "0.01"))
    points = [p.strip() for p in
              os.environ.get("REPRO_CHAOS_POINTS", "").split(",") if p.strip()]
    if points:
        for point_name in points:
            injector.configure(point_name, rate=rate, mode=mode, delay=delay)
    else:
        injector.configure(None, rate=rate, mode=mode, delay=delay)
    return injector


def get_injector() -> FaultInjector:
    """The process-global injector (built from the environment on first use)."""
    global _INJECTOR
    if _INJECTOR is None:
        with _LOCK:
            if _INJECTOR is None:
                _INJECTOR = _from_env()
    return _INJECTOR


def set_injector(injector: FaultInjector) -> FaultInjector:
    """Swap the global injector; returns the previous one for restoration."""
    global _INJECTOR
    with _LOCK:
        previous = _INJECTOR if _INJECTOR is not None else FaultInjector()
        _INJECTOR = injector
    return previous


def point(name: str) -> None:
    """Module-level alias: ``faults.point("fm.complete")`` at call sites."""
    get_injector().point(name)


def corrupt(name: str, value: Any) -> Any:
    """Module-level alias for :meth:`FaultInjector.corrupt`."""
    return get_injector().corrupt(name, value)
