"""Retry, deadline and circuit-breaker policies.

All three are deterministic and clock-injected:

- :class:`RetryPolicy` — exponential backoff whose jitter is a hash of
  (seed, call name, attempt), so two runs retry on an identical schedule;
- :class:`Deadline` — a monotonic time budget shared across attempts;
- :class:`CircuitBreaker` — closed / open / half-open over a sliding
  outcome window, state exposed as a gauge.

Sleeps go through :mod:`repro.resilience.clock`, so tests drive them with a
:class:`~repro.resilience.clock.FakeClock` and never wall-sleep.
"""

from __future__ import annotations

import hashlib
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, TypeVar

from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    RetryExhaustedError,
    TransientError,
)
from repro.obs import metrics
from repro.resilience.clock import Clock, get_clock

T = TypeVar("T")


def is_transient(exc: BaseException | None) -> bool:
    """True when ``exc`` or anything in its ``__cause__``/``__context__``
    chain is a :class:`TransientError` — the retryability test."""
    seen: set[int] = set()
    while exc is not None and id(exc) not in seen:
        if isinstance(exc, TransientError):
            return True
        seen.add(id(exc))
        exc = exc.__cause__ or exc.__context__
    return False


class Deadline:
    """A monotonic time budget: ``Deadline(2.0)`` expires two seconds on."""

    def __init__(self, seconds: float, clock: Clock | None = None):
        self.seconds = float(seconds)
        self._clock = clock or get_clock()
        self._expires = self._clock.monotonic() + self.seconds

    def remaining(self) -> float:
        return max(0.0, self._expires - self._clock.monotonic())

    @property
    def expired(self) -> bool:
        return self._clock.monotonic() >= self._expires

    def check(self, what: str = "operation") -> None:
        """Raise :class:`DeadlineExceededError` once the budget is spent."""
        if self.expired:
            metrics.counter("resilience.deadline.exceeded").inc()
            raise DeadlineExceededError(
                f"{what} exceeded its {self.seconds:g}s deadline"
            )


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter.

    ``delay(attempt, token)`` is a pure function: the jitter comes from a
    blake2b hash of ``(seed, token, attempt)``, not a live RNG, so retry
    schedules reproduce bit-for-bit across processes.  Only exceptions in
    ``retry_on`` (or whose cause chain is transient, see
    :func:`is_transient`) are retried; everything else propagates on first
    failure.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.5          # fraction of each delay that is randomized
    seed: int = 0
    retry_on: tuple[type[BaseException], ...] = (TransientError,)

    def delay(self, attempt: int, token: str = "") -> float:
        """Backoff before retry number ``attempt`` (0-based), jittered."""
        base = min(self.base_delay * self.multiplier ** attempt, self.max_delay)
        if self.jitter <= 0.0:
            return base
        digest = hashlib.blake2b(
            f"{self.seed}:{token}:{attempt}".encode(), digest_size=4
        ).digest()
        unit = int.from_bytes(digest, "big") / 2**32       # [0, 1)
        return base * (1.0 - self.jitter * unit)           # (base*(1-j), base]

    def delays(self, token: str = "") -> Iterator[float]:
        """The full backoff schedule (``max_attempts - 1`` sleeps)."""
        for attempt in range(self.max_attempts - 1):
            yield self.delay(attempt, token)

    def _retryable(self, exc: BaseException) -> bool:
        return isinstance(exc, self.retry_on) or is_transient(exc)

    def call(self, fn: Callable[[], T], name: str = "call",
             clock: Clock | None = None,
             deadline: Deadline | None = None) -> T:
        """Run ``fn``, sleeping between retryable failures.

        Raises :class:`RetryExhaustedError` (cause = the last failure) when
        every attempt fails, and re-raises non-retryable failures as-is.
        """
        clock = clock or get_clock()
        for attempt in range(self.max_attempts):
            try:
                result = fn()
            except Exception as exc:  # noqa: BLE001 - classify then rethrow
                if not self._retryable(exc):
                    raise
                if deadline is not None and deadline.expired:
                    deadline.check(name)
                if attempt + 1 >= self.max_attempts:
                    metrics.counter(f"resilience.retry.{name}.exhausted").inc()
                    raise RetryExhaustedError(
                        f"{name}: all {self.max_attempts} attempts failed "
                        f"(last: {exc})"
                    ) from exc
                metrics.counter(f"resilience.retry.{name}.retries").inc()
                pause = self.delay(attempt, token=name)
                if deadline is not None:
                    pause = min(pause, deadline.remaining())
                clock.sleep(pause)
            else:
                if attempt:
                    metrics.counter(f"resilience.retry.{name}.recovered").inc()
                return result
        raise AssertionError("unreachable")  # pragma: no cover


class CircuitBreaker:
    """Closed / open / half-open breaker over a sliding outcome window.

    Closed: calls flow; once the window holds ``min_calls`` outcomes and the
    failure rate reaches ``failure_rate``, the breaker opens.  Open: calls
    are rejected with :class:`CircuitOpenError` until ``recovery_time``
    elapses on the injected clock.  Half-open: up to ``half_open_trials``
    probe calls are admitted — all succeeding closes the breaker, any
    failure re-opens it.

    State is exported as the gauge ``resilience.breaker.<name>.state``
    (0 closed, 1 open, 2 half-open); opens/closes/rejections as counters.
    """

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"
    _STATE_VALUE = {CLOSED: 0, OPEN: 1, HALF_OPEN: 2}

    def __init__(self, name: str, failure_rate: float = 0.5,
                 window: int = 20, min_calls: int = 5,
                 recovery_time: float = 30.0, half_open_trials: int = 2,
                 clock: Clock | None = None):
        self.name = name
        self.failure_rate = failure_rate
        self.window: deque[bool] = deque(maxlen=window)  # True = failure
        self.min_calls = min_calls
        self.recovery_time = recovery_time
        self.half_open_trials = half_open_trials
        self._clock = clock or get_clock()
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self._probe_failures = 0
        self._set_state_gauge()

    # -- state machine ------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _set_state_gauge(self) -> None:
        metrics.gauge(f"resilience.breaker.{self.name}.state").set(
            self._STATE_VALUE[self._state]
        )

    def _transition(self, state: str) -> None:
        if state == self._state:
            return
        self._state = state
        if state == self.OPEN:
            self._opened_at = self._clock.monotonic()
            metrics.counter(f"resilience.breaker.{self.name}.opened").inc()
        elif state == self.CLOSED:
            self.window.clear()
            metrics.counter(f"resilience.breaker.{self.name}.closed").inc()
        self._probes_in_flight = 0
        self._probe_failures = 0
        self._set_state_gauge()

    def _maybe_half_open(self) -> None:
        if (self._state == self.OPEN
                and self._clock.monotonic() - self._opened_at
                >= self.recovery_time):
            self._transition(self.HALF_OPEN)

    def _current_failure_rate(self) -> float:
        if not self.window:
            return 0.0
        return sum(self.window) / len(self.window)

    # -- public API ---------------------------------------------------------

    def allow(self) -> bool:
        """May a call proceed right now?  (Admits half-open probes.)"""
        with self._lock:
            self._maybe_half_open()
            if self._state == self.CLOSED:
                return True
            if self._state == self.HALF_OPEN:
                if self._probes_in_flight < self.half_open_trials:
                    self._probes_in_flight += 1
                    return True
                return False
            metrics.counter(f"resilience.breaker.{self.name}.rejected").inc()
            return False

    def record_success(self) -> None:
        with self._lock:
            if self._state == self.HALF_OPEN:
                if (self._probes_in_flight >= self.half_open_trials
                        and self._probe_failures == 0):
                    self._transition(self.CLOSED)
                return
            self.window.append(False)

    def record_failure(self) -> None:
        with self._lock:
            if self._state == self.HALF_OPEN:
                self._probe_failures += 1
                self._transition(self.OPEN)
                return
            self.window.append(True)
            if (self._state == self.CLOSED
                    and len(self.window) >= self.min_calls
                    and self._current_failure_rate() >= self.failure_rate):
                self._transition(self.OPEN)

    def call(self, fn: Callable[[], T]) -> T:
        """Run ``fn`` through the breaker, recording the outcome."""
        if not self.allow():
            raise CircuitOpenError(f"circuit {self.name!r} is {self._state}")
        try:
            result = fn()
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result
