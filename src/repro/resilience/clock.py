"""Injectable clocks: the one place ``repro`` is allowed to sleep.

Every retry delay, deadline check, circuit-breaker cooldown and injected
latency goes through a :class:`Clock`, so tests swap in a :class:`FakeClock`
and assert exact backoff schedules without ever wall-sleeping.  CI enforces
this: a lint rejects ``time.sleep(`` anywhere under ``src/repro`` except
this module.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator


class Clock:
    """Monotonic time plus sleep — the full surface resilience code needs."""

    def monotonic(self) -> float:
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        raise NotImplementedError


class SystemClock(Clock):
    """The real wall clock (the process-wide default)."""

    def monotonic(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class FakeClock(Clock):
    """A manually-advanced clock that records every requested sleep.

    ``sleep`` advances virtual time instantly, so retry/backoff tests assert
    the exact delay sequence (``clock.sleeps``) with zero wall time.
    """

    def __init__(self, start: float = 0.0):
        self.now = float(start)
        self.sleeps: list[float] = []

    def monotonic(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(float(seconds))
        self.now += max(0.0, float(seconds))

    def advance(self, seconds: float) -> None:
        """Move time forward without registering a sleep."""
        self.now += float(seconds)


_LOCK = threading.Lock()
_CLOCK: Clock = SystemClock()


def get_clock() -> Clock:
    """The process-global clock resilience primitives default to."""
    return _CLOCK


def set_clock(clock: Clock) -> Clock:
    """Replace the global clock; returns the previous one for restoration."""
    global _CLOCK
    with _LOCK:
        previous, _CLOCK = _CLOCK, clock
    return previous


@contextmanager
def use_clock(clock: Clock) -> Iterator[Clock]:
    """Temporarily install ``clock`` as the global clock (test scoping)."""
    previous = set_clock(clock)
    try:
        yield clock
    finally:
        set_clock(previous)
