"""Fallback chains: ordered degradation tiers for one capability.

A :class:`FallbackChain` holds ``(tier name, callable)`` pairs, best tier
first — e.g. foundation model → PLM → rule-based for an answer-this-prompt
capability.  ``serve(*args)`` walks the tiers, returns the first success
together with the tier name that produced it, counts which tier served
(``fallback.<chain>.tier.<tier>``), and records a
:class:`~repro.resilience.degradation.DegradationEvent` whenever anything
below tier 0 answers.  Exhausting every tier raises
:class:`~repro.errors.FallbackExhaustedError` with the last failure as its
cause.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.errors import FallbackExhaustedError, ReproError
from repro.obs import metrics
from repro.resilience import degradation


class FallbackChain:
    """Ordered degradation tiers; first tier that succeeds serves."""

    def __init__(self, name: str,
                 tiers: Sequence[tuple[str, Callable[..., Any]]],
                 catch: tuple[type[BaseException], ...] = (ReproError,)):
        if not tiers:
            raise ValueError(f"fallback chain {name!r} needs at least one tier")
        self.name = name
        self.tiers = list(tiers)
        self.catch = catch
        #: tier name → requests served (this chain instance's lifetime).
        self.served: dict[str, int] = {t: 0 for t, _fn in self.tiers}

    def tier_names(self) -> list[str]:
        return [t for t, _fn in self.tiers]

    def serve(self, *args: Any, **kwargs: Any) -> tuple[Any, str]:
        """(result, serving tier name); degradations recorded en route."""
        last: BaseException | None = None
        for rank, (tier, fn) in enumerate(self.tiers):
            try:
                result = fn(*args, **kwargs)
            except self.catch as exc:
                last = exc
                metrics.counter(f"fallback.{self.name}.tier.{tier}.failures").inc()
                continue
            self.served[tier] = self.served.get(tier, 0) + 1
            metrics.counter(f"fallback.{self.name}.tier.{tier}").inc()
            if rank:
                degradation.record(
                    component=f"fallback.{self.name}", point=tier,
                    action=f"served:{tier}",
                    error=str(last) if last else "",
                )
            return result, tier
        raise FallbackExhaustedError(
            f"fallback chain {self.name!r}: all {len(self.tiers)} tiers failed "
            f"(last: {last})"
        ) from last

    def call(self, *args: Any, **kwargs: Any) -> Any:
        """``serve`` without the tier name, for drop-in call sites."""
        result, _tier = self.serve(*args, **kwargs)
        return result

    def tier_counts(self) -> dict[str, int]:
        """Requests served per tier, zero-filled for never-used tiers."""
        return dict(self.served)
