"""repro.resilience: deterministic fault injection, retry/backoff policies,
fallback chains and graceful degradation.

PR 1 (``repro.obs``) gave the stack eyes; this package is its spine — the
layer every error routes through so one flaky completion, crashing operator
or bad sub-query degrades a result instead of killing a run.  Five pieces,
each usable alone and all instrumented through :mod:`repro.obs`:

- **clock** — injectable :class:`Clock` / :class:`FakeClock`; the only
  sanctioned way to sleep under ``src/repro`` (CI-enforced);
- **policies** — :class:`RetryPolicy` (exponential backoff, deterministic
  jitter), :class:`Deadline`, :class:`CircuitBreaker` (closed/open/half-open,
  state exported as a gauge);
- **faults** — seeded :class:`FaultInjector` with named injection points
  (``faults.point("fm.complete")``), armable process-wide via
  ``REPRO_CHAOS_SEED`` / ``REPRO_CHAOS_RATE`` / ``REPRO_CHAOS_POINTS`` /
  ``REPRO_CHAOS_MODE``;
- **fallback** — :class:`FallbackChain` degradation tiers (FM → PLM → rules),
  recording which tier served each request;
- **degradation** — the process-global :class:`DegradationLog` of absorbed
  failures, snapshotted into every :class:`~repro.obs.RunReport`.

Quickstart::

    from repro import resilience
    from repro.resilience import FakeClock, RetryPolicy

    clock = FakeClock()
    policy = RetryPolicy(max_attempts=4, base_delay=0.1, seed=7)
    policy.call(flaky_fn, name="my.op", clock=clock)   # no wall sleeps
    assert clock.sleeps == list(policy.delays("my.op"))[:len(clock.sleeps)]

See docs/resilience.md for injection-point names, chaos knobs and the
degradation semantics of each integrated subsystem.
"""

from repro.resilience import degradation, faults
from repro.resilience.clock import (
    Clock,
    FakeClock,
    SystemClock,
    get_clock,
    set_clock,
    use_clock,
)
from repro.resilience.degradation import DegradationEvent, DegradationLog, get_log
from repro.resilience.fallback import FallbackChain
from repro.resilience.faults import FaultInjector, FaultRule, get_injector, set_injector
from repro.resilience.policies import (
    CircuitBreaker,
    Deadline,
    RetryPolicy,
    is_transient,
)


def reset() -> None:
    """Clear the global degradation log (per-test/run isolation).

    The injector and clock are configuration, not run state, so they
    survive — pair with :func:`repro.obs.reset` at run boundaries.
    """
    get_log().reset()


__all__ = [
    "CircuitBreaker",
    "Clock",
    "Deadline",
    "DegradationEvent",
    "DegradationLog",
    "FakeClock",
    "FallbackChain",
    "FaultInjector",
    "FaultRule",
    "RetryPolicy",
    "SystemClock",
    "degradation",
    "faults",
    "get_clock",
    "get_injector",
    "get_log",
    "is_transient",
    "reset",
    "set_clock",
    "set_injector",
    "use_clock",
]
