"""repro.par: the parallel execution layer.

Two pieces, both deterministic by construction:

- :class:`ParallelMap` — a picklable, chunked, ordered map with a
  ``workers=0`` serial mode, per-chunk observability, and a
  resilience-aware error policy (``RetryPolicy`` for transient faults,
  ``DegradationLog`` + fallback values under ``on_error="degrade"``);
- :class:`WorkerPool` — the single sanctioned ``threading.Thread`` site
  under ``src/repro`` (CI-enforced), shared with the serving runtime via
  :mod:`repro.serving.pool`.

Quickstart::

    from repro.par import ParallelMap

    pmap = ParallelMap(workers=4, chunk_size=8)
    squares = pmap.map(lambda x: x * x, range(100))   # input order, always
    assert squares == ParallelMap(workers=0).map(lambda x: x * x, range(100))

See docs/performance.md for the kernel inventory that fans out through
this layer and the perf-regression bench that guards it.
"""

from repro.par.parallel import DEFAULT_CHUNK_SIZE, ON_ERROR_MODES, ParallelMap
from repro.par.pool import WorkerPool

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "ON_ERROR_MODES",
    "ParallelMap",
    "WorkerPool",
]
