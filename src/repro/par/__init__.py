"""repro.par: the parallel execution layer.

One contract, two backends, both deterministic by construction:

- :class:`BaseMap` — the shared map semantics: picklable configuration,
  chunked ordered results, a ``workers=0`` serial mode, per-chunk
  observability, and a resilience-aware error policy (``RetryPolicy`` for
  transient faults, ``DegradationLog`` + fallback values under
  ``on_error="degrade"``);
- :class:`ParallelMap` — the thread-backed dispatch, for I/O-bound or
  GIL-releasing work;
- :class:`ProcessMap` / :class:`ProcessPool` — the fork-backed dispatch
  for GIL-bound python (pipeline evaluation, shard kernels), with
  worker-loss detection and cross-process span re-parenting;
- :class:`WorkerPool` — the single sanctioned ``threading.Thread`` site
  under ``src/repro`` (CI-enforced), shared with the serving runtime via
  :mod:`repro.serving.pool`; :mod:`repro.par.procpool` is likewise the
  single sanctioned ``multiprocessing`` site.

Quickstart::

    from repro.par import ParallelMap, ProcessMap

    pmap = ParallelMap(workers=4, chunk_size=8)
    squares = pmap.map(lambda x: x * x, range(100))   # input order, always
    assert squares == ParallelMap(workers=0).map(lambda x: x * x, range(100))

    procs = ProcessMap()        # sizes itself to the machine's CPUs
    assert procs.map(lambda x: x * x, range(100)) == squares

See docs/performance.md for the kernel inventory that fans out through
this layer, the thread/process crossover guidance, and the
perf-regression bench that guards it.
"""

from repro.par.base import DEFAULT_CHUNK_SIZE, ON_ERROR_MODES, BaseMap
from repro.par.parallel import ParallelMap
from repro.par.pool import WorkerPool
from repro.par.procpool import (
    ProcessMap,
    ProcessPool,
    available_cpus,
    default_process_workers,
)

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "ON_ERROR_MODES",
    "BaseMap",
    "ParallelMap",
    "ProcessMap",
    "ProcessPool",
    "WorkerPool",
    "available_cpus",
    "default_process_workers",
]
