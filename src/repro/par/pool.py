"""The worker pool: the only module under ``src/repro`` allowed to spawn
threads (CI-enforced — the lint rejects ``threading.Thread(`` anywhere else
in the library).

Both consumers of parallelism in the library build on this one class, so
thread lifecycles have a single owner:

- :class:`repro.serving.Server` drains its micro-batch schedulers with a
  pool (``repro.serving.pool`` re-exports :class:`WorkerPool` from here);
- :class:`repro.par.ParallelMap` fans offline chunk work out over a
  short-lived pool per ``map()`` call.

A :class:`WorkerPool` runs ``num_workers`` daemon threads, each looping on a
caller-supplied ``fetch`` callable.  ``fetch`` blocks until work is
available and returns a zero-argument callable to execute, or ``None`` to
tell the worker to exit — all waiting strategy (condition variables, batch
windows) lives with the caller, so the pool itself contains no policy and
no sleeps.

A work item that raises is counted and logged, never propagated: a worker
thread must not die to a bad batch.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from repro.obs import get_logger, metrics

log = get_logger("par.pool")


class WorkerPool:
    """Fixed-size pool of daemon workers draining a blocking ``fetch``."""

    def __init__(self, name: str, num_workers: int,
                 fetch: Callable[[], Optional[Callable[[], None]]],
                 metric_prefix: str = "serving.pool"):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.name = name
        self.num_workers = num_workers
        self._fetch = fetch
        self._prefix = metric_prefix
        self._threads: list[threading.Thread] = []
        self._started = False

    @property
    def running(self) -> int:
        return sum(1 for t in self._threads if t.is_alive())

    def start(self) -> "WorkerPool":
        if self._started:
            return self
        self._started = True
        for i in range(self.num_workers):
            thread = threading.Thread(
                target=self._run, name=f"repro-{self.name}-{i}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()
        metrics.gauge(f"{self._prefix}.{self.name}.workers").set(self.running)
        return self

    def _run(self) -> None:
        while True:
            work = self._fetch()
            if work is None:
                break
            try:
                work()
                metrics.counter(f"{self._prefix}.{self.name}.tasks").inc()
            except Exception:  # noqa: BLE001 - workers must survive bad work
                metrics.counter(f"{self._prefix}.{self.name}.task_errors").inc()
                log.exception("worker task failed in pool %r", self.name)

    def join(self, timeout: float | None = 5.0) -> None:
        """Wait for workers to exit (after ``fetch`` has returned ``None``
        to each of them — the caller signals that, typically via a closed
        flag plus a condition broadcast, or by exhausting a finite work
        list as :class:`repro.par.ParallelMap` does)."""
        for thread in self._threads:
            thread.join(timeout)
        metrics.gauge(f"{self._prefix}.{self.name}.workers").set(self.running)
