"""``ParallelMap``: deterministic chunked fan-out over a thread pool.

The library's thread-backed parallelism primitive.  The whole execution
contract — input-order results, the ``workers=0`` serial mode, retry,
``on_error="raise"``/``"degrade"`` semantics, chunk spans and counters —
lives in :class:`repro.par.base.BaseMap`, shared with the process-backed
:class:`~repro.par.ProcessMap` so the two backends cannot drift.  This
module adds only the dispatch: chunks drain through a short-lived
:class:`~repro.par.pool.WorkerPool` — the single ``threading.Thread`` site
in the library, shared with the serving runtime.

Threads suit I/O-bound or numpy-releasing-the-GIL work; for GIL-bound
python callables (the pipeline evaluator), use
:class:`~repro.par.ProcessMap` instead (docs/performance.md has the
crossover guidance).

Observability: the calling thread opens a ``par.map`` span whose
:class:`~repro.obs.tracing.TraceContext` travels into the workers, so each
``par.chunk`` span attaches under it even across threads (one tree per
map, serial or pooled), and feeds the ``par.items`` / ``par.chunks`` /
``par.degraded`` counters and the ``par.chunk.seconds`` histogram.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Sequence

from repro.obs import tracing
from repro.par.base import DEFAULT_CHUNK_SIZE, ON_ERROR_MODES, BaseMap
from repro.par.pool import WorkerPool

__all__ = ["DEFAULT_CHUNK_SIZE", "ON_ERROR_MODES", "ParallelMap"]


class ParallelMap(BaseMap):
    """Ordered, chunked map over a short-lived thread pool.

    ``workers=0`` runs serially inline; ``workers>0`` drains the chunk
    list through a :class:`~repro.par.pool.WorkerPool`.  Results, errors,
    and degradation events are identical either way (see
    :class:`~repro.par.base.BaseMap`).
    """

    kind = "threads"

    def _run_dispatch(self, fn, items: Sequence[Any],
                      chunks: list[tuple[int, int]], results: list[Any],
                      errors: dict[int, BaseException], label: str,
                      ctx: tracing.TraceContext | None) -> None:
        lock = threading.Lock()
        cursor = iter(enumerate(chunks))

        def fetch() -> Callable[[], None] | None:
            with lock:
                nxt = next(cursor, None)
            if nxt is None:
                return None
            index, (lo, hi) = nxt

            def work() -> None:
                self._run_chunk(fn, items, index, lo, hi, results, errors,
                                label, ctx)

            return work

        pool = WorkerPool(label, min(self.workers, len(chunks)), fetch,
                          metric_prefix="par.pool").start()
        pool.join(timeout=None)
