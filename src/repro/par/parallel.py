"""``ParallelMap``: deterministic chunked fan-out over a worker pool.

The library's offline parallelism primitive.  One picklable object holds
the whole execution policy — worker count, chunk size, error handling —
and ``map(fn, items)`` returns results **in input order** regardless of
which worker finished first, so callers (pipeline search, blocking) stay
bit-for-bit reproducible:

- ``workers=0`` is the sanctioned serial mode: the same chunking, retry,
  and degradation paths run inline on the calling thread, which is what
  determinism tests diff against (``workers=0`` == ``workers=N``);
- ``workers>0`` drains the chunk list through a short-lived
  :class:`~repro.par.pool.WorkerPool` — the single ``threading.Thread``
  site in the library, shared with the serving runtime;
- transient failures (chaos injection, flaky callables) retry on an
  injected :class:`~repro.resilience.RetryPolicy` before the error policy
  applies;
- ``on_error="degrade"`` absorbs per-item failures into ``fallback``
  values and the process-global
  :class:`~repro.resilience.DegradationLog` — a poisoned item degrades
  its slot, never the whole map, and the map never hangs;
- ``on_error="raise"`` re-raises the failure from the *lowest* item
  index once the pool drains, so the surfaced exception is deterministic
  even when chunks race.

Observability: the calling thread opens a ``par.map`` span whose
:class:`~repro.obs.tracing.TraceContext` travels into the workers, so each
``par.chunk`` span attaches under it even across threads (one tree per
map, serial or pooled), and feeds the ``par.items`` / ``par.chunks`` /
``par.degraded`` counters and the ``par.chunk.seconds`` histogram.
"""

from __future__ import annotations

import threading
from contextlib import nullcontext
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.obs import metrics, tracing
from repro.obs.instrument import timed
from repro.resilience import RetryPolicy, degradation
from repro.par.pool import WorkerPool

T = TypeVar("T")
R = TypeVar("R")

#: How a failing item is handled by :meth:`ParallelMap.map`.
ON_ERROR_MODES = ("raise", "degrade")

#: Default number of items per scheduled chunk.  Fixed (not derived from
#: ``workers``) so serial and parallel runs of the same map produce the
#: same chunk boundaries, spans and degradation events.
DEFAULT_CHUNK_SIZE = 16


class ParallelMap:
    """Ordered, chunked map with a serial mode and resilience-aware errors.

    The object itself is picklable configuration — no locks, threads or
    open resources are held between calls — so a ``ParallelMap`` can ride
    inside task specs, be cloned across processes, or sit on a searcher as
    a plain attribute.
    """

    def __init__(self, workers: int = 0, chunk_size: int | None = None,
                 on_error: str = "raise", fallback: Any = None,
                 retry: RetryPolicy | None = None, name: str = "par"):
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if on_error not in ON_ERROR_MODES:
            raise ValueError(
                f"on_error must be one of {ON_ERROR_MODES}, got {on_error!r}"
            )
        self.workers = workers
        self.chunk_size = chunk_size
        self.on_error = on_error
        self.fallback = fallback
        self.retry = retry
        self.name = name

    def __repr__(self) -> str:
        return (f"ParallelMap(workers={self.workers}, "
                f"chunk_size={self.chunk_size}, on_error={self.on_error!r})")

    # -- the one public operation -------------------------------------------

    def map(self, fn: Callable[[T], R], items: Iterable[T],
            name: str | None = None) -> list[R]:
        """Apply ``fn`` to every item; results come back in input order.

        Failing items follow ``on_error`` after any configured ``retry``:
        ``"raise"`` re-raises the lowest-index failure after the pool has
        drained; ``"degrade"`` substitutes ``fallback`` and records a
        :class:`~repro.resilience.DegradationEvent` per absorbed item.
        """
        items = list(items)
        label = name or self.name
        if not items:
            return []
        chunks = self._chunks(len(items))
        results: list[Any] = [None] * len(items)
        errors: dict[int, BaseException] = {}
        with tracing.span("par.map", label=label, items=len(items),
                          workers=self.workers, chunks=len(chunks)) as span:
            # The map span's position, carried into worker threads so each
            # par.chunk attaches under it instead of orphaning as a root.
            ctx = tracing.current_context()
            if self.workers <= 0 or len(chunks) == 1:
                for index, (lo, hi) in enumerate(chunks):
                    self._run_chunk(fn, items, index, lo, hi, results,
                                    errors, label, ctx)
                    if errors and self.on_error == "raise":
                        break  # fail fast in serial mode
            else:
                self._run_pooled(fn, items, chunks, results, errors, label,
                                 ctx)
            span.set(errors=len(errors))
        if errors and self.on_error == "raise":
            raise errors[min(errors)]
        return results

    # -- scheduling ----------------------------------------------------------

    def _chunks(self, n: int) -> list[tuple[int, int]]:
        size = self.chunk_size or DEFAULT_CHUNK_SIZE
        return [(lo, min(lo + size, n)) for lo in range(0, n, size)]

    def _run_pooled(self, fn, items: Sequence[Any],
                    chunks: list[tuple[int, int]], results: list[Any],
                    errors: dict[int, BaseException], label: str,
                    ctx: tracing.TraceContext | None) -> None:
        lock = threading.Lock()
        cursor = iter(enumerate(chunks))

        def fetch() -> Callable[[], None] | None:
            with lock:
                nxt = next(cursor, None)
            if nxt is None:
                return None
            index, (lo, hi) = nxt

            def work() -> None:
                self._run_chunk(fn, items, index, lo, hi, results, errors,
                                label, ctx)

            return work

        pool = WorkerPool(label, min(self.workers, len(chunks)), fetch,
                          metric_prefix="par.pool").start()
        pool.join(timeout=None)

    def _run_chunk(self, fn, items: Sequence[Any], index: int, lo: int,
                   hi: int, results: list[Any],
                   errors: dict[int, BaseException], label: str,
                   ctx: tracing.TraceContext | None = None) -> None:
        # On a worker thread there is no active span, so activate the
        # caller's par.map context; serially the map span is already the
        # innermost parent and activation would only duplicate it.
        scope = (tracing.activate(ctx) if tracing.current_span() is None
                 else nullcontext())
        with scope, timed("par.chunk.seconds", span_name="par.chunk",
                          label=label, chunk=index, size=hi - lo):
            metrics.counter("par.chunks").inc()
            for i in range(lo, hi):
                try:
                    results[i] = self._call_one(fn, items[i], label)
                except Exception as exc:  # noqa: BLE001 - policy decides
                    if self.on_error == "raise":
                        errors[i] = exc
                        return  # abandon the rest of this chunk
                    results[i] = self.fallback
                    metrics.counter("par.degraded").inc()
                    degradation.record(
                        component="par", point=f"{label}[{i}]",
                        action="fallback", error=str(exc),
                    )
                metrics.counter("par.items").inc()

    def _call_one(self, fn, item: Any, label: str) -> Any:
        if self.retry is None:
            return fn(item)
        return self.retry.call(lambda: fn(item), name=f"par.{label}")
