"""Process-backed workers: the morsel-driven pool and ``ProcessMap``.

Threads cannot speed up GIL-bound python work (BENCH_perf.json once
recorded pipeline search *losing* at 0.84× under a forced thread pool), so
this module adds the process sibling:

- :class:`ProcessPool` — a fixed set of forked workers pulling task
  indices ("morsels") from a shared queue.  Workers inherit the task
  callable and its data by **fork**, so nothing is pickled on the way in;
  only results cross the pipe on the way out.  A worker that dies
  mid-morsel (OOM-kill, segfault, the chaos suite's SIGKILL) surfaces as a
  per-task :class:`~repro.errors.WorkerLostError` outcome — the pool
  detects the death, re-routes unstarted morsels, finishes stragglers
  inline if every worker is gone, and **never hangs**;
- :class:`ProcessMap` — the :class:`~repro.par.base.BaseMap` backend over
  that pool: same input-order results, ``workers=0`` serial mode, retry
  and ``on_error`` semantics as the thread-backed
  :class:`~repro.par.ParallelMap`.  ``workers=None`` sizes the pool to
  the machine (serial on a single-CPU host, where forking only adds
  overhead — the process-level crossover policy).

Observability across the process boundary: the parent injects its
``par.map`` :class:`~repro.obs.tracing.TraceContext` into a dict carrier
(the PR 6 propagation protocol); each forked worker extracts and activates
it, times its ``par.chunk`` span in its own (discarded) tracer, and ships
the measured duration back with the results.  The parent re-attaches every
chunk as a finished span under the original context via
:meth:`~repro.obs.tracing.Tracer.record` — one span tree per map, even
when the children were separate processes.  Degradation events are
recorded in the **parent** (a child's process-global log dies with it).

This is the only module under ``src/repro`` allowed to import
``multiprocessing`` (CI-enforced, like the ``threading.Thread`` lint for
``par/pool.py``): process lifecycles have a single owner.

Caveat: results (and raised exceptions) must be picklable; an unpicklable
result degrades to a :class:`~repro.errors.RemoteTaskError` outcome
instead of poisoning the pipe.  The callable and items need **not** be
picklable — they ride the fork.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import pickle
from dataclasses import dataclass
from queue import Empty
from typing import Any, Callable, Sequence

from repro.errors import RemoteTaskError, WorkerLostError
from repro.obs import get_logger, metrics, tracing
from repro.par.base import BaseMap

log = get_logger("par.procpool")

#: Seconds between liveness sweeps while waiting on worker results.
POLL_INTERVAL = 0.05


def available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def default_process_workers(cap: int = 8) -> int:
    """The machine-aware default worker count for :class:`ProcessMap`.

    ``0`` (the serial mode) on a single-CPU host — forked workers cannot
    overlap there, so fan-out is pure overhead — else the CPU count,
    capped to keep fork + pipe costs proportionate.
    """
    cpus = available_cpus()
    return 0 if cpus < 2 else min(cpus, cap)


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


@dataclass
class TaskOutcome:
    """One morsel's fate: payload on success, the error otherwise."""

    index: int
    ok: bool
    value: Any = None
    error: BaseException | None = None


class ProcessPool:
    """Morsel-driven pool of forked workers.

    One-shot: :meth:`run` forks ``num_workers`` children, lets them pull
    task indices from a shared queue until it drains, collects per-task
    outcomes, and reaps every child before returning.  Created per map
    call, like :class:`~repro.par.pool.WorkerPool` is per ``map()``.
    """

    def __init__(self, name: str, num_workers: int,
                 poll_interval: float = POLL_INTERVAL):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.name = name
        self.num_workers = num_workers
        self.poll_interval = poll_interval

    # -- child side ----------------------------------------------------------

    @staticmethod
    def _worker_main(wid: int, task_fn, task_q, conn) -> None:
        """Pull morsels until the sentinel.

        Messages go back over a per-worker pipe with **synchronous**
        ``send_bytes`` (never an ``mp.Queue``: its feeder thread buffers
        puts, so a kill would silently drop results the task already
        finished).  The pipe preserves order and EOFs on death, so the
        parent reads every completed result before it sees the worker die.
        Messages are pre-pickled so a pickling failure downgrades to an
        error outcome instead of crashing the worker.
        """
        while True:
            index = task_q.get()
            if index is None:
                conn.send_bytes(pickle.dumps(("exit", wid)))
                conn.close()
                return
            conn.send_bytes(pickle.dumps(("claim", wid, index)))
            try:
                value = task_fn(index)
                ok, payload = True, value
            except Exception as exc:  # noqa: BLE001 - shipped to the parent
                ok, payload = False, exc
            try:
                message = pickle.dumps(("done", wid, index, ok, payload))
            except Exception as exc:  # noqa: BLE001 - unpicklable payload
                error = RemoteTaskError(
                    f"task {index} produced an unpicklable "
                    f"{'result' if ok else 'exception'}: {exc}"
                )
                message = pickle.dumps(("done", wid, index, False, error))
            conn.send_bytes(message)

    # -- parent side ---------------------------------------------------------

    def run(self, task_fn: Callable[[int], Any],
            num_tasks: int) -> list[TaskOutcome]:
        """Execute ``task_fn(i)`` for ``i in range(num_tasks)``; outcomes in
        index order.  ``task_fn`` runs in forked children (inherited, not
        pickled); its return values must be picklable."""
        if num_tasks <= 0:
            return []
        if not fork_available():
            # No fork on this platform: run inline, same outcome contract.
            return [self._run_local(task_fn, i) for i in range(num_tasks)]
        ctx = multiprocessing.get_context("fork")
        workers = min(self.num_workers, num_tasks)
        task_q = ctx.Queue()
        for i in range(num_tasks):
            task_q.put(i)
        for _ in range(workers):
            task_q.put(None)  # one shutdown sentinel per worker
        procs, conns = [], {}
        for wid in range(workers):
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(target=self._worker_main,
                               args=(wid, task_fn, task_q, child_conn),
                               name=f"repro-{self.name}-{wid}", daemon=True)
            proc.start()
            child_conn.close()  # parent's copy, else EOF never surfaces
            procs.append(proc)
            conns[parent_conn] = wid
        metrics.gauge(f"par.procpool.{self.name}.workers").set(workers)

        outcomes: dict[int, TaskOutcome] = {}
        pending = set(range(num_tasks))
        claims: dict[int, int] = {}  # wid -> index being executed
        try:
            while pending:
                if not conns:
                    # Nobody left to produce results: finish queued morsels
                    # inline, then write off the orphans (a worker killed
                    # between dequeue and claim-send leaves nothing behind).
                    self._drain_inline(task_fn, task_q, pending, outcomes)
                    for index in sorted(pending):
                        outcomes[index] = self._lost(index)
                    pending.clear()
                    break
                for conn in multiprocessing.connection.wait(
                        list(conns), timeout=self.poll_interval):
                    wid = conns[conn]
                    try:
                        msg = pickle.loads(conn.recv_bytes())
                    except (EOFError, OSError):
                        # Worker died; its claimed morsel (if any) is lost.
                        del conns[conn]
                        log.warning(
                            "worker %d of pool %r died (exitcode %s)",
                            wid, self.name, procs[wid].exitcode)
                        index = claims.pop(wid, None)
                        if index is not None and index in pending:
                            outcomes[index] = self._lost(index)
                            pending.discard(index)
                        continue
                    kind = msg[0]
                    if kind == "claim":
                        claims[msg[1]] = msg[2]
                    elif kind == "done":
                        _, _, index, ok, payload = msg
                        claims.pop(wid, None)
                        outcomes[index] = (
                            TaskOutcome(index, True, value=payload) if ok
                            else TaskOutcome(index, False, error=payload)
                        )
                        pending.discard(index)
                        metrics.counter(
                            f"par.procpool.{self.name}.tasks").inc()
                    elif kind == "exit":
                        del conns[conn]
        finally:
            self._reap(procs, task_q, conns)
        return [outcomes[i] for i in range(num_tasks)]

    def _run_local(self, task_fn, index: int) -> TaskOutcome:
        try:
            return TaskOutcome(index, True, value=task_fn(index))
        except Exception as exc:  # noqa: BLE001 - same contract as workers
            return TaskOutcome(index, False, error=exc)

    def _lost(self, index: int) -> TaskOutcome:
        metrics.counter(f"par.procpool.{self.name}.worker_lost").inc()
        return TaskOutcome(index, False, error=WorkerLostError(
            f"worker died before completing task {index} "
            f"of pool {self.name!r}"
        ))

    def _drain_inline(self, task_fn, task_q, pending: set[int],
                      outcomes: dict[int, TaskOutcome]) -> None:
        """Run morsels still sitting in the task queue on the parent."""
        while True:
            try:
                index = task_q.get(timeout=self.poll_interval)
            except Empty:
                return
            if index is None:
                continue  # a dead worker's unconsumed shutdown sentinel
            if index in pending:
                outcomes[index] = self._run_local(task_fn, index)
                pending.discard(index)

    def _reap(self, procs, task_q, conns) -> None:
        for proc in procs:
            proc.join(timeout=1.0)
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        for conn in list(conns):
            conn.close()
        task_q.close()
        task_q.cancel_join_thread()
        metrics.gauge(f"par.procpool.{self.name}.workers").set(0)


class ProcessMap(BaseMap):
    """Ordered, chunked map over forked worker processes.

    The :class:`~repro.par.base.BaseMap` contract on process workers:
    results in input order, ``workers=0`` serial mode (identical results),
    retry inside the worker, error policy applied in the parent — a chunk
    whose worker was killed degrades (or raises) per item, never hangs the
    map, and every absorbed failure lands in the parent's
    :class:`~repro.resilience.DegradationLog`.

    ``workers=None`` self-sizes via :func:`default_process_workers`:
    serial on single-CPU machines, ``min(cpus, 8)`` otherwise.  Results
    must be picklable; the mapped callable and items ride the fork and
    need not be.
    """

    kind = "processes"

    def __init__(self, workers: int | None = None,
                 chunk_size: int | None = None, on_error: str = "raise",
                 fallback: Any = None, retry=None, name: str = "par"):
        self.auto_sized = workers is None
        if workers is None:
            workers = default_process_workers()
        super().__init__(workers=workers, chunk_size=chunk_size,
                         on_error=on_error, fallback=fallback, retry=retry,
                         name=name)

    def _run_dispatch(self, fn, items: Sequence[Any],
                      chunks: list[tuple[int, int]], results: list[Any],
                      errors: dict[int, BaseException], label: str,
                      ctx: tracing.TraceContext | None) -> None:
        carrier = tracing.inject(ctx) if ctx is not None else {}
        retry = self.retry

        def chunk_task(chunk_index: int):
            lo, hi = chunks[chunk_index]
            return _remote_chunk(fn, items, lo, hi, retry, label, carrier)

        pool = ProcessPool(label, min(self.workers, len(chunks)))
        for outcome in pool.run(chunk_task, len(chunks)):
            lo, hi = chunks[outcome.index]
            metrics.counter("par.chunks").inc()
            if not outcome.ok:
                # The whole chunk failed to report (worker lost, or the
                # remote chunk runner itself broke): apply the policy to
                # every item it covered.
                if self.on_error == "raise":
                    errors[lo] = outcome.error
                else:
                    for i in range(lo, hi):
                        self._degrade_item(results, i, label, outcome.error)
                        metrics.counter("par.items").inc()
                continue
            item_outcomes, duration, worker_pid = outcome.value
            self._attach_chunk_span(outcome.index, lo, hi, label, ctx,
                                    duration, worker_pid)
            for i, ok, payload in item_outcomes:
                if ok:
                    results[i] = payload
                elif self.on_error == "raise":
                    if i not in errors:
                        errors[i] = payload
                    continue  # mirror the serial path: skip the item count
                else:
                    self._degrade_item(results, i, label, payload)
                metrics.counter("par.items").inc()

    def _attach_chunk_span(self, index: int, lo: int, hi: int, label: str,
                           ctx: tracing.TraceContext | None,
                           duration: float | None, worker_pid: int) -> None:
        """Re-parent the child's measured chunk under the par.map span."""
        if duration is None:
            return
        metrics.histogram("par.chunk.seconds").observe(duration)
        tracing.get_tracer().record(
            "par.chunk", duration, parent=ctx,
            label=label, chunk=index, size=hi - lo, remote=True,
            pid=worker_pid,
        )


def _remote_chunk(fn, items: Sequence[Any], lo: int, hi: int, retry,
                  label: str, carrier: dict[str, Any]):
    """Chunk body executed inside a forked worker.

    Returns ``(item_outcomes, duration, pid)`` where each item outcome is
    ``(index, ok, value_or_exception)``.  The chunk is timed by a span in
    the child's own tracer (activated under the extracted parent context);
    the tracer dies with the process, so only the duration travels home —
    the parent re-attaches it under the original ``par.map`` span.
    """
    ctx = tracing.extract(carrier)
    item_outcomes: list[tuple[int, bool, Any]] = []
    with tracing.activate(ctx):
        with tracing.span("par.chunk", label=label, size=hi - lo,
                          pid=os.getpid()) as chunk_span:
            for i in range(lo, hi):
                try:
                    if retry is None:
                        value = fn(items[i])
                    else:
                        value = retry.call(lambda item=items[i]: fn(item),
                                           name=f"par.{label}")
                    item_outcomes.append((i, True, value))
                except Exception as exc:  # noqa: BLE001 - parent decides
                    item_outcomes.append((i, False, exc))
    return item_outcomes, chunk_span.duration, os.getpid()
