"""The shared map contract: chunking, ordering, and error policy.

:class:`BaseMap` is the single source of truth for what every ``repro.par``
map means, whatever executes the chunks:

- ``map(fn, items)`` returns results **in input order**;
- ``workers=0`` (or a single chunk) runs the same chunking, retry and
  degradation paths inline on the calling thread — the sanctioned serial
  mode that determinism tests diff against;
- transient failures retry on an injected
  :class:`~repro.resilience.RetryPolicy` before the error policy applies;
- ``on_error="degrade"`` absorbs per-item failures into ``fallback``
  values plus a :class:`~repro.resilience.DegradationLog` event — a
  poisoned item degrades its slot, never the whole map, and the map never
  hangs;
- ``on_error="raise"`` re-raises the failure from the *lowest* item index
  once the run drains, so the surfaced exception is deterministic even
  when chunks race.

Thread-backed (:class:`~repro.par.ParallelMap`) and process-backed
(:class:`~repro.par.ProcessMap`) maps both subclass this, overriding only
:meth:`_run_dispatch` — how chunks reach workers — so the two backends
cannot drift on ordering, retry, or degradation semantics.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.obs import metrics, tracing
from repro.obs.instrument import timed
from repro.resilience import RetryPolicy, degradation

T = TypeVar("T")
R = TypeVar("R")

#: How a failing item is handled by :meth:`BaseMap.map`.
ON_ERROR_MODES = ("raise", "degrade")

#: Default number of items per scheduled chunk.  Fixed (not derived from
#: ``workers``) so serial and parallel runs of the same map produce the
#: same chunk boundaries, spans and degradation events.
DEFAULT_CHUNK_SIZE = 16


class BaseMap:
    """Ordered, chunked map with a serial mode and resilience-aware errors.

    The object itself is picklable configuration — no locks, threads or
    open resources are held between calls — so a map can ride inside task
    specs, be cloned across processes, or sit on a searcher as a plain
    attribute.  Subclasses provide :meth:`_run_dispatch` (and a ``kind``
    label for spans).
    """

    kind = "base"

    def __init__(self, workers: int = 0, chunk_size: int | None = None,
                 on_error: str = "raise", fallback: Any = None,
                 retry: RetryPolicy | None = None, name: str = "par"):
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if on_error not in ON_ERROR_MODES:
            raise ValueError(
                f"on_error must be one of {ON_ERROR_MODES}, got {on_error!r}"
            )
        self.workers = workers
        self.chunk_size = chunk_size
        self.on_error = on_error
        self.fallback = fallback
        self.retry = retry
        self.name = name

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(workers={self.workers}, "
                f"chunk_size={self.chunk_size}, on_error={self.on_error!r})")

    def with_options(self, **overrides: Any) -> "BaseMap":
        """A copy of this map with some policy fields replaced.

        The shard kernels use this to re-chunk a caller's map at one shard
        per chunk (``with_options(chunk_size=1)``) without mutating the
        caller's object.
        """
        fields = dict(workers=self.workers, chunk_size=self.chunk_size,
                      on_error=self.on_error, fallback=self.fallback,
                      retry=self.retry, name=self.name)
        fields.update(overrides)
        return type(self)(**fields)

    # -- the one public operation -------------------------------------------

    def map(self, fn: Callable[[T], R], items: Iterable[T],
            name: str | None = None) -> list[R]:
        """Apply ``fn`` to every item; results come back in input order.

        Failing items follow ``on_error`` after any configured ``retry``:
        ``"raise"`` re-raises the lowest-index failure after the run has
        drained; ``"degrade"`` substitutes ``fallback`` and records a
        :class:`~repro.resilience.DegradationEvent` per absorbed item.
        """
        items = list(items)
        label = name or self.name
        if not items:
            return []
        chunks = self._chunks(len(items))
        results: list[Any] = [None] * len(items)
        errors: dict[int, BaseException] = {}
        with tracing.span("par.map", label=label, items=len(items),
                          workers=self.workers, chunks=len(chunks),
                          kind=self.kind) as span:
            # The map span's position, carried into workers so each
            # par.chunk attaches under it instead of orphaning as a root.
            ctx = tracing.current_context()
            if self.workers <= 0 or len(chunks) == 1:
                for index, (lo, hi) in enumerate(chunks):
                    self._run_chunk(fn, items, index, lo, hi, results,
                                    errors, label, ctx)
                    if errors and self.on_error == "raise":
                        break  # fail fast in serial mode
            else:
                self._run_dispatch(fn, items, chunks, results, errors, label,
                                   ctx)
            span.set(errors=len(errors))
        if errors and self.on_error == "raise":
            raise errors[min(errors)]
        return results

    # -- scheduling ----------------------------------------------------------

    def _chunks(self, n: int) -> list[tuple[int, int]]:
        size = self.chunk_size or DEFAULT_CHUNK_SIZE
        return [(lo, min(lo + size, n)) for lo in range(0, n, size)]

    def _run_dispatch(self, fn, items: Sequence[Any],
                      chunks: list[tuple[int, int]], results: list[Any],
                      errors: dict[int, BaseException], label: str,
                      ctx: tracing.TraceContext | None) -> None:
        """Execute every chunk on this backend's workers (``workers > 0``
        and more than one chunk).  Must honor the same results/errors
        contract :meth:`_run_chunk` implements."""
        raise NotImplementedError

    def _run_chunk(self, fn, items: Sequence[Any], index: int, lo: int,
                   hi: int, results: list[Any],
                   errors: dict[int, BaseException], label: str,
                   ctx: tracing.TraceContext | None = None) -> None:
        # On a worker thread there is no active span, so activate the
        # caller's par.map context; serially the map span is already the
        # innermost parent and activation would only duplicate it.
        scope = (tracing.activate(ctx) if tracing.current_span() is None
                 else nullcontext())
        with scope, timed("par.chunk.seconds", span_name="par.chunk",
                          label=label, chunk=index, size=hi - lo):
            metrics.counter("par.chunks").inc()
            for i in range(lo, hi):
                try:
                    results[i] = self._call_one(fn, items[i], label)
                except Exception as exc:  # noqa: BLE001 - policy decides
                    if self.on_error == "raise":
                        errors[i] = exc
                        return  # abandon the rest of this chunk
                    self._degrade_item(results, i, label, exc)
                metrics.counter("par.items").inc()

    def _call_one(self, fn, item: Any, label: str) -> Any:
        if self.retry is None:
            return fn(item)
        return self.retry.call(lambda: fn(item), name=f"par.{label}")

    def _degrade_item(self, results: list[Any], i: int, label: str,
                      exc: BaseException) -> None:
        """Absorb one failed item: fallback value + degradation event."""
        results[i] = self.fallback
        metrics.counter("par.degraded").inc()
        degradation.record(
            component="par", point=f"{label}[{i}]",
            action="fallback", error=str(exc),
        )
