"""The tiered result cache: sharded LRU + TTL, plus single-flight coalescing.

:class:`ResultCache` is the *completed* tier — results that already exist.
Keys hash onto independently-locked shards (blake2b, not Python's per-run
``hash()``, so shard assignment is stable across processes), each shard an
LRU of at most ``capacity // shards`` entries with an optional TTL read off
the injected clock.  Hits, misses, evictions and expirations are counted
under ``<name>.*``; the live entry count is the ``<name>.size`` gauge.

:class:`SingleFlight` is the *in-flight* tier — results that are currently
being computed.  The first requester of a key becomes the **leader** and
actually runs; every identical request arriving before the leader resolves
**joins** the flight and is answered from the leader's response.  Identical
concurrent work is therefore done exactly once — the server-side analogue
of request deduplication in continuous-batching inference servers.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any

from repro.obs import metrics
from repro.resilience import Clock, get_clock


def stable_key(*parts: str) -> str:
    """A short, process-stable cache key over string parts."""
    h = hashlib.blake2b(digest_size=16)
    for part in parts:
        h.update(part.encode())
        h.update(b"\x1f")
    return h.hexdigest()


class _Shard:
    """One LRU map with its own lock; values stored as (value, expires_at)."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.lock = threading.Lock()
        self.entries: OrderedDict[str, tuple[Any, float | None]] = OrderedDict()


class ResultCache:
    """A sharded LRU + TTL map from request key to completed result."""

    def __init__(self, capacity: int = 1024, shards: int = 8,
                 ttl: float | None = None, clock: Clock | None = None,
                 name: str = "serving.cache"):
        if capacity < 1 or shards < 1:
            raise ValueError("cache capacity and shards must be >= 1")
        self.name = name
        self.ttl = ttl
        self._clock = clock or get_clock()
        per_shard = max(1, -(-capacity // shards))  # ceil division
        self._shards = [_Shard(per_shard) for _ in range(shards)]

    def _shard_for(self, key: str) -> _Shard:
        digest = hashlib.blake2b(key.encode(), digest_size=4).digest()
        return self._shards[int.from_bytes(digest, "big") % len(self._shards)]

    def get(self, key: str) -> tuple[bool, Any]:
        """(hit, value); a TTL-expired entry counts as a miss and is dropped."""
        shard = self._shard_for(key)
        with shard.lock:
            entry = shard.entries.get(key)
            if entry is not None:
                value, expires = entry
                if expires is not None and self._clock.monotonic() >= expires:
                    del shard.entries[key]
                    metrics.counter(f"{self.name}.expirations").inc()
                    metrics.gauge(f"{self.name}.size").add(-1)
                else:
                    shard.entries.move_to_end(key)
                    metrics.counter(f"{self.name}.hits").inc()
                    return True, value
        metrics.counter(f"{self.name}.misses").inc()
        return False, None

    def put(self, key: str, value: Any) -> None:
        shard = self._shard_for(key)
        expires = (self._clock.monotonic() + self.ttl
                   if self.ttl is not None else None)
        with shard.lock:
            fresh = key not in shard.entries
            shard.entries[key] = (value, expires)
            shard.entries.move_to_end(key)
            if fresh:
                metrics.gauge(f"{self.name}.size").add(1)
            if len(shard.entries) > shard.capacity:
                shard.entries.popitem(last=False)
                metrics.counter(f"{self.name}.evictions").inc()
                metrics.gauge(f"{self.name}.size").add(-1)

    def __len__(self) -> int:
        return sum(len(s.entries) for s in self._shards)


class SingleFlight:
    """In-flight request registry: one leader computes, identical joiners wait.

    ``claim(key, waiter)`` returns True for the leader (a new flight was
    opened holding ``waiter``) and False for a joiner (``waiter`` was added
    to the existing flight).  ``resolve(key)`` closes the flight and returns
    every registered waiter so the caller can fan the response out.
    """

    def __init__(self, name: str = "serving.flight"):
        self.name = name
        self._lock = threading.Lock()
        self._flights: dict[str, list[Any]] = {}

    def claim(self, key: str, waiter: Any) -> bool:
        with self._lock:
            flight = self._flights.get(key)
            if flight is None:
                self._flights[key] = [waiter]
                return True
            flight.append(waiter)
        metrics.counter(f"{self.name}.coalesced").inc()
        return False

    def resolve(self, key: str) -> list[Any]:
        with self._lock:
            return self._flights.pop(key, [])

    def __len__(self) -> int:
        with self._lock:
            return len(self._flights)
