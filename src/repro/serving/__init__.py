"""repro.serving: the micro-batching serving runtime.

The ROADMAP's north star is serving heavy traffic, and §3.1/§3.2's framing
is that model-inference cost dominates data-prep workloads — so this layer
exists to *amortize* that cost the way continuous-batching inference
servers do: collect concurrent requests into micro-batches, deduplicate
identical work, and answer repeats from a cache.  Five pieces, built on
``repro.obs`` (PR 1) and ``repro.resilience`` (PR 2):

- **envelope** — typed :class:`Request`/:class:`Response` with priority,
  deadline and trace metadata; backpressure is a ``rejected`` *response*
  (429-style), never an exception;
- **scheduler** — :class:`MicroBatchScheduler`: bounded priority lanes,
  batches triggered by size (``max_batch``) or time (``batch_window`` on
  the injected clock); a pure state machine with zero sleeps;
- **admission** — :class:`AdmissionController`: queue-depth limits and
  priority-aware load shedding, recorded into the
  :class:`~repro.resilience.DegradationLog`;
- **cache** — :class:`ResultCache` (sharded LRU + TTL, hit/miss/eviction
  metrics) and :class:`SingleFlight` (identical in-flight requests are
  computed once);
- **server / pool / backends** — :class:`Server` ties it together over a
  :class:`WorkerPool` (the only sanctioned ``threading.Thread`` site in the
  library), with a :class:`~repro.resilience.CircuitBreaker` and a
  degraded-tier fallback per registered :class:`Backend`.

Quickstart::

    from repro.serving import FMBackend, Server

    server = Server(workers=2, batch_window=0.005, max_batch=32)
    server.register(FMBackend(model))
    futures = [server.submit("fm", prompt) for prompt in prompts]
    answers = [f.result(timeout=10.0) for f in futures]
    server.close()

``Server(workers=0)`` is serial mode: batches run inline on :meth:`poll` /
:meth:`flush`, fully deterministic on a
:class:`~repro.resilience.FakeClock`.  See docs/serving.md for the design,
tuning knobs and metric names.
"""

from repro.serving.admission import AdmissionController
from repro.serving.backends import FMBackend, MatcherBackend, PipelineBackend
from repro.serving.cache import ResultCache, SingleFlight, stable_key
from repro.serving.envelope import (
    ERROR,
    EXPIRED,
    OK,
    PRIORITIES,
    REJECTED,
    STATUSES,
    Request,
    Response,
    ResponseFuture,
)
from repro.serving.pool import WorkerPool
from repro.serving.scheduler import MicroBatchScheduler
from repro.serving.server import Backend, Server

__all__ = [
    "ERROR",
    "EXPIRED",
    "OK",
    "PRIORITIES",
    "REJECTED",
    "STATUSES",
    "AdmissionController",
    "Backend",
    "FMBackend",
    "MatcherBackend",
    "MicroBatchScheduler",
    "PipelineBackend",
    "Request",
    "Response",
    "ResponseFuture",
    "ResultCache",
    "Server",
    "SingleFlight",
    "WorkerPool",
    "stable_key",
]
