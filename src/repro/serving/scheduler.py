"""The micro-batching scheduler: priority lanes + batch-window batching.

A :class:`MicroBatchScheduler` is a bounded, priority-laned queue plus the
policy for when a batch is ready: **either** the queue holds ``max_batch``
requests (size trigger) **or** the oldest queued request has waited
``batch_window`` seconds (time trigger, measured on the injected clock).
The window is what turns a trickle of single requests into batches worth
amortizing — the micro-batching idea behind continuous-batching servers —
while bounding the latency any request pays for the privilege.

The scheduler is a pure state machine over ``clock.monotonic()``: it never
sleeps, spawns nothing, and every method is safe under concurrent callers.
Threaded serving drives it from a worker pool using :meth:`wait_hint` as
the condition-wait timeout; tests drive it synchronously on a
:class:`~repro.resilience.FakeClock` with zero wall time.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any

from repro.obs import metrics
from repro.resilience import Clock, get_clock
from repro.serving.admission import AdmissionController
from repro.serving.envelope import PRIORITIES, Request

#: An entry is the request plus whatever resolution handle rides with it.
Entry = tuple[Request, Any]


class MicroBatchScheduler:
    """Bounded priority-lane queue with size- and window-triggered batches."""

    def __init__(self, name: str = "default", batch_window: float = 0.002,
                 max_batch: int = 16,
                 admission: AdmissionController | None = None,
                 clock: Clock | None = None):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.name = name
        self.batch_window = float(batch_window)
        self.max_batch = max_batch
        self.admission = admission or AdmissionController()
        self._clock = clock or get_clock()
        self._lock = threading.Lock()
        self._lanes: dict[str, deque[Entry]] = {p: deque() for p in PRIORITIES}
        self._depth = 0
        self._hwm = 0

    # -- queue state --------------------------------------------------------

    @property
    def depth(self) -> int:
        with self._lock:
            return self._depth

    @property
    def high_water_mark(self) -> int:
        """Deepest the queue has been since construction."""
        with self._lock:
            return self._hwm

    def _set_depth_gauges(self) -> None:
        metrics.gauge(f"serving.{self.name}.queue.depth").set(self._depth)
        if self._depth > self._hwm:
            self._hwm = self._depth
        metrics.gauge(f"serving.{self.name}.queue.depth.hwm").set(self._hwm)

    def _oldest_arrival(self) -> float | None:
        oldest: float | None = None
        for lane in self._lanes.values():
            if lane:
                arrival = lane[0][0].enqueued_at
                if oldest is None or arrival < oldest:
                    oldest = arrival
        return oldest

    # -- producer side ------------------------------------------------------

    def offer(self, request: Request, handle: Any = None) -> str | None:
        """Admit-and-enqueue; returns ``None`` or the rejection reason."""
        with self._lock:
            reason = self.admission.admit(self._depth, request)
            if reason is not None:
                return reason
            request.enqueued_at = self._clock.monotonic()
            self._lanes[request.priority].append((request, handle))
            self._depth += 1
            self._set_depth_gauges()
        return None

    # -- consumer side ------------------------------------------------------

    def ready(self, now: float | None = None) -> bool:
        """Is a batch ready right now (size or window trigger)?"""
        with self._lock:
            return self._ready_locked(
                self._clock.monotonic() if now is None else now
            )

    def _ready_locked(self, now: float) -> bool:
        if self._depth == 0:
            return False
        if self._depth >= self.max_batch:
            return True
        oldest = self._oldest_arrival()
        return oldest is not None and now - oldest >= self.batch_window

    def wait_hint(self, now: float | None = None) -> float | None:
        """Seconds until the pending window trigger fires; ``None`` if empty
        (then only a new offer can make a batch, so wait un-timed), ``0.0``
        if a batch is ready already."""
        with self._lock:
            if self._depth == 0:
                return None
            now = self._clock.monotonic() if now is None else now
            if self._ready_locked(now):
                return 0.0
            oldest = self._oldest_arrival()
            assert oldest is not None
            return max(0.0, self.batch_window - (now - oldest))

    def next_batch(self, now: float | None = None,
                   force: bool = False) -> list[Entry]:
        """Pop up to ``max_batch`` entries, highest priority lanes first.

        Returns ``[]`` unless a trigger fired (or ``force=True``, used to
        drain on flush/shutdown).
        """
        with self._lock:
            now = self._clock.monotonic() if now is None else now
            if self._depth == 0 or not (force or self._ready_locked(now)):
                return []
            batch: list[Entry] = []
            for priority in PRIORITIES:
                lane = self._lanes[priority]
                while lane and len(batch) < self.max_batch:
                    batch.append(lane.popleft())
            self._depth -= len(batch)
            self._set_depth_gauges()
            return batch
