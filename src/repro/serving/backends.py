"""The three stock serving backends: FM completion, entity-pair scoring,
and pipeline application.

Each wraps an existing library capability behind the
:class:`~repro.serving.server.Backend` protocol — a batch function, a
stable cache key, and a degraded-tier fallback — so one
:class:`~repro.serving.Server` fronts the whole data-prep stack:

- :class:`FMBackend` — prompts into
  :meth:`~repro.foundation.FoundationModel.complete_batch` (which dedups
  identical prompts before dispatch); fallback echoes the query at
  rock-bottom confidence, the same floor ``FoundationModel`` itself uses;
- :class:`MatcherBackend` — record pairs into
  :meth:`~repro.matching.EntityMatcher.predict`; fallback optionally
  hands the pair to a cheaper matcher tier (e.g. rules);
- :class:`PipelineBackend` — ``(X_train, y_train, X_test)`` triples through
  :meth:`~repro.pipelines.PrepPipeline.apply`; fallback serves the features
  untransformed (the identity tier).
"""

from __future__ import annotations

import hashlib
from typing import Any

import numpy as np

from repro.foundation.model import Completion, FoundationModel
from repro.foundation.prompts import parse_prompt
from repro.matching.matchers import EntityMatcher
from repro.pipelines.pipeline import PrepPipeline
from repro.serving.cache import stable_key
from repro.serving.server import Backend


class FMBackend(Backend):
    """Serve foundation-model completions; payload = prompt text."""

    def __init__(self, model: FoundationModel, strict: bool = False,
                 name: str = "fm"):
        self.model = model
        self.strict = strict
        self.name = name

    def run_batch(self, payloads: list[str]) -> list[Completion]:
        return self.model.complete_batch(payloads, strict=self.strict)

    def cache_key(self, payload: str) -> str:
        return stable_key(payload)

    def fallback(self, payload: str, error: BaseException) -> Completion:
        return Completion(parse_prompt(payload).query, confidence=0.05,
                          tier="degraded")


class MatcherBackend(Backend):
    """Serve entity-pair match decisions; payload = ``(Record, Record)``."""

    def __init__(self, matcher: EntityMatcher,
                 fallback_matcher: EntityMatcher | None = None,
                 name: str = "matcher"):
        self.matcher = matcher
        self.fallback_matcher = fallback_matcher
        self.name = name

    def run_batch(self, payloads: list[tuple]) -> list[int]:
        predictions = self.matcher.predict(list(payloads))
        return [int(p) for p in predictions]

    def cache_key(self, payload: tuple) -> str:
        a, b = payload
        return stable_key(a.text(), b.text())

    def fallback(self, payload: tuple, error: BaseException) -> int:
        if self.fallback_matcher is None:
            raise error
        return int(self.fallback_matcher.predict([payload])[0])


class PipelineBackend(Backend):
    """Serve pipeline applications; payload = ``(X_train, y_train, X_test)``."""

    def __init__(self, pipeline: PrepPipeline, on_error: str = "skip",
                 cache: bool = True, name: str = "pipeline"):
        self.pipeline = pipeline
        self.on_error = on_error
        self.cache = cache
        self.name = name

    def run_batch(self, payloads: list[tuple]) -> list[tuple]:
        return [
            self.pipeline.apply(X_train, y_train, X_test,
                                on_error=self.on_error)
            for X_train, y_train, X_test in payloads
        ]

    def cache_key(self, payload: tuple) -> str | None:
        if not self.cache:
            return None
        h = hashlib.blake2b(digest_size=16)
        h.update(self.pipeline.describe().encode())
        for array in payload:
            arr = np.ascontiguousarray(array)
            h.update(f"|{arr.dtype}{arr.shape}|".encode())
            h.update(arr.tobytes())
        return h.hexdigest()

    def fallback(self, payload: tuple, error: BaseException) -> tuple:
        X_train, _y_train, X_test = payload
        return X_train, X_test
