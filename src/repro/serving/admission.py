"""Admission control: decide at the door, shed before queueing.

An :class:`AdmissionController` inspects queue depth and the incoming
:class:`~repro.serving.envelope.Request` and returns either ``None``
(admit) or a rejection reason string.  Rejections surface to callers as
429-style ``Rejected`` responses, never as exceptions, and every shed
request is recorded into the process-global
:class:`~repro.resilience.DegradationLog` so run reports account for load
that was turned away.

Three gates, in order:

- **deadline** — a request whose deadline already expired is refused
  outright (serving it would waste a batch slot on a dead answer);
- **queue_full** — depth at ``max_depth`` refuses everything;
- **shed** — depth at or beyond ``shed_threshold * max_depth`` (the
  high-water mark) refuses the configured ``shed_priorities`` lanes, so
  low-priority traffic degrades first while high-priority traffic still
  lands.
"""

from __future__ import annotations

from repro.obs import metrics
from repro.resilience import degradation
from repro.serving.envelope import Request

#: Rejection reasons admission can return.
REASONS = ("deadline", "queue_full", "shed")


class AdmissionController:
    """Queue-depth backpressure with priority-aware load shedding."""

    def __init__(self, max_depth: int = 256, shed_threshold: float = 0.75,
                 shed_priorities: tuple[str, ...] = ("low",)):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if not 0.0 < shed_threshold <= 1.0:
            raise ValueError("shed_threshold must be in (0, 1]")
        self.max_depth = max_depth
        self.shed_priorities = tuple(shed_priorities)
        #: Queue depth at which shedding of low lanes begins.
        self.high_water = max(1, int(max_depth * shed_threshold))

    def admit(self, depth: int, request: Request) -> str | None:
        """``None`` to admit, else the rejection reason.

        Counts ``serving.admitted`` / ``serving.rejected`` (plus a
        per-reason counter) and records shed load as degradation events.
        """
        reason: str | None = None
        if request.deadline is not None and request.deadline.expired:
            reason = "deadline"
        elif depth >= self.max_depth:
            reason = "queue_full"
        elif (depth >= self.high_water
                and request.priority in self.shed_priorities):
            reason = "shed"
        if reason is None:
            metrics.counter("serving.admitted").inc()
            return None
        metrics.counter("serving.rejected").inc()
        metrics.counter(f"serving.rejected.{reason}").inc()
        if reason in ("queue_full", "shed"):
            metrics.counter("serving.shed").inc()
            degradation.record(
                component="serving", point=request.backend,
                action=f"shed:{reason}", priority=request.priority,
                depth=depth,
            )
        return reason
