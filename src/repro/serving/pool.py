"""Serving's view of the worker pool.

The thread-spawning implementation lives in :mod:`repro.par.pool` — the one
module under ``src/repro`` allowed to construct threads (CI-enforced) — so
the serving runtime and the offline :class:`repro.par.ParallelMap` share a
single sanctioned threading site.
This module re-exports :class:`WorkerPool` under its historic import path;
the :class:`~repro.serving.server.Server` keeps constructing
``WorkerPool("server", workers, fetch)`` exactly as before.
"""

from __future__ import annotations

from repro.par.pool import WorkerPool

__all__ = ["WorkerPool"]
