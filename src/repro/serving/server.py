"""The in-process serving runtime: one `Server`, many registered backends.

A :class:`Server` ties the serving pieces together around each registered
:class:`Backend`:

- ``submit()`` is the single front door: result-cache lookup → single-flight
  coalescing → admission control → the backend's
  :class:`~repro.serving.scheduler.MicroBatchScheduler`;
- a shared :class:`~repro.serving.pool.WorkerPool` drains every scheduler
  (round-robin), executing batches through the backend's
  :class:`~repro.resilience.CircuitBreaker`;
- failures degrade: a batch that the breaker refuses or the backend crashes
  on is re-served request-by-request from ``Backend.fallback`` (tier
  ``"degraded"``, recorded into the
  :class:`~repro.resilience.DegradationLog`), and only when there is no
  fallback does a request resolve with ``status="error"``.

``workers=0`` selects **serial mode**: nothing runs until :meth:`poll`
(ready batches) or :meth:`flush` (everything) executes batches inline on
the calling thread.  Serial mode on a
:class:`~repro.resilience.FakeClock` is how the scheduler/admission/cache
behavior is tested deterministically, with zero wall sleeps; it is also a
perfectly good deployment mode for single-threaded drivers.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import replace
from typing import Any

from repro.errors import CircuitOpenError, ServerClosedError, ServingError
from repro.obs import metrics, tracing
from repro.obs.metrics import SIZE_BUCKETS
from repro.resilience import (
    CircuitBreaker,
    Clock,
    Deadline,
    degradation,
    get_clock,
)
from repro.serving.admission import AdmissionController
from repro.serving.cache import ResultCache, SingleFlight
from repro.serving.envelope import (
    ERROR,
    EXPIRED,
    OK,
    REJECTED,
    Request,
    Response,
    ResponseFuture,
)
from repro.serving.pool import WorkerPool
from repro.serving.scheduler import MicroBatchScheduler

#: How long an idle worker waits before re-checking schedulers, when no
#: batch window is pending (a new offer notifies it immediately anyway).
IDLE_WAIT = 0.1


class Backend:
    """One servable capability: a batch function plus serving hooks.

    Subclasses implement :meth:`run_batch`; optionally :meth:`cache_key`
    (return a stable string to enable the result cache and single-flight
    coalescing for a payload, ``None`` to bypass both) and :meth:`fallback`
    (the degraded tier served when the breaker is open or the batch failed;
    the default re-raises, meaning "no degraded tier").
    """

    name = "backend"

    def run_batch(self, payloads: list[Any]) -> list[Any]:
        """Serve deduplicated payloads; must return one result per payload."""
        raise NotImplementedError

    def cache_key(self, payload: Any) -> str | None:
        return None

    def fallback(self, payload: Any, error: BaseException) -> Any:
        raise error


class _BackendEntry:
    def __init__(self, backend: Backend, scheduler: MicroBatchScheduler,
                 breaker: CircuitBreaker):
        self.backend = backend
        self.scheduler = scheduler
        self.breaker = breaker


class Server:
    """Micro-batching front end over registered backends."""

    def __init__(self, workers: int = 2, batch_window: float = 0.002,
                 max_batch: int = 16, max_depth: int = 256,
                 cache_capacity: int = 1024, cache_shards: int = 8,
                 cache_ttl: float | None = None,
                 clock: Clock | None = None):
        self._clock = clock or get_clock()
        self._defaults = dict(batch_window=batch_window, max_batch=max_batch,
                              max_depth=max_depth)
        self.cache = ResultCache(capacity=cache_capacity, shards=cache_shards,
                                 ttl=cache_ttl, clock=self._clock)
        self._flights = SingleFlight()
        self._cond = threading.Condition()
        self._backends: dict[str, _BackendEntry] = {}
        self._order: list[str] = []
        self._cursor = 0
        self._seq = itertools.count(1)
        self._closed = False
        self._pool: WorkerPool | None = None
        if workers:
            self._pool = WorkerPool("server", workers, self._fetch).start()

    # -- registration -------------------------------------------------------

    def register(self, backend: Backend, batch_window: float | None = None,
                 max_batch: int | None = None, max_depth: int | None = None,
                 shed_threshold: float = 0.75,
                 breaker: CircuitBreaker | None = None) -> "Server":
        """Add a backend under its ``.name`` with per-backend queue knobs."""
        if backend.name in self._backends:
            raise ServingError(f"backend {backend.name!r} already registered")
        admission = AdmissionController(
            max_depth=max_depth or self._defaults["max_depth"],
            shed_threshold=shed_threshold,
        )
        scheduler = MicroBatchScheduler(
            name=backend.name,
            batch_window=(self._defaults["batch_window"]
                          if batch_window is None else batch_window),
            max_batch=max_batch or self._defaults["max_batch"],
            admission=admission, clock=self._clock,
        )
        entry = _BackendEntry(
            backend, scheduler,
            breaker or CircuitBreaker(f"serving.{backend.name}",
                                      clock=self._clock),
        )
        with self._cond:
            self._backends[backend.name] = entry
            self._order.append(backend.name)
        return self

    def backend_names(self) -> list[str]:
        return list(self._order)

    # -- submission ---------------------------------------------------------

    def submit(self, backend: str, payload: Any, priority: str = "normal",
               timeout: float | None = None,
               trace: dict[str, Any] | None = None) -> ResponseFuture:
        """Enqueue one request; always returns a future, never raises for
        load reasons (backpressure resolves the future with ``rejected``)."""
        entry = self._backends.get(backend)
        if entry is None:
            raise ServingError(f"no backend registered as {backend!r}")
        if self._closed:
            raise ServerClosedError("server is closed")
        metrics.counter("serving.submitted").inc()
        tracer = tracing.get_tracer()
        # The request's root span: opened here, finished wherever the future
        # resolves (possibly a worker thread).  Its context rides the request
        # carrier so queue/batch spans attach under it across thread hops.
        root = tracer.start_span("serving.request", parent=tracing.current_context(),
                                 backend=backend, priority=priority)
        key = entry.backend.cache_key(payload)
        request = Request(
            payload=payload, backend=backend, priority=priority,
            deadline=(Deadline(timeout, clock=self._clock)
                      if timeout is not None else None),
            key=f"{backend}:{key}" if key is not None else None,
            trace=dict(trace or {}), id=next(self._seq), span=root,
        )
        tracing.inject(root.context, request.trace)
        future = ResponseFuture()
        with tracing.activate(root.context):
            if request.key is not None:
                with tracing.span("serving.cache", key=request.key) as cs:
                    hit, value = self.cache.get(request.key)
                    cs.set(hit=hit)
                if hit:
                    future.resolve(Response(OK, value=value, backend=backend,
                                            cache_hit=True))
                    tracer.finish_span(root, status=OK, cache_hit=True)
                    return future
                if not self._flights.claim(request.key, future):
                    # Joined an identical in-flight request; this trace ends
                    # here — the leader's trace owns the batch spans.
                    tracer.finish_span(root, status="coalesced")
                    return future
            with tracing.span("serving.admission", backend=backend) as asp:
                with self._cond:
                    reason = entry.scheduler.offer(request, future)
                    if reason is None:
                        self._cond.notify()
                asp.set(admitted=reason is None)
        if reason is not None:
            self._finish(request, Response(
                REJECTED, error=f"rejected: {reason}", backend=backend,
            ), future)
            return future
        if self._pool is None:
            self.poll()  # serial mode: run any size-triggered batch inline
        return future

    def call(self, backend: str, payload: Any, priority: str = "normal",
             timeout: float | None = None,
             trace: dict[str, Any] | None = None,
             wait: float | None = 30.0) -> Response:
        """Submit and wait — the blocking convenience path."""
        future = self.submit(backend, payload, priority=priority,
                             timeout=timeout, trace=trace)
        if self._pool is None and not future.done():
            self.flush()
        return future.result(wait)

    # -- execution ----------------------------------------------------------

    def poll(self, force: bool = False) -> int:
        """Run every currently-ready batch inline; returns batches run.

        The serial-mode engine, also usable alongside a pool (e.g. to drain
        deterministically in tests).  ``force=True`` ignores the batch
        window and size triggers — that is :meth:`flush`.
        """
        ran = 0
        while True:
            job = self._next_job(force=force)
            if job is None:
                return ran
            job()
            ran += 1

    def flush(self) -> int:
        """Drain every queued request regardless of batching triggers."""
        return self.poll(force=True)

    def close(self) -> None:
        """Stop accepting, stop the pool, then drain leftovers inline."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        if self._pool is not None:
            self._pool.join()
        self.flush()

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _next_job(self, force: bool = False):
        with self._cond:
            return self._next_job_locked(self._clock.monotonic(), force)

    def _next_job_locked(self, now: float, force: bool = False):
        for offset in range(len(self._order)):
            name = self._order[(self._cursor + offset) % len(self._order)]
            entry = self._backends[name]
            batch = entry.scheduler.next_batch(now, force=force)
            if batch:
                self._cursor = (self._cursor + offset + 1) % len(self._order)
                return lambda: self._execute(entry, batch)
        return None

    def _fetch(self):
        """Blocking work source for pool workers; ``None`` means exit."""
        with self._cond:
            while True:
                if self._closed:
                    return None
                job = self._next_job_locked(self._clock.monotonic())
                if job is not None:
                    return job
                hints = [
                    hint for hint in (
                        self._backends[name].scheduler.wait_hint()
                        for name in self._order
                    ) if hint is not None
                ]
                self._cond.wait(timeout=min(hints) if hints else IDLE_WAIT)

    def _execute(self, entry: _BackendEntry, batch: list) -> None:
        name = entry.backend.name
        started = self._clock.monotonic()
        tracer = tracing.get_tracer()
        metrics.histogram(f"serving.{name}.batch_size",
                          buckets=SIZE_BUCKETS).observe(len(batch))
        live = []
        for request, future in batch:
            # Queue wait, measured on the serving clock and attached to the
            # request's own trace (extracted from its carrier, so this works
            # on whichever thread runs the batch).
            tracer.record("serving.queue", started - request.enqueued_at,
                          parent=tracing.extract(request.trace), backend=name,
                          priority=request.priority)
            if request.deadline is not None and request.deadline.expired:
                metrics.counter("serving.expired").inc()
                self._finish(request, Response(
                    EXPIRED, error="deadline expired in queue",
                    backend=name,
                    queue_seconds=started - request.enqueued_at,
                ), future)
            else:
                live.append((request, future))
        if not live:
            return
        # The batch span lands in the first live request's trace; the other
        # requests in the batch keep their request/queue spans in their own
        # traces (the batch is shared work, owned by one trace).
        batch_ctx = tracing.extract(live[0][0].trace)
        with tracing.activate(batch_ctx), \
                tracing.span("serving.batch", backend=name, size=len(batch),
                             requests=len(live)):
            # Dedup identical payloads before dispatch: one backend slot per
            # distinct key (uncacheable requests stay distinct by id).
            groups: dict[Any, list] = {}
            for request, future in live:
                groups.setdefault(
                    request.key if request.key is not None else request.id, []
                ).append((request, future))
            uniques = [members[0][0].payload for members in groups.values()]
            if len(uniques) < len(live):
                metrics.counter("serving.batch.deduped").inc(
                    len(live) - len(uniques)
                )
            results: list[Any] | None = None
            failure: BaseException | None = None
            if entry.breaker.allow():
                try:
                    with tracing.span("serving.backend", backend=name,
                                      size=len(uniques)):
                        results = entry.backend.run_batch(uniques)
                    if len(results) != len(uniques):
                        raise ServingError(
                            f"backend {name!r} returned {len(results)} "
                            f"results for {len(uniques)} payloads"
                        )
                    entry.breaker.record_success()
                except Exception as exc:  # noqa: BLE001 - degrade below
                    entry.breaker.record_failure()
                    metrics.counter(f"serving.{name}.batch_failures").inc()
                    results, failure = None, exc
            else:
                failure = CircuitOpenError(
                    f"circuit serving.{name} is {entry.breaker.state}"
                )
            service = self._clock.monotonic() - started
            metrics.histogram(f"serving.{name}.batch.seconds").observe(service)
            for index, members in enumerate(groups.values()):
                response = self._group_response(
                    entry, members[0][0], results, index, failure,
                    batch_size=len(live), service=service, started=started,
                )
                for request, future in members:
                    self._finish(request, replace(
                        response,
                        queue_seconds=started - request.enqueued_at,
                    ), future)

    def _group_response(self, entry: _BackendEntry, request: Request,
                        results: list[Any] | None, index: int,
                        failure: BaseException | None, batch_size: int,
                        service: float, started: float) -> Response:
        name = entry.backend.name
        if results is not None:
            if request.key is not None:
                self.cache.put(request.key, results[index])
            return Response(OK, value=results[index], backend=name,
                            batch_size=batch_size, service_seconds=service)
        try:
            value = entry.backend.fallback(request.payload, failure)
        except Exception as exc:  # noqa: BLE001 - no degraded tier
            metrics.counter("serving.errors").inc()
            return Response(ERROR, error=str(exc), backend=name,
                            batch_size=batch_size, service_seconds=service)
        metrics.counter("serving.degraded").inc()
        degradation.record(component="serving", point=name,
                           action="served:degraded", error=str(failure))
        return Response(OK, value=value, backend=name, tier="degraded",
                        batch_size=batch_size, service_seconds=service)

    def _finish(self, request: Request, response: Response,
                future: ResponseFuture) -> None:
        """Resolve a request's future plus any coalesced flight joiners."""
        metrics.counter(f"serving.completed.{response.status}").inc()
        if response.ok and not response.cache_hit:
            metrics.histogram("serving.e2e.seconds").observe(
                response.queue_seconds + response.service_seconds
            )
        future.resolve(response)
        if request.span is not None:
            tracing.get_tracer().finish_span(
                request.span, status=response.status, tier=response.tier,
            )
        if request.key is not None:
            for joiner in self._flights.resolve(request.key):
                if joiner is not future:
                    joiner.resolve(replace(response, coalesced=True))
