"""Typed request/response envelopes for the serving runtime.

Every submission becomes a :class:`Request` carrying its payload plus the
scheduling metadata the runtime acts on — priority lane, optional
:class:`~repro.resilience.Deadline`, cache key and trace attributes — and
resolves to exactly one :class:`Response`.  Backpressure is a *value*, not
an exception: an overloaded server answers with ``status="rejected"``
(the in-process analogue of HTTP 429), so load shedding never unwinds a
caller's stack.

Callers hold a :class:`ResponseFuture` between submit and resolution; its
``result()`` blocks on a :class:`threading.Event` (a wait, never a sleep),
so serial-mode tests on a :class:`~repro.resilience.FakeClock` resolve it
without any wall time passing.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ServingError
from repro.resilience import Deadline

#: Priority lanes, drained highest-first; FIFO within a lane.
PRIORITIES = ("high", "normal", "low")

#: Response statuses.  ``ok`` is the only success; ``rejected`` is admission
#: backpressure, ``expired`` a deadline missed in queue, ``error`` a backend
#: failure no degraded tier could absorb.
OK, REJECTED, EXPIRED, ERROR = "ok", "rejected", "expired", "error"
STATUSES = (OK, REJECTED, EXPIRED, ERROR)


@dataclass
class Request:
    """One unit of work: the payload plus everything the scheduler needs."""

    payload: Any
    backend: str = ""
    priority: str = "normal"
    deadline: Deadline | None = None
    #: Backend-scoped result-cache key; ``None`` marks the payload uncacheable
    #: (it then also skips single-flight coalescing).
    key: str | None = None
    #: Trace carrier: user-supplied attributes plus the injected
    #: ``traceparent`` linking queue/batch spans back to the submit-side
    #: request span (see repro.obs.tracing.inject/extract).
    trace: dict[str, Any] = field(default_factory=dict)
    id: int = 0
    #: Clock time at admission; queue latency is measured from here.
    enqueued_at: float = 0.0
    #: The open ``serving.request`` span, finished when the future resolves.
    span: Any = None

    def __post_init__(self):
        if self.priority not in PRIORITIES:
            raise ServingError(
                f"priority must be one of {PRIORITIES}, got {self.priority!r}"
            )


@dataclass
class Response:
    """The resolution of one request — success, rejection, or failure."""

    status: str
    value: Any = None
    error: str = ""
    backend: str = ""
    #: ``"served"`` for a real backend result, ``"degraded"`` when the
    #: backend's fallback tier answered (breaker open / batch failure).
    tier: str = "served"
    cache_hit: bool = False
    #: True when this response was copied from another identical in-flight
    #: request (single-flight deduplication) rather than computed.
    coalesced: bool = False
    #: Size of the micro-batch that served this request (0 off the fast path).
    batch_size: int = 0
    queue_seconds: float = 0.0
    service_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == OK

    @property
    def rejected(self) -> bool:
        return self.status == REJECTED

    @property
    def degraded(self) -> bool:
        return self.tier == "degraded"


class ResponseFuture:
    """A write-once slot a caller can wait on for its :class:`Response`."""

    def __init__(self):
        self._event = threading.Event()
        self._response: Response | None = None

    def done(self) -> bool:
        return self._event.is_set()

    def resolve(self, response: Response) -> None:
        """Fulfil the future (idempotent; the first resolution wins)."""
        if self._response is None:
            self._response = response
            self._event.set()

    def result(self, timeout: float | None = None) -> Response:
        """Block until resolved; raise :class:`ServingError` on timeout."""
        if not self._event.wait(timeout):
            raise ServingError(
                f"response not ready within {timeout:g}s"
            )
        assert self._response is not None
        return self._response
