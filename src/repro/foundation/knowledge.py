"""The foundation model's internal knowledge: a fact store with a cutoff.

Real foundation models embed world knowledge learned at training time and
cannot see anything newer (tutorial §3.1: "lack of access to current
information").  We reproduce both properties explicitly: facts carry an
``as_of`` stamp and the store refuses to surface facts newer than its
``cutoff``.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.text.similarity import jaro_winkler_similarity


@dataclass(frozen=True)
class Fact:
    """A (subject, relation, object) triple with a recency stamp."""

    subject: str
    relation: str
    obj: str
    as_of: int = 0  # 0 = timeless / part of the original training corpus


class FactStore:
    """Indexed triple store with alias resolution and fuzzy subject lookup."""

    def __init__(self, facts: list[tuple[str, str, str]] | None = None,
                 cutoff: int | None = None):
        self.cutoff = cutoff
        self._by_subject: dict[str, list[Fact]] = defaultdict(list)
        self._facts: list[Fact] = []
        if facts:
            for subject, relation, obj in facts:
                self.add(subject, relation, obj)

    def add(self, subject: str, relation: str, obj: str, as_of: int = 0) -> None:
        fact = Fact(subject.lower(), relation, obj.lower(), as_of)
        self._facts.append(fact)
        self._by_subject[fact.subject].append(fact)

    def __len__(self) -> int:
        return sum(1 for f in self._facts if self._visible(f))

    def _visible(self, fact: Fact) -> bool:
        return self.cutoff is None or fact.as_of <= self.cutoff

    def lookup(self, subject: str, relation: str | None = None) -> list[Fact]:
        """Facts about ``subject`` (exact match), newest-first if stamped."""
        found = [
            f for f in self._by_subject.get(subject.lower(), [])
            if self._visible(f) and (relation is None or f.relation == relation)
        ]
        return sorted(found, key=lambda f: -f.as_of)

    def object_of(self, subject: str, relation: str) -> str | None:
        """The object of the newest visible fact, or None."""
        found = self.lookup(subject, relation)
        return found[0].obj if found else None

    def canonical(self, name: str) -> str:
        """Resolve aliases: 'apex tech' -> 'apex'.  Unknown names pass through."""
        target = self.object_of(name, "alias_of") or self.object_of(name, "synonym_of")
        return target if target is not None else name.lower()

    def subjects(self, relation: str | None = None) -> list[str]:
        """All subjects having at least one visible fact (of ``relation``)."""
        out = []
        for subject, facts in self._by_subject.items():
            if any(
                self._visible(f) and (relation is None or f.relation == relation)
                for f in facts
            ):
                out.append(subject)
        return sorted(out)

    def fuzzy_subject(self, name: str, min_similarity: float = 0.87) -> str | None:
        """Best known subject within Jaro-Winkler ``min_similarity`` of ``name``.

        This is the mechanism behind the foundation model "recognizing" a
        typo'd entity: ``seattl`` resolves to ``seattle`` because the clean
        form was in the training corpus.
        """
        name = name.lower()
        if name in self._by_subject and any(
            self._visible(f) for f in self._by_subject[name]
        ):
            return name
        best_score, best = min_similarity, None
        for subject in self._by_subject:
            if not any(self._visible(f) for f in self._by_subject[subject]):
                continue
            score = jaro_winkler_similarity(name, subject)
            if score > best_score:
                best_score, best = score, subject
        return best

    def knows(self, subject: str) -> bool:
        return bool(self.lookup(subject))
