"""A MRKL-style modular neuro-symbolic router (Jurassic-X, tutorial §3.1(3)).

"A modular architecture ... and a router that routes every incoming query to
a module that can best respond to the input, where a module could be a
language model, a math calculator, a currency converter, or an API call to a
database."  Each module here declares how confident it is that it can handle
a query; the router dispatches to the most confident one, with the foundation
model as the universal fallback.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.datasets.world import CURRENCY_TO_USD, UNIT_RATIOS
from repro.errors import ParseError
from repro.foundation.model import Completion, FoundationModel, _format_number
from repro.foundation.prompts import qa_prompt
from repro.sql import Database


@dataclass
class Routed:
    """A completion plus which module produced it."""

    module: str
    completion: Completion


class Module:
    """A MRKL module: reports a confidence it can handle a query, then runs."""

    name = "module"

    def can_handle(self, query: str) -> float:
        raise NotImplementedError

    def run(self, query: str) -> Completion:
        raise NotImplementedError


_EXPR_RE = re.compile(r"(-?\d+(?:\.\d+)?(?:\s*[+\-*/]\s*-?\d+(?:\.\d+)?)+)")


class CalculatorModule(Module):
    """Exact arithmetic over + - * / chains (left-to-right with precedence)."""

    name = "calculator"

    def can_handle(self, query: str) -> float:
        return 0.95 if _EXPR_RE.search(query) else 0.0

    def run(self, query: str) -> Completion:
        match = _EXPR_RE.search(query)
        if not match:
            raise ParseError(f"calculator cannot parse: {query!r}")
        value = _eval_arithmetic(match.group(1))
        return Completion(_format_number(value), confidence=1.0)


def _eval_arithmetic(expr: str) -> float:
    """Evaluate an arithmetic chain with * / binding tighter than + -.

    ``-`` always tokenizes as an operator except at the very start of the
    expression, where it negates the first operand.
    """
    compact = expr.replace(" ", "")
    negate_first = compact.startswith("-")
    if negate_first:
        compact = compact[1:]
    tokens = re.findall(r"\d+(?:\.\d+)?|[+\-*/]", compact)
    if negate_first and tokens:
        tokens[0] = "-" + tokens[0]
    # Pass 1: fold * and /.
    folded: list[str | float] = []
    i = 0
    while i < len(tokens):
        token = tokens[i]
        if token in ("*", "/"):
            left = float(folded.pop())
            right = float(tokens[i + 1])
            if token == "/" and right == 0:
                raise ZeroDivisionError("division by zero")
            folded.append(left * right if token == "*" else left / right)
            i += 2
        else:
            folded.append(token)
            i += 1
    # Pass 2: fold + and -.
    result = float(folded[0])
    i = 1
    while i < len(folded):
        op = folded[i]
        value = float(folded[i + 1])
        result = result + value if op == "+" else result - value
        i += 2
    return result


class CurrencyModule(Module):
    """Converts between the world's currencies through USD."""

    name = "currency"

    _RE = re.compile(
        r"convert\s+(-?\d+(?:\.\d+)?)\s+([a-z ]+?)\s+to\s+([a-z ]+)"
    )

    def can_handle(self, query: str) -> float:
        match = self._RE.search(query.lower())
        if not match:
            return 0.0
        _amount, src, dst = match.groups()
        known = src.strip() in CURRENCY_TO_USD and dst.strip() in CURRENCY_TO_USD
        return 0.9 if known else 0.0

    def run(self, query: str) -> Completion:
        match = self._RE.search(query.lower())
        if not match:
            raise ParseError(f"currency module cannot parse: {query!r}")
        amount, src, dst = match.groups()
        usd = float(amount) * CURRENCY_TO_USD[src.strip()]
        converted = usd / CURRENCY_TO_USD[dst.strip()]
        return Completion(_format_number(round(converted, 4)), confidence=1.0)


class UnitModule(Module):
    """Converts between physical units with fixed ratios."""

    name = "units"

    _RE = re.compile(r"(-?\d+(?:\.\d+)?)\s*([a-z]+)\s+(?:to|in)\s+([a-z]+)")

    def can_handle(self, query: str) -> float:
        match = self._RE.search(query.lower())
        if not match:
            return 0.0
        _value, src, dst = match.groups()
        return 0.85 if self._ratio(src, dst) is not None or (src, dst) == ("celsius", "fahrenheit") else 0.0

    @staticmethod
    def _ratio(src: str, dst: str) -> float | None:
        if (src, dst) in UNIT_RATIOS and UNIT_RATIOS[(src, dst)] is not None:
            return UNIT_RATIOS[(src, dst)]
        if (dst, src) in UNIT_RATIOS and UNIT_RATIOS[(dst, src)] is not None:
            return 1.0 / UNIT_RATIOS[(dst, src)]
        return None

    def run(self, query: str) -> Completion:
        match = self._RE.search(query.lower())
        if not match:
            raise ParseError(f"unit module cannot parse: {query!r}")
        value, src, dst = match.groups()
        if (src, dst) == ("celsius", "fahrenheit"):
            return Completion(
                _format_number(float(value) * 9 / 5 + 32), confidence=1.0
            )
        if (dst, src) == ("celsius", "fahrenheit"):
            return Completion(
                _format_number((float(value) - 32) * 5 / 9), confidence=1.0
            )
        ratio = self._ratio(src, dst)
        if ratio is None:
            raise ParseError(f"no conversion {src} -> {dst}")
        return Completion(_format_number(round(float(value) * ratio, 4)), confidence=1.0)


class DatabaseModule(Module):
    """Executes SQL against an attached :class:`~repro.sql.Database`."""

    name = "database"

    def __init__(self, db: Database):
        self.db = db

    def can_handle(self, query: str) -> float:
        return 0.99 if query.strip().lower().startswith("select ") else 0.0

    def run(self, query: str) -> Completion:
        result = self.db.query(query)
        if result.num_rows == 1 and result.num_columns == 1:
            value = result.row(0)[0]
            return Completion("null" if value is None else str(value), confidence=1.0)
        return Completion(result.to_csv().strip(), confidence=1.0)


class FoundationModule(Module):
    """The fallback: send the query to the foundation model as a QA prompt."""

    name = "foundation"

    def __init__(self, model: FoundationModel):
        self.model = model

    def can_handle(self, query: str) -> float:
        return 0.1  # always willing, never preferred

    def run(self, query: str) -> Completion:
        return self.model.complete(qa_prompt(query))


class MRKLRouter:
    """Routes each query to the most confident module."""

    def __init__(self, modules: list[Module]):
        if not modules:
            raise ValueError("router needs at least one module")
        self.modules = list(modules)

    @classmethod
    def standard(cls, model: FoundationModel, db: Database | None = None) -> "MRKLRouter":
        """The tutorial's module set: calculator, currency, units, database, FM."""
        modules: list[Module] = [
            CalculatorModule(), CurrencyModule(), UnitModule()
        ]
        if db is not None:
            modules.append(DatabaseModule(db))
        modules.append(FoundationModule(model))
        return cls(modules)

    def route(self, query: str) -> Routed:
        """Pick the module with the highest ``can_handle`` score and run it."""
        best = max(self.modules, key=lambda m: m.can_handle(query))
        return Routed(module=best.name, completion=best.run(query))

    def answer(self, query: str) -> str:
        return self.route(query).completion.text
