"""The textual prompt protocol of the simulated foundation model.

Prompts follow the GPT-3-era convention the tutorial demonstrates:

.. code-block:: text

    Task: fix the misspelled city in each record
    Input: city: seattl
    Output: seattle
    Input: city: bostn
    Output:

A :func:`parse_prompt` call recovers the task description, the few-shot
demonstrations (complete Input/Output pairs) and the final query (the Input
with no Output).  Builders below construct well-formed prompts for the data
preparation tasks covered in §3.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ParseError


@dataclass
class Prompt:
    """A parsed prompt: instructions + k demonstrations + one query."""

    task: str
    demonstrations: list[tuple[str, str]] = field(default_factory=list)
    query: str = ""

    @property
    def num_shots(self) -> int:
        return len(self.demonstrations)

    def render(self) -> str:
        """Serialize back to prompt text."""
        lines = [f"Task: {self.task}"]
        for given, expected in self.demonstrations:
            lines.append(f"Input: {given}")
            lines.append(f"Output: {expected}")
        lines.append(f"Input: {self.query}")
        lines.append("Output:")
        return "\n".join(lines)


def parse_prompt(text: str) -> Prompt:
    """Parse prompt text into a :class:`Prompt`.

    Raises :class:`ParseError` when the text has no Task line or no trailing
    open query.
    """
    task = None
    demonstrations: list[tuple[str, str]] = []
    pending_input: str | None = None
    query: str | None = None
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.lower().startswith("task:"):
            task = line[5:].strip()
        elif line.lower().startswith("input:"):
            if pending_input is not None:
                raise ParseError("two Input lines without an Output between them")
            pending_input = line[6:].strip()
        elif line.lower().startswith("output:"):
            answer = line[7:].strip()
            if pending_input is None:
                raise ParseError("Output line with no preceding Input")
            if answer:
                demonstrations.append((pending_input, answer))
            else:
                query = pending_input
            pending_input = None
        else:
            raise ParseError(f"unrecognized prompt line: {line!r}")
    if task is None:
        raise ParseError("prompt has no Task line")
    if query is None:
        if pending_input is not None:
            query = pending_input
        else:
            raise ParseError("prompt has no open query (Input with empty Output)")
    return Prompt(task=task, demonstrations=demonstrations, query=query)


# -- builders ------------------------------------------------------------------


def cleaning_prompt(attribute: str,
                    demonstrations: list[tuple[str, str]] | None = None,
                    value: str = "") -> str:
    """Prompt asking the model to correct an attribute value."""
    prompt = Prompt(
        task=f"fix the erroneous {attribute} value in each record",
        demonstrations=list(demonstrations or []),
        query=value,
    )
    return prompt.render()


def imputation_prompt(attribute: str, record: str,
                      demonstrations: list[tuple[str, str]] | None = None) -> str:
    """Prompt asking the model to fill in a missing attribute value."""
    prompt = Prompt(
        task=f"impute the missing {attribute} for each record",
        demonstrations=list(demonstrations or []),
        query=record,
    )
    return prompt.render()


def matching_prompt(left: str, right: str,
                    demonstrations: list[tuple[str, str]] | None = None) -> str:
    """Prompt asking whether two records refer to the same entity."""
    prompt = Prompt(
        task="do the two records refer to the same entity? answer yes or no",
        demonstrations=list(demonstrations or []),
        query=f"record a: {left} ||| record b: {right}",
    )
    return prompt.render()


def matching_demo(left: str, right: str, is_match: bool) -> tuple[str, str]:
    """A demonstration pair for :func:`matching_prompt`."""
    return (f"record a: {left} ||| record b: {right}", "yes" if is_match else "no")


def qa_prompt(question: str) -> str:
    """Open-domain question prompt (zero-shot)."""
    return Prompt(task="answer the question", query=question).render()
