"""Retro-style retrieval augmentation (tutorial §3.1(3)).

"Retro ... enhances foundation models by conditioning on data chunks
retrieved from a large corpus."  The chunks are explicit documents, not
knowledge baked into weights — so a Retro-augmented model answers correctly
about facts newer than the base model's knowledge cutoff, which is the E4
experiment.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.foundation.model import Completion, FoundationModel
from repro.text.tfidf import TfidfIndex

#: Relation phrasings recognized inside retrieved chunks.  Each maps a
#: question pattern to a statement pattern whose group(1) is the answer.
_EXTRACTORS: list[tuple[re.Pattern, str]] = [
    (re.compile(r"capital of ([a-z ]+)"), "the capital of {subject} is ([a-z ]+)"),
    (re.compile(r"currency of ([a-z ]+)"), "the currency of {subject} is (?:the )?([a-z ]+)"),
    (re.compile(r"who makes (?:the )?([a-z0-9 ]+)"), "{subject} is (?:a|an) [a-z ]+ made by ([a-z0-9 ]+)"),
    (re.compile(r"ceo of ([a-z0-9 ]+)"), "the ceo of {subject} is ([a-z ]+)"),
    (re.compile(r"where is ([a-z0-9 ]+) headquartered"), "{subject} is (?:a company )?headquartered in ([a-z ]+)"),
]


@dataclass
class RetroAnswer:
    """Answer plus provenance: the chunks that supported it."""

    text: str
    supporting_chunks: list[int]
    used_retrieval: bool


class RetroModel:
    """A foundation model conditioned on retrieved document chunks."""

    def __init__(self, base: FoundationModel, documents: list[str], top_k: int = 3):
        self.base = base
        self.documents = [d.lower() for d in documents]
        self.top_k = top_k
        self._index = TfidfIndex(self.documents) if documents else None

    def retrieve(self, question: str) -> list[tuple[int, float]]:
        """Top-k chunks for the question by TF-IDF cosine."""
        if self._index is None:
            return []
        return self._index.search(question.lower(), k=self.top_k)

    def answer(self, question: str) -> RetroAnswer:
        """Try to extract the answer from retrieved chunks; fall back to the
        base model's parametric knowledge when no chunk supports one."""
        question = question.lower().strip().rstrip("?")
        hits = self.retrieve(question)
        for question_re, statement_template in _EXTRACTORS:
            q_match = question_re.search(question)
            if not q_match:
                continue
            subject = q_match.group(1).strip()
            statement_re = re.compile(
                statement_template.format(subject=re.escape(subject))
            )
            for chunk_id, _score in hits:
                s_match = statement_re.search(self.documents[chunk_id])
                if s_match:
                    return RetroAnswer(
                        text=s_match.group(1).strip(),
                        supporting_chunks=[chunk_id],
                        used_retrieval=True,
                    )
        fallback = self.base.complete(
            f"Task: answer the question\nInput: {question}\nOutput:"
        )
        return RetroAnswer(
            text=fallback.text, supporting_chunks=[], used_retrieval=False
        )

    def closed_book(self, question: str) -> Completion:
        """The unaugmented baseline: parametric knowledge only."""
        return self.base.complete(
            f"Task: answer the question\nInput: {question}\nOutput:"
        )
