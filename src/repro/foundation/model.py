"""The simulated foundation model (tutorial §3.1).

``FoundationModel.complete`` takes a textual prompt (see
:mod:`repro.foundation.prompts`) and produces a completion, the way GPT-3 on
Azure does in the tutorial's demos.  The simulation is *mechanistic*, not a
lookup of canned answers — each capability and each limitation the tutorial
discusses has an explicit mechanism:

- **world knowledge**: a :class:`~repro.foundation.knowledge.FactStore`
  distilled from the same corpus the embedders pre-train on;
- **zero-shot vs few-shot**: demonstrations calibrate the decision threshold
  (matching) or select among candidate repair functions (cleaning), so
  accuracy rises with the number of shots — the Figure-1 shape;
- **knowledge cutoff**: facts stamped after the cutoff are invisible —
  exactly the failure Retro repairs (E4);
- **weak precise reasoning**: arithmetic over large operands is corrupted
  deterministically — exactly the failure MRKL routing repairs (E3).
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, replace
from typing import Callable, Sequence

from repro.foundation.knowledge import FactStore
from repro.foundation.prompts import Prompt, parse_prompt
from repro.obs import metrics
from repro.obs.instrument import timed
from repro.resilience import FallbackChain, RetryPolicy, faults
from repro.text.similarity import jaccard_similarity, jaro_winkler_similarity
from repro.text.tokenize import words

#: Attribute-name → fact-relation mapping used for imputation.
_IMPUTE_RELATIONS = {
    "category": "is_a",
    "type": "is_a",
    "brand": "made_by",
    "maker": "made_by",
    "manufacturer": "made_by",
    "city": "located_in",
    "cuisine": "serves",
    "capital": "capital",
    "currency": "currency",
    "venue": "published_at",
    "year": "published_in",
    "country": "headquartered_in",
}

_ARITH_RE = re.compile(
    r"(-?\d+(?:\.\d+)?)\s*([+\-*/x])\s*(-?\d+(?:\.\d+)?)"
)


@dataclass
class Completion:
    """A model completion with the model's self-estimated confidence.

    ``tier`` records which fallback tier served it: ``"fm"`` for a real
    completion, the tier's name (e.g. ``"plm"``, ``"degraded"``) when the
    model itself failed and a lower tier answered instead.
    """

    text: str
    confidence: float = 0.5
    tier: str = "fm"

    def __str__(self) -> str:
        return self.text

    @property
    def degraded(self) -> bool:
        return self.tier != "fm"


#: A completion fallback tier: parsed prompt → (task kind, completion).
CompletionTier = Callable[[Prompt], tuple[str, Completion]]


class RepairFunction:
    """A named candidate transformation the cleaning task selects among."""

    def __init__(self, name: str, fn, priority: int):
        self.name = name
        self.fn = fn
        self.priority = priority  # lower = tried earlier in zero-shot

    def __call__(self, value: str, store: FactStore) -> str:
        return self.fn(value, store)


def _repair_dictionary(value: str, store: FactStore) -> str:
    """Fuzzy-canonicalize against known entity names (fixes misspellings)."""
    subject = store.fuzzy_subject(value.lower().strip())
    return subject if subject is not None else value


def _repair_alias(value: str, store: FactStore) -> str:
    """Replace an alias with its canonical name ('apex tech' -> 'apex').

    Deliberately case-sensitive: shouting aliases ("APEX TECH") need a case
    repair composed in front, which is how mixed error types stay distinct
    for few-shot task inference.  (The fact store itself is case-insensitive,
    so the check happens here.)
    """
    trimmed = value.strip()
    if trimmed != trimmed.lower():
        return value
    return store.canonical(trimmed)

def _repair_case(value: str, store: FactStore) -> str:
    return value.lower()


def _repair_whitespace(value: str, store: FactStore) -> str:
    collapsed = re.sub(r"[^0-9a-zA-Z]+", " ", value)
    return re.sub(r"\s+", " ", collapsed).strip().lower()


def _repair_identity(value: str, store: FactStore) -> str:
    return value


REPAIRS = [
    RepairFunction("dictionary", _repair_dictionary, priority=0),
    RepairFunction("alias", _repair_alias, priority=1),
    RepairFunction("whitespace", _repair_whitespace, priority=2),
    RepairFunction("case", _repair_case, priority=3),
    RepairFunction("identity", _repair_identity, priority=4),
]


class FoundationModel:
    """A prompt-in / text-out model with explicit knowledge and limitations.

    Completion is resilient by default: each ``complete`` call passes the
    ``fm.complete`` chaos injection point, retries transient faults on
    ``retry`` (deterministic backoff, injectable clock), then degrades down
    a fallback chain — any caller-supplied ``fallback_tiers`` (e.g. a PLM
    answerer) and finally a rule-free echo tier, so the model *always
    produces something* unless ``strict=True`` asks for the raw failure.
    """

    #: Default retry for transient completion faults: fast, tightly bounded.
    DEFAULT_RETRY = RetryPolicy(max_attempts=5, base_delay=0.001,
                                max_delay=0.05)

    def __init__(self, store: FactStore, seed: int = 0,
                 arithmetic_precision: int = 2,
                 retry: RetryPolicy | None = None,
                 fallback_tiers: list[tuple[str, "CompletionTier"]] | None = None):
        self.store = store
        self.seed = seed
        #: Operand digit count up to which arithmetic is exact.  Mirrors the
        #: empirical observation that LLMs do small-number math reliably but
        #: drift on long operands.
        self.arithmetic_precision = arithmetic_precision
        self.retry = retry or self.DEFAULT_RETRY
        self.fallback_tiers = list(fallback_tiers or [])

    # -- public API ---------------------------------------------------------

    def complete(self, prompt_text: str, strict: bool = False) -> Completion:
        """Answer a textual prompt (the GPT-3-style API).

        ``strict=True`` skips the fallback chain: transient faults are still
        retried, but exhaustion raises instead of degrading — callers that
        run their own fallback (e.g. :class:`FallbackMatcher`) use this.
        """
        with timed("fm.complete.seconds", span_name="fm.complete",
                   strict=strict) as fm_span:
            metrics.counter("fm.prompts").inc()
            prompt = parse_prompt(prompt_text)
            if prompt.demonstrations:
                metrics.counter("fm.prompts.few_shot").inc()

            def primary(p: Prompt) -> tuple[str, Completion]:
                def attempt() -> tuple[str, Completion]:
                    faults.point("fm.complete")
                    kind, completion = self._dispatch(p)
                    completion.text = faults.corrupt("fm.complete",
                                                     completion.text)
                    return kind, completion
                return self.retry.call(attempt, name="fm.complete")

            if strict:
                kind, completion = primary(prompt)
            else:
                tiers: list[tuple[str, "CompletionTier"]] = [("fm", primary)]
                tiers.extend(self.fallback_tiers)
                # The floor: echo the query with rock-bottom confidence — a
                # foundation model always produces *something*.
                tiers.append(("degraded", lambda p: (
                    "degraded", Completion(p.query, confidence=0.05)
                )))
                (kind, completion), tier = FallbackChain(
                    "fm.complete", tiers
                ).serve(prompt)
                completion.tier = tier
            metrics.counter(f"fm.completions.{kind}").inc()
            fm_span.set(kind=kind)
        return completion

    def complete_batch(self, prompts: Sequence[str],
                       strict: bool = False) -> list[Completion]:
        """Answer several prompts at once, deduplicating identical prompts.

        Identical prompt texts are completed exactly once and the result is
        fanned back out in input order (each caller gets its own
        :class:`Completion` copy), so a batch dominated by repeats costs
        one model call per *distinct* prompt — the dispatch-side half of
        the amortization :mod:`repro.serving` builds on.  Batch sizes land
        in the ``fm.batch_size`` histogram; ``fm.batch.deduped`` counts the
        prompts answered by fan-out rather than completion.
        """
        from repro.obs.metrics import SIZE_BUCKETS

        prompts = list(prompts)
        metrics.counter("fm.batches").inc()
        metrics.histogram("fm.batch_size", buckets=SIZE_BUCKETS).observe(
            len(prompts)
        )
        unique: dict[str, Completion] = {}
        for text in prompts:
            if text not in unique:
                unique[text] = self.complete(text, strict=strict)
        if len(unique) < len(prompts):
            metrics.counter("fm.batch.deduped").inc(
                len(prompts) - len(unique)
            )
        return [replace(unique[text]) for text in prompts]

    def _dispatch(self, prompt: Prompt) -> tuple[str, Completion]:
        """Route a parsed prompt to its task mechanism → (kind, completion)."""
        task = prompt.task.lower()
        if "same entity" in task or "yes or no" in task:
            return "matching", self._do_matching(prompt)
        if task.startswith("fix"):
            return "cleaning", self._do_cleaning(prompt)
        if "impute" in task or "missing" in task:
            return "imputation", self._do_imputation(prompt)
        if "answer" in task or "question" in task:
            return "qa", self._do_qa(prompt)
        # Unknown task: echo with low confidence.
        return "unknown", Completion(prompt.query, confidence=0.1)

    # -- entity matching ------------------------------------------------------

    def match_score(self, left: str, right: str) -> float:
        """Knowledge-aware similarity in [0, 1].

        Tokens are canonicalized through the fact store first, so aliases and
        category synonyms count as equal — the "world knowledge" advantage
        over plain string similarity.
        """
        left_canon = self._canonicalize_text(left)
        right_canon = self._canonicalize_text(right)
        jac = jaccard_similarity(left_canon, right_canon)
        jw = jaro_winkler_similarity(left_canon, right_canon)
        return 0.65 * jac + 0.35 * jw

    def _canonicalize_text(self, text: str) -> str:
        tokens = words(text)
        out: list[str] = []
        i = 0
        while i < len(tokens):
            # Greedily try two-token aliases ("apex tech"), then single.
            if i + 1 < len(tokens):
                two = f"{tokens[i]} {tokens[i + 1]}"
                canon = self.store.canonical(two)
                if canon != two:
                    out.extend(words(canon))
                    i += 2
                    continue
            canon = self.store.canonical(tokens[i])
            out.extend(words(canon))
            i += 1
        return " ".join(out)

    #: Zero-shot decision threshold for matching.  A fixed prior the model
    #: ships with; few-shot demonstrations re-calibrate it per dataset.
    ZERO_SHOT_MATCH_THRESHOLD = 0.65

    def _do_matching(self, prompt: Prompt) -> Completion:
        threshold = self.ZERO_SHOT_MATCH_THRESHOLD
        if prompt.demonstrations:
            threshold = self._calibrate_threshold(prompt.demonstrations)
        left, right = self._split_pair(prompt.query)
        score = self.match_score(left, right)
        answer = "yes" if score >= threshold else "no"
        return Completion(answer, confidence=abs(score - threshold) + 0.5)

    def _calibrate_threshold(self, demos: list[tuple[str, str]]) -> float:
        """Pick the threshold that best separates the demonstrations.

        More demonstrations → a better threshold estimate; this is the
        mechanism that makes few-shot beat zero-shot on matching.
        """
        scored = []
        for given, expected in demos:
            left, right = self._split_pair(given)
            scored.append(
                (self.match_score(left, right), expected.strip().lower() == "yes")
            )
        candidates = sorted({s for s, _lab in scored})
        midpoints = [self.ZERO_SHOT_MATCH_THRESHOLD]
        for a, b in zip(candidates, candidates[1:]):
            midpoints.append((a + b) / 2.0)
        # Among equally-accurate thresholds, prefer the one closest to the
        # zero-shot prior: with few demonstrations many thresholds tie, and
        # an unregularized pick overfits the sample.
        midpoints.sort(key=lambda t: abs(t - self.ZERO_SHOT_MATCH_THRESHOLD))
        best_threshold, best_correct = self.ZERO_SHOT_MATCH_THRESHOLD, -1
        for t in midpoints:
            correct = sum(
                1 for s, is_match in scored if (s >= t) == is_match
            )
            if correct > best_correct:
                best_correct, best_threshold = correct, t
        return best_threshold

    @staticmethod
    def _split_pair(query: str) -> tuple[str, str]:
        if "|||" in query:
            left, right = query.split("|||", 1)
            left = left.split(":", 1)[-1].strip()
            right = right.split(":", 1)[-1].strip()
            return left, right
        return query, ""

    # -- data cleaning ----------------------------------------------------------

    #: Order in which unlocked repairs compose: surface normalization first,
    #: then alias resolution, then dictionary canonicalization.
    _REPAIR_ORDER = ("case", "whitespace", "alias", "dictionary")

    def _do_cleaning(self, prompt: Prompt) -> Completion:
        unlocked = self._infer_repairs(prompt.demonstrations)
        by_name = {r.name: r for r in REPAIRS}
        fixed = prompt.query
        for name in self._REPAIR_ORDER:
            if name in unlocked:
                repaired = by_name[name](fixed, self.store)
                if repaired != fixed:
                    # Hit: this repair function actually changed the value.
                    metrics.counter(f"fm.repair.{name}.hits").inc()
                fixed = repaired
        if fixed == prompt.query:
            # Nothing the demonstrations taught applied — fall back to the
            # zero-shot prior (dictionary canonicalization).
            fixed = by_name["dictionary"](prompt.query, self.store)
            if fixed != prompt.query:
                metrics.counter("fm.repair.dictionary.hits").inc()
        confidence = 0.9 if fixed != prompt.query else 0.4
        return Completion(fixed, confidence=confidence)

    def _infer_repairs(self, demos: list[tuple[str, str]]) -> set[str]:
        """Infer which repairs the demonstrations call for.

        Zero-shot, only the prior (dictionary canonicalization) is active —
        it fixes errors whose correct form is a known entity string, and
        nothing else.  Each demonstration *unlocks* the repairs of every
        short program (one repair, or an ordered pair) that reproduces it.
        With more demonstrations, more of the workload's error-type mixture
        is covered, so accuracy climbs and then saturates — the Figure-1
        zero-vs-few-shot shape, produced by task inference rather than by a
        hand-tuned curve.
        """
        unlocked: set[str] = {"dictionary"} if not demos else set()
        candidates = [r for r in REPAIRS if r.name != "identity"]
        for given, expected in demos:
            target = expected.strip().lower()
            for repair in candidates:
                if repair(given, self.store) == target:
                    unlocked.add(repair.name)
            for first in candidates:
                intermediate = first(given, self.store)
                if intermediate == given or intermediate == target:
                    # No-op first step, or the single repair already covered
                    # it — crediting a second step would unlock repairs the
                    # demonstration gives no evidence for.
                    continue
                for second in candidates:
                    if second.name == first.name:
                        continue
                    if second(intermediate, self.store) == target:
                        unlocked.update((first.name, second.name))
        return unlocked

    # -- imputation ----------------------------------------------------------------

    def _do_imputation(self, prompt: Prompt) -> Completion:
        attribute = self._imputed_attribute(prompt)
        relation = _IMPUTE_RELATIONS.get(attribute)
        entity = self._extract_entity(prompt.query)
        if relation is None or entity is None:
            return Completion("unknown", confidence=0.1)
        value = self.store.object_of(entity, relation)
        if value is None:
            # Try fuzzy resolution before giving up — typo'd entity mentions.
            subject = self.store.fuzzy_subject(entity)
            if subject is not None:
                value = self.store.object_of(subject, relation)
        if value is None:
            return Completion("unknown", confidence=0.1)
        return Completion(value, confidence=0.9)

    @staticmethod
    def _imputed_attribute(prompt: Prompt) -> str:
        match = re.search(r"missing (\w+)", prompt.task.lower())
        return match.group(1) if match else ""

    def _extract_entity(self, record: str) -> str | None:
        """Longest known-subject span mentioned in the record text."""
        text = record.lower()
        # Records look like "name: apex pro a100 | category: ?"; prefer the
        # value segments over attribute labels.
        segments = re.split(r"[|]", text)
        candidates: list[str] = []
        for segment in segments:
            value = segment.split(":", 1)[-1].strip()
            if value and value != "?":
                candidates.append(value)
        candidates.append(text)
        best: str | None = None
        for candidate in candidates:
            if self.store.knows(candidate):
                if best is None or len(candidate) > len(best):
                    best = candidate
        if best is not None:
            return best
        # Fall back to fuzzy match of the first value segment.
        return self.store.fuzzy_subject(candidates[0]) if candidates else None

    # -- question answering ----------------------------------------------------------

    def _do_qa(self, prompt: Prompt) -> Completion:
        question = prompt.query.lower()
        arith = _ARITH_RE.search(question)
        if arith:
            return self._approximate_arithmetic(arith)
        patterns: list[tuple[str, str]] = [
            (r"capital of ([a-z ]+)", "capital"),
            (r"currency of ([a-z ]+)", "currency"),
            (r"who makes (?:the )?([a-z0-9 ]+)", "made_by"),
            (r"where is ([a-z0-9 ]+) headquartered", "headquartered_in"),
            (r"what (?:kind of product|category) is (?:the )?([a-z0-9 ]+)", "is_a"),
            (r"what cuisine does ([a-z0-9 ]+) serve", "serves"),
            (r"(?:which|what) city is ([a-z0-9 ]+) (?:in|located in)", "located_in"),
            (r"(?:which|what) venue published ([a-z0-9 ]+)", "published_at"),
        ]
        for pattern, relation in patterns:
            match = re.search(pattern, question)
            if not match:
                continue
            subject = match.group(1).strip().rstrip("?").strip()
            value = self.store.object_of(subject, relation)
            if value is None:
                fuzzy = self.store.fuzzy_subject(subject)
                if fuzzy:
                    value = self.store.object_of(fuzzy, relation)
            if value is not None:
                return Completion(value, confidence=0.9)
            return Completion("unknown", confidence=0.1)
        return Completion("unknown", confidence=0.1)

    def _approximate_arithmetic(self, match: re.Match) -> Completion:
        """Exact for short operands, deterministically wrong beyond them.

        The corruption is seeded by the expression so repeated calls agree —
        a confidently wrong model, which is the failure mode MRKL exists for.
        """
        a, op, b = match.group(1), match.group(2), match.group(3)
        x, y = float(a), float(b)
        if op == "+":
            true = x + y
        elif op == "-":
            true = x - y
        elif op in ("*", "x"):
            true = x * y
        else:
            if y == 0:
                return Completion("undefined", confidence=0.2)
            true = x / y
        digits = max(len(a.lstrip("-").replace(".", "")),
                     len(b.lstrip("-").replace(".", "")))
        if digits <= self.arithmetic_precision:
            return Completion(_format_number(true), confidence=0.95)
        seed_bytes = hashlib.blake2b(
            f"{self.seed}:{a}{op}{b}".encode(), digest_size=4
        ).digest()
        jitter = int.from_bytes(seed_bytes, "big") / 2**32  # [0, 1)
        relative_error = (jitter - 0.5) * 0.2 * (digits - self.arithmetic_precision)
        wrong = true * (1.0 + relative_error)
        return Completion(_format_number(wrong), confidence=0.7)


def _format_number(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return f"{value:.4f}".rstrip("0").rstrip(".")
