"""Simulated foundation models: prompting, knowledge, MRKL routing, Retro."""

from repro.foundation.knowledge import Fact, FactStore
from repro.foundation.model import Completion, FoundationModel, REPAIRS
from repro.foundation.mrkl import (
    CalculatorModule,
    CurrencyModule,
    DatabaseModule,
    FoundationModule,
    Module,
    MRKLRouter,
    Routed,
    UnitModule,
)
from repro.foundation.prompts import (
    Prompt,
    cleaning_prompt,
    imputation_prompt,
    matching_demo,
    matching_prompt,
    parse_prompt,
    qa_prompt,
)
from repro.foundation.retro import RetroAnswer, RetroModel

__all__ = [
    "CalculatorModule",
    "Completion",
    "CurrencyModule",
    "DatabaseModule",
    "Fact",
    "FactStore",
    "FoundationModel",
    "FoundationModule",
    "MRKLRouter",
    "Module",
    "Prompt",
    "REPAIRS",
    "RetroAnswer",
    "RetroModel",
    "Routed",
    "UnitModule",
    "cleaning_prompt",
    "imputation_prompt",
    "matching_demo",
    "matching_prompt",
    "parse_prompt",
    "qa_prompt",
]
