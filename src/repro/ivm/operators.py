"""Incremental twins of the vectorized relational kernels.

Each node consumes a ``changes`` map (:class:`~repro.ivm.view.StreamTable`
-> :class:`~repro.ivm.zset.ZSet`) and returns the delta of its output —
the DBSP construction (SNIPPETS.md Snippet 3):

* **Linear** operators (filter, project, union) commute with addition, so
  their incremental form is just the batch kernel applied to the delta.
* **Stateful** operators follow the chain rule.  Join is bilinear:
  ``Δ(A ⋈ B) = ΔA ⋈ B_old + A_new ⋈ ΔB``, so each side keeps a
  :class:`Trace` — its accumulated input, indexed by join key — and a
  delta probes the *other* side's trace instead of replaying history.
  Group-by folds each delta row into running per-group aggregate state
  (count/sum accumulators, net value multiplicities for min/max) and
  emits retraction/assertion pairs against its last output — O(delta),
  never a group re-scan.  Distinct tracks net multiplicities and emits
  only presence flips.

The batch kernels on :class:`~repro.table.Table` are the semantics —
``incremental(deltas) == batch(final_state)`` is property-tested for every
operator (tests/test_ivm_properties.py).  Float aggregation caveat: sums
re-accumulate in trace order, so float results match batch bit-for-bit
only on dyadic-grid data (docs/ivm.md).
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.errors import IvmError
from repro.obs import metrics
from repro.table import Field, Schema, Table
from repro.ivm.zset import ZSet

#: Aggregate functions the incremental group-by supports.  The first five
#: mirror ``Table.group_by``; ``count_star`` counts net row multiplicity
#: (SQL ``COUNT(*)``), which the batch kernel expresses as ``count`` over a
#: non-null column.
GROUP_AGGREGATES = ("count", "sum", "min", "max", "avg", "count_star")

#: A trace is compacted (consolidated + re-indexed) when its physical
#: entry count exceeds twice the entry count after the last compaction —
#: amortized O(1) per appended row, and cancelled inserts/deletes never
#: accumulate more than a constant factor of garbage.
_COMPACT_GROWTH = 2
_COMPACT_FLOOR = 64

#: Delta size at which the group-by fold switches from row-at-a-time to
#: the vectorized bucket path (numpy per-group count/sum, one python merge
#: step per touched group instead of per row).
_BULK_FOLD_MIN = 64


def _key_tuples(table: Table, key_names: Sequence[str]) -> list[tuple[Any, ...]]:
    """Python key tuple per row (``None`` elements mark nulls)."""
    cols = [table.column(name) for name in key_names]
    return list(zip(*cols)) if cols else [()] * table.num_rows


def _keys_of(table: Table, key_names: Sequence[str]) -> list[Any]:
    """Hashable key per row: the bare value for single-column keys (no
    tuple boxing on the hot path), a tuple otherwise."""
    if len(key_names) == 1:
        return table.column(key_names[0])
    return _key_tuples(table, key_names)


def _any_null(table: Table, key_names: Sequence[str]) -> np.ndarray:
    out = np.zeros(table.num_rows, dtype=bool)
    for name in key_names:
        out |= table.null_mask(name)
    return out


class Trace:
    """An operator's accumulated input: a Z-set plus a key index.

    ``index`` maps a key (the bare value for single-column keys, a tuple
    otherwise) to the physical row positions carrying it, so a delta row
    finds its matches with one dict lookup followed by a vectorized
    gather.  Appends are O(delta); consolidation garbage
    (cancelled ±w pairs) is bounded by periodic compaction.

    ``skip_null_keys=True`` (joins) drops null-keyed rows entirely — they
    can never match, per SQL equality.  ``False`` (group-by) indexes them
    like any other key: null group keys bucket together.
    """

    __slots__ = ("zset", "key_names", "skip_null_keys", "index",
                 "_compacted_len")

    def __init__(self, schema: Schema, key_names: Sequence[str], *,
                 skip_null_keys: bool):
        self.zset = ZSet.empty(schema)
        self.key_names = list(key_names)
        self.skip_null_keys = skip_null_keys
        self.index: dict[Any, list[int]] = {}
        self._compacted_len = 0

    def __len__(self) -> int:
        return len(self.zset)

    def update(self, delta: ZSet) -> None:
        if len(delta) == 0:
            return
        if self.skip_null_keys:
            nulls = _any_null(delta.payload, self.key_names)
            if nulls.any():
                delta = delta.compress(~nulls)
                if len(delta) == 0:
                    return
        start = len(self.zset)
        self.zset = self.zset + delta
        setdefault = self.index.setdefault
        for offset, key in enumerate(_keys_of(delta.payload,
                                              self.key_names)):
            setdefault(key, []).append(start + offset)
        metrics.counter("ivm.trace.rows").inc(len(delta))
        self._maybe_compact()

    def rows_for(self, key: Any) -> list[int]:
        return self.index.get(key, [])

    def _maybe_compact(self) -> None:
        n = len(self.zset)
        if n <= _COMPACT_FLOOR or n <= _COMPACT_GROWTH * self._compacted_len:
            return
        flat = self.zset.consolidate()
        # Record the post-compaction size even when nothing cancelled, so
        # the next attempt waits for another 2x of growth (no quadratic
        # re-consolidation on cancel-free streams).
        self.zset = flat
        self._compacted_len = len(flat)
        if len(flat) < n:
            self.index = {}
            for pos, key in enumerate(_keys_of(flat.payload,
                                               self.key_names)):
                self.index.setdefault(key, []).append(pos)
        metrics.counter("ivm.trace.compactions").inc()


class Node:
    """A compiled view-plan operator.

    Subclasses set ``schema`` (output schema, known at construction) and
    ``streams`` (the :class:`StreamTable` leaves below this node), and
    implement :meth:`delta`.  Stateful nodes carry traces, so a node
    instance belongs to exactly one materialized view.
    """

    schema: Schema
    streams: frozenset

    def delta(self, changes: dict) -> ZSet:
        """Output delta for one batch of input deltas.

        ``changes`` maps streams to the Z-set just pushed at them; streams
        absent from the map contributed nothing this round.  Calling
        ``delta`` advances the node's internal traces — each batch must be
        fed exactly once, in push order.
        """
        raise NotImplementedError

    def _empty(self) -> ZSet:
        return ZSet.empty(self.schema)


class ScanNode(Node):
    """Leaf: the delta of a stream is whatever was pushed at it."""

    def __init__(self, stream) -> None:
        self.stream = stream
        self.schema = stream.schema
        self.streams = frozenset([stream])

    def delta(self, changes: dict) -> ZSet:
        found = changes.get(self.stream)
        return found if found is not None else self._empty()


class FilterNode(Node):
    """Linear: ``filter(ΔI)``.  ``predicate`` is either a callable
    ``Table -> bool mask`` or a dlt-style object with ``.mask(table)``."""

    def __init__(self, input_node: Node, predicate) -> None:
        self.input = input_node
        self.predicate = predicate
        self.schema = input_node.schema
        self.streams = input_node.streams

    def _mask(self, table: Table) -> np.ndarray:
        mask_fn = getattr(self.predicate, "mask", None)
        raw = mask_fn(table) if callable(mask_fn) else self.predicate(table)
        mask = np.asarray(raw, dtype=bool)
        if mask.shape != (table.num_rows,):
            raise IvmError(
                f"filter predicate returned shape {mask.shape} for "
                f"{table.num_rows} rows"
            )
        return mask

    def delta(self, changes: dict) -> ZSet:
        d = self.input.delta(changes)
        if len(d) == 0:
            return d
        return d.compress(self._mask(d.payload))


class ProjectNode(Node):
    """Linear: ``project(ΔI)`` with optional column renames.

    Projection can collapse distinct inputs onto one output row; the
    weights simply add at the next consolidation, which is exactly bag
    projection.
    """

    def __init__(self, input_node: Node, names: Sequence[str],
                 rename: dict[str, str] | None = None) -> None:
        self.input = input_node
        self.names = list(names)
        self.rename_map = dict(rename or {})
        schema = input_node.schema.project(self.names)
        if self.rename_map:
            schema = schema.rename(self.rename_map)
        self.schema = schema
        self.streams = input_node.streams

    def delta(self, changes: dict) -> ZSet:
        d = self.input.delta(changes)
        if len(d) == 0:
            return self._empty()
        out = d.project(self.names)
        if self.rename_map:
            out = out.rename(self.rename_map)
        return out


class UnionNode(Node):
    """Linear: ``ΔA + ΔB`` (bag union, ``UNION ALL``)."""

    def __init__(self, left: Node, right: Node) -> None:
        if left.schema != right.schema:
            raise IvmError(
                f"union needs identical schemas: {left.schema} vs "
                f"{right.schema}"
            )
        self.left = left
        self.right = right
        self.schema = left.schema
        self.streams = left.streams | right.streams

    def delta(self, changes: dict) -> ZSet:
        dl = self.left.delta(changes)
        dr = self.right.delta(changes)
        if len(dl) == 0:
            return dr
        if len(dr) == 0:
            return dl
        return dl + dr


class JoinNode(Node):
    """Bilinear inner equi-join via the chain rule.

    ``Δ(A ⋈ B) = ΔA ⋈ B_old + A_new ⋈ ΔB`` — each side keeps a key-indexed
    :class:`Trace`; the delta's rows look up matching trace positions by
    key and both payloads are gathered vectorized.  Output weights are the
    products of the matched pair's weights, which makes retractions
    compose for free (``-1 × +1 = -1``).  Null keys never match and are
    never stored.  Output column layout (key dedup, ``suffix`` for
    clashes) reuses :meth:`Table.join_indices`' plan, so a seeded view is
    column-identical to ``left.join(right, on)``.
    """

    def __init__(self, left: Node, right: Node,
                 on: Sequence[tuple[str, str]] | str,
                 suffix: str = "_r") -> None:
        self.left = left
        self.right = right
        pairs = [(on, on)] if isinstance(on, str) else [(l, r) for l, r in on]
        self.left_key_names = [l for l, _ in pairs]
        self.right_key_names = [r for _, r in pairs]
        # Empty-probe the batch planner for the output schema and the
        # right-side columns the output keeps (shared keys dedup'd).
        _lt, _rt, out_schema, kept_right_idx = Table.empty(
            left.schema
        ).join_indices(Table.empty(right.schema), pairs, "inner", suffix)
        self.schema = out_schema
        self.kept_right_idx = list(kept_right_idx)
        self.streams = left.streams | right.streams
        self._left_trace = Trace(left.schema, self.left_key_names,
                                 skip_null_keys=True)
        self._right_trace = Trace(right.schema, self.right_key_names,
                                  skip_null_keys=True)

    def delta(self, changes: dict) -> ZSet:
        dl = self.left.delta(changes)
        dr = self.right.delta(changes)
        parts: list[ZSet] = []
        if len(dl):
            # ΔA ⋈ B_old: right trace not yet advanced.
            parts.append(self._probe(dl, self._right_trace,
                                     delta_on_left=True))
            self._left_trace.update(dl)
        if len(dr):
            # A_new ⋈ ΔB: left trace already includes ΔA.
            parts.append(self._probe(dr, self._left_trace,
                                     delta_on_left=False))
            self._right_trace.update(dr)
        parts = [p for p in parts if len(p)]
        if not parts:
            return self._empty()
        out = parts[0]
        for part in parts[1:]:
            out = out + part
        return out

    def _probe(self, delta: ZSet, trace: Trace, *,
               delta_on_left: bool) -> ZSet:
        key_names = (self.left_key_names if delta_on_left
                     else self.right_key_names)
        d_idx: list[int] = []
        t_idx: list[int] = []
        nulls = _any_null(delta.payload, key_names).tolist()
        index_get = trace.index.get
        for i, key in enumerate(_keys_of(delta.payload, key_names)):
            if nulls[i]:
                continue
            hits = index_get(key)
            if hits:
                d_idx.extend([i] * len(hits))
                t_idx.extend(hits)
        if not d_idx:
            return self._empty()
        dz = delta.take(np.asarray(d_idx, dtype=np.intp))
        tz = trace.zset.take(np.asarray(t_idx, dtype=np.intp))
        lz, rz = (dz, tz) if delta_on_left else (tz, dz)
        cols = tuple(lz.payload.columns()) + tuple(
            rz.payload.columns()[j] for j in self.kept_right_idx
        )
        payload = Table.from_columns(self.schema, cols)
        return ZSet(payload, lz.weights * rz.weights)


class GroupByNode(Node):
    """Incremental group-by over running per-group aggregate state.

    No trace: the node folds every delta row directly into a small state
    record per live group — net row multiplicity, plus per aggregate a
    null-skipping count, an exact running sum, or (for min/max, which are
    not subtractable) a net-multiplicity map over the group's values.  A
    batch therefore costs O(delta rows x aggregates) to absorb plus
    O(touched groups) to emit — never a re-scan of group contents, and
    independent of both table size and group sizes (min/max pay
    O(distinct values in group) per touched group at emit time).

    For each key the delta touches, the node emits ``(old_row, -1),
    (new_row, +1)`` against its cached last output — the standard DBSP
    retraction pattern.

    Aggregate semantics mirror ``Table.group_by``: nulls are skipped,
    empty (all-null) aggregates yield null, ``count`` counts non-null
    values, int sums stay exact python ints, ``avg`` divides the
    null-skipping sum by the null-skipping count.  ``count_star`` counts
    net multiplicity (no batch-kernel twin; used by SQL ``COUNT(*)``).
    Float sums accumulate in arrival order, so they match batch
    bit-for-bit only on dyadic-grid data (docs/ivm.md); a group whose net
    multiplicity returns to zero drops its state entirely, so cancelled
    float residue can never leak into a reborn group.
    """

    def __init__(self, input_node: Node, keys: Sequence[str],
                 aggregates: Sequence[tuple[str, str | None, str]]) -> None:
        self.input = input_node
        self.keys = list(keys)
        schema = input_node.schema
        out_fields = [schema.field(k) for k in self.keys]
        self._aggs: list[tuple[str, str | None, str]] = []
        for fn, col, out in aggregates:
            if fn not in GROUP_AGGREGATES:
                raise IvmError(
                    f"unknown aggregate {fn!r}; options: "
                    f"{sorted(GROUP_AGGREGATES)}"
                )
            if fn in ("count", "count_star"):
                dtype = "int"
            elif fn in ("sum", "min", "max"):
                dtype = schema.dtype_of(col)
            else:
                dtype = "float"
            out_fields.append(Field(out, dtype))
            self._aggs.append((fn, col, out))
        self.schema = Schema(out_fields)
        self.streams = input_node.streams
        # key tuple -> [net_rows, state_0, state_1, ...] with one state
        # slot per aggregate: None for count_star (derived from net_rows),
        # int for count, [count, acc] for sum/avg, {value: net} for
        # min/max.
        self._groups: dict[tuple[Any, ...], list[Any]] = {}
        self._out_cache: dict[tuple[Any, ...], tuple[Any, ...]] = {}

    def _fresh_state(self) -> list[Any]:
        state: list[Any] = [0]
        for fn, _col, _out in self._aggs:
            if fn == "count_star":
                state.append(None)
            elif fn == "count":
                state.append(0)
            elif fn in ("sum", "avg"):
                state.append([0, 0])
            else:
                state.append({})
        return state

    def delta(self, changes: dict) -> ZSet:
        d = self.input.delta(changes)
        if len(d) == 0:
            return self._empty()
        if len(d) >= _BULK_FOLD_MIN and self.keys:
            affected = self._fold_bulk(d)
        else:
            affected = self._fold_rows(d)
        metrics.counter("ivm.group.delta_rows").inc(len(d))
        metrics.counter("ivm.group.touched").inc(len(affected))
        rows: list[tuple[Any, ...]] = []
        weights: list[int] = []
        for key in affected:
            old_row = self._out_cache.get(key)
            new_row = self._group_row(key)
            if old_row == new_row:
                continue
            if old_row is not None:
                rows.append(old_row)
                weights.append(-1)
            if new_row is not None:
                rows.append(new_row)
                weights.append(1)
                self._out_cache[key] = new_row
            else:
                self._out_cache.pop(key, None)
        if not rows:
            return self._empty()
        out_payload = Table.from_rows(rows, schema=self.schema)
        return ZSet(out_payload, np.asarray(weights, dtype=np.int64))

    def _fold_rows(self, d: ZSet) -> dict[tuple[Any, ...], None]:
        """Row-at-a-time fold; exact for every dtype, best for small deltas."""
        payload = d.payload
        keys = _key_tuples(payload, self.keys)
        dweights = d.weights.tolist()
        # (state slot, kind, column values) per aggregate that carries state
        folds = [
            (slot, fn, payload.column(col))
            for slot, (fn, col, _out) in enumerate(self._aggs, start=1)
            if fn != "count_star"
        ]
        groups = self._groups
        affected: dict[tuple[Any, ...], None] = {}
        for i, key in enumerate(keys):
            wi = dweights[i]
            state = groups.get(key)
            if state is None:
                state = groups[key] = self._fresh_state()
            state[0] += wi
            affected[key] = None
            for slot, fn, values in folds:
                v = values[i]
                if v is None:
                    continue
                if fn == "count":
                    state[slot] += wi
                elif fn in ("sum", "avg"):
                    acc = state[slot]
                    acc[0] += wi
                    acc[1] += v * wi
                    if acc[0] == 0:
                        acc[1] = 0  # all values retracted: drop residue
                else:  # min/max: net multiplicity per value
                    net = state[slot]
                    new = net.get(v, 0) + wi
                    if new:
                        net[v] = new
                    else:
                        del net[v]
        return affected

    def _fold_bulk(self, d: ZSet) -> dict[tuple[Any, ...], None]:
        """Vectorized fold for large deltas: bucket count/sum per distinct
        key with numpy, then merge one python step per *touched group*
        instead of per row.  min/max folds stay row-at-a-time (they update
        a per-value map), but ride on the same group resolution.

        Bucket sums accumulate in row order, so this path is value-exact
        with :meth:`_fold_rows` on ints and on dyadic-grid floats — the
        same caveat batch equivalence already carries (docs/ivm.md).
        """
        payload = d.payload
        w = d.weights
        codes = payload.project(self.keys).row_codes()
        _uniq, first, inv = np.unique(codes, return_index=True,
                                      return_inverse=True)
        n_groups = len(first)
        net = np.zeros(n_groups, dtype=np.int64)
        np.add.at(net, inv, w)
        bucket: dict[int, tuple[np.ndarray, np.ndarray | None]] = {}
        minmax: list[tuple[int, str, list[Any]]] = []
        for slot, (fn, col, _out) in enumerate(self._aggs, start=1):
            if fn == "count_star":
                continue
            if fn in ("min", "max"):
                minmax.append((slot, fn, payload.column(col)))
                continue
            present = ~payload.null_mask(col)
            gids = inv[present]
            cnt = np.zeros(n_groups, dtype=np.int64)
            np.add.at(cnt, gids, w[present])
            sums = None
            if fn in ("sum", "avg"):
                vals = payload.column_array(col)[present]
                sums = np.zeros(n_groups, dtype=vals.dtype)
                np.add.at(sums, gids, vals * w[present])
            bucket[slot] = (cnt, sums)
        groups = self._groups
        affected: dict[tuple[Any, ...], None] = {}
        key_cols = [payload.column(k) for k in self.keys]
        gstates: list[list[Any]] = [None] * n_groups  # type: ignore[list-item]
        for g in np.argsort(first, kind="stable").tolist():
            fi = int(first[g])
            key = tuple(col[fi] for col in key_cols)
            state = groups.get(key)
            if state is None:
                state = groups[key] = self._fresh_state()
            state[0] += int(net[g])
            affected[key] = None
            gstates[g] = state
            for slot, (cnt, sums) in bucket.items():
                if sums is None:
                    state[slot] += int(cnt[g])
                else:
                    acc = state[slot]
                    acc[0] += int(cnt[g])
                    acc[1] += sums[g].item()
                    if acc[0] == 0:
                        acc[1] = 0  # all values retracted: drop residue
        if minmax:
            dweights = w.tolist()
            ginv = inv.tolist()
            for slot, _fn, values in minmax:
                for i, v in enumerate(values):
                    if v is None:
                        continue
                    net_map = gstates[ginv[i]][slot]
                    new = net_map.get(v, 0) + dweights[i]
                    if new:
                        net_map[v] = new
                    else:
                        del net_map[v]
        return affected

    def _group_row(self, key: tuple[Any, ...]) -> tuple[Any, ...] | None:
        """Current output row from running state; ``None`` = group gone."""
        state = self._groups.get(key)
        if state is None:
            return None
        total = state[0]
        if total <= 0:
            # Net multiplicity zero: the group is gone and its state must
            # go with it (float accumulators would otherwise carry residue
            # into a later rebirth of the same key).
            del self._groups[key]
            return None
        row: list[Any] = list(key)
        for slot, (fn, _col, _out) in enumerate(self._aggs, start=1):
            if fn == "count_star":
                row.append(total)
            elif fn == "count":
                row.append(state[slot])
            elif fn in ("sum", "avg"):
                count, acc = state[slot]
                if count <= 0:
                    row.append(None)
                elif fn == "sum":
                    row.append(acc)
                else:
                    row.append(acc / count)
            else:
                # min/max over values with net multiplicity > 0: valid
                # because the upstream state is a true multiset.
                net = state[slot]
                if not net:
                    row.append(None)
                elif fn == "min":
                    row.append(min(net))
                else:
                    row.append(max(net))
        return tuple(row)


class DistinctNode(Node):
    """Incremental distinct: emit a row only when its presence flips.

    Net multiplicities live in a dict keyed by full row tuple; a delta
    entry that moves a row across the zero boundary emits ``+1`` / ``-1``,
    everything else is absorbed silently (the DBSP ``distinct`` is the one
    non-linear unary operator, but its state is just this counter map).
    """

    def __init__(self, input_node: Node) -> None:
        self.input = input_node
        self.schema = input_node.schema
        self.streams = input_node.streams
        self._net: dict[tuple[Any, ...], int] = {}

    def delta(self, changes: dict) -> ZSet:
        d = self.input.delta(changes)
        if len(d) == 0:
            return self._empty()
        rows: list[tuple[Any, ...]] = []
        weights: list[int] = []
        for row, w in d.consolidate().entries():
            if not w:
                continue
            old = self._net.get(row, 0)
            new = old + w
            if new:
                self._net[row] = new
            else:
                self._net.pop(row, None)
            if old <= 0 < new:
                rows.append(row)
                weights.append(1)
            elif new <= 0 < old:
                rows.append(row)
                weights.append(-1)
        if not rows:
            return self._empty()
        payload = Table.from_rows(rows, schema=self.schema)
        return ZSet(payload, np.asarray(weights, dtype=np.int64))
