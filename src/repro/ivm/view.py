"""Stream tables and materialized views.

A :class:`StreamTable` is a continuously-mutating table: its net state is
a Z-set (kept as lazily-consolidated parts plus a multiplicity ledger),
and :meth:`~StreamTable.insert_rows` / :meth:`~StreamTable.delete_rows`
push ``(row, ±1)`` deltas through every :class:`MaterializedView`
registered over it.  A view is a compiled tree of
:mod:`~repro.ivm.operators` nodes; each push advances the tree by one
delta and appends the output delta to the view's pending parts, so the
cost of an update is proportional to the delta (plus touched groups),
never to the base table.  Reading :meth:`MaterializedView.table`
consolidates lazily and caches.

Views are *composed*, not queried: build one with the fluent
:class:`ViewBuilder` (``stream.view().filter(...).join(...).group_by(...)
.materialize()``) or from SQL via
:meth:`repro.sql.Database.create_view`.  The builder holds an immutable
spec tree, so the same recipe can be materialized repeatedly — every
materialization compiles fresh stateful nodes and seeds them from the
streams' current states.

Chaos: every push crosses the ``ivm.push`` fault point *before* any state
mutates, so an injected fault leaves stream and views untouched
(tests/test_ivm_chaos assert exactly this).
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.errors import IvmError
from repro.obs import metrics
from repro.obs.instrument import timed
from repro.resilience import faults
from repro.table import Schema, Table
from repro.ivm.operators import (
    DistinctNode,
    FilterNode,
    GroupByNode,
    JoinNode,
    Node,
    ProjectNode,
    ScanNode,
    UnionNode,
)
from repro.ivm.zset import Delta, ZSet

#: Named chaos injection point crossed at the top of every delta push.
PUSH_POINT = "ivm.push"


class StreamTable:
    """A mutable table that feeds materialized views.

    Construct from a :class:`~repro.table.Table` (initial state) or a
    schema (empty stream).  The net state is always a true multiset —
    deleting rows that are not present raises
    :class:`~repro.errors.IvmError` before anything mutates.  Physically
    the state is a list of pending Z-set parts plus a row-multiplicity
    ledger: a push validates against the ledger and appends one part
    (O(delta) work), and consolidation happens lazily on the first
    :meth:`snapshot` / seed after a burst of pushes.
    """

    def __init__(self, data: Table | Schema | Sequence[tuple[str, str]],
                 name: str = "stream") -> None:
        if isinstance(data, Table):
            part = ZSet.from_table(data)
            bag: dict[tuple[Any, ...], int] = {}
            for row in data.rows():
                bag[row] = bag.get(row, 0) + 1
        else:
            part = ZSet.empty(data)
            bag = {}
        self.name = name
        self._parts: list[ZSet] = [part]
        self._flat: ZSet | None = None
        self._bag = bag
        self._net = len(part)
        self._views: list["MaterializedView"] = []
        self._snapshot: Table | None = None

    @property
    def _state(self) -> ZSet:
        """The net state as one consolidated Z-set (lazily folded)."""
        if self._flat is None:
            combined = self._parts[0]
            for part in self._parts[1:]:
                combined = combined + part
            self._flat = combined.consolidate()
            self._parts = [self._flat]
        return self._flat

    @property
    def schema(self) -> Schema:
        return self._parts[0].schema

    @property
    def num_rows(self) -> int:
        """Net row count (duplicates weighted)."""
        return self._net

    def __repr__(self) -> str:
        return (f"StreamTable({self.name!r}, rows={self.num_rows}, "
                f"views={len(self._views)})")

    def snapshot(self) -> Table:
        """The current state as a plain table (cached until the next push)."""
        if self._snapshot is None:
            self._snapshot = self._state.to_table()
        return self._snapshot

    # -- mutation ---------------------------------------------------------

    def _conform(self, table: Table) -> Table:
        if table.schema != self.schema:
            raise IvmError(
                f"table schema {table.schema} does not match stream "
                f"{self.name!r} schema {self.schema}"
            )
        return table

    def insert(self, table: Table) -> None:
        self.push(Delta.inserts(self._conform(table)))

    def delete(self, table: Table) -> None:
        self.push(Delta.deletes(self._conform(table)))

    def insert_rows(self, rows: Iterable[Sequence[Any]]) -> None:
        self.insert(Table.from_rows([tuple(r) for r in rows],
                                    schema=self.schema))

    def delete_rows(self, rows: Iterable[Sequence[Any]]) -> None:
        self.delete(Table.from_rows([tuple(r) for r in rows],
                                    schema=self.schema))

    def push(self, delta: ZSet) -> None:
        """Apply one delta batch: validate, advance state, notify views.

        Cost is O(delta): validation nets the delta against the
        multiplicity ledger, and the state update is one part append — no
        re-consolidation of the accumulated state on the push path.

        The state transition is atomic with respect to failure *before*
        it: the ``ivm.push`` fault point and the negative-multiplicity
        check both fire before state or any view mutates.  View
        notification itself is sequential; a view whose operator raises
        mid-apply leaves earlier views advanced (documented, not hidden —
        operator errors indicate bugs, not data conditions).
        """
        if delta.schema != self.schema:
            raise IvmError(
                f"delta schema {delta.schema} does not match stream "
                f"{self.name!r} schema {self.schema}"
            )
        with timed("ivm.push.seconds", span_name="ivm.push",
                   stream=self.name, entries=len(delta)) as s:
            faults.point(PUSH_POINT)
            bag = self._bag
            overlay: dict[tuple[Any, ...], int] = {}
            cols = [c.to_pylist() for c in delta.payload.columns()]
            row_iter = zip(*cols) if cols else iter(
                [()] * delta.payload.num_rows)
            for row, w in zip(row_iter, delta.weights.tolist()):
                overlay[row] = overlay.get(row, 0) + w
            # Only net-negative rows can push an existing multiplicity
            # below zero (the ledger is never negative), so validation
            # touches just the delete side of the delta.
            bad = sum(1 for row, w in overlay.items()
                      if w < 0 and bag.get(row, 0) + w < 0)
            if bad:
                raise IvmError(
                    f"push would leave {bad} rows of stream {self.name!r} "
                    f"with negative multiplicity (deleting absent rows?)"
                )
            for row, w in overlay.items():
                new = bag.get(row, 0) + w
                if new:
                    bag[row] = new
                else:
                    bag.pop(row, None)
            self._net += int(delta.weights.sum())
            if len(delta):
                self._parts.append(delta)
                self._flat = None
            self._snapshot = None
            metrics.counter("ivm.pushes").inc()
            metrics.counter("ivm.delta_rows").inc(len(delta))
            for view in list(self._views):
                view._apply(self, delta)
            s.set(state_rows=self._net)

    # -- view construction ------------------------------------------------

    def view(self) -> "ViewBuilder":
        """Start a view definition rooted at this stream."""
        return ViewBuilder(_Spec("scan", (self,), ()))

    def _register(self, view: "MaterializedView") -> None:
        self._views.append(view)

    def _unregister(self, view: "MaterializedView") -> None:
        if view in self._views:
            self._views.remove(view)


class _Spec:
    """One immutable node of a view recipe: kind, args, child specs."""

    __slots__ = ("kind", "args", "inputs")

    def __init__(self, kind: str, args: tuple, inputs: tuple):
        self.kind = kind
        self.args = args
        self.inputs = inputs

    def build(self) -> Node:
        children = [child.build() for child in self.inputs]
        if self.kind == "scan":
            return ScanNode(self.args[0])
        if self.kind == "filter":
            return FilterNode(children[0], self.args[0])
        if self.kind == "project":
            return ProjectNode(children[0], self.args[0], self.args[1])
        if self.kind == "union":
            return UnionNode(children[0], children[1])
        if self.kind == "join":
            return JoinNode(children[0], children[1], self.args[0],
                            self.args[1])
        if self.kind == "group_by":
            return GroupByNode(children[0], self.args[0], self.args[1])
        if self.kind == "distinct":
            return DistinctNode(children[0])
        raise IvmError(f"unknown view operator {self.kind!r}")


class ViewBuilder:
    """Fluent, immutable view recipe over one or more streams.

    Every method returns a new builder; :meth:`materialize` compiles the
    recipe into fresh operator nodes, seeds them from the current stream
    states, and registers the view for future pushes.
    """

    def __init__(self, spec: _Spec) -> None:
        self._spec = spec

    def filter(self, predicate) -> "ViewBuilder":
        """Keep rows where ``predicate`` holds — a vectorized callable
        ``Table -> bool mask`` or a dlt-style predicate with ``.mask``."""
        return ViewBuilder(_Spec("filter", (predicate,), (self._spec,)))

    def project(self, names: Sequence[str],
                rename: dict[str, str] | None = None) -> "ViewBuilder":
        return ViewBuilder(
            _Spec("project", (list(names), dict(rename or {})), (self._spec,))
        )

    def join(self, other: "ViewBuilder | StreamTable",
             on: Sequence[tuple[str, str]] | str,
             suffix: str = "_r") -> "ViewBuilder":
        other_spec = (other.view()._spec if isinstance(other, StreamTable)
                      else other._spec)
        return ViewBuilder(
            _Spec("join", (on, suffix), (self._spec, other_spec))
        )

    def union(self, other: "ViewBuilder | StreamTable") -> "ViewBuilder":
        other_spec = (other.view()._spec if isinstance(other, StreamTable)
                      else other._spec)
        return ViewBuilder(_Spec("union", (), (self._spec, other_spec)))

    def group_by(self, keys: Sequence[str],
                 aggregates: Sequence[tuple[str, str | None, str]],
                 ) -> "ViewBuilder":
        return ViewBuilder(
            _Spec("group_by", (list(keys), list(aggregates)), (self._spec,))
        )

    def distinct(self) -> "ViewBuilder":
        return ViewBuilder(_Spec("distinct", (), (self._spec,)))

    def materialize(self, name: str = "view", *,
                    order_by: tuple[str, bool] | None = None,
                    limit: int | None = None) -> "MaterializedView":
        return MaterializedView(name, self._spec.build(),
                                order_by=order_by, limit=limit)


class MaterializedView:
    """An always-fresh query result maintained by deltas.

    Holds the root operator node and the accumulated output as a list of
    pending Z-set parts: applying a push appends one part (delta-sized
    work), and :meth:`table` consolidates lazily so a burst of pushes pays
    consolidation once.  ``order_by``/``limit`` are read-time decorations
    (SQL views use them); the maintained state is always the full
    unordered result.
    """

    def __init__(self, name: str, root: Node, *,
                 order_by: tuple[str, bool] | None = None,
                 limit: int | None = None) -> None:
        self.name = name
        self.root = root
        self.order_by = order_by
        self.limit = limit
        self._parts: list[ZSet] = []
        self._output: ZSet | None = None
        self._table: Table | None = None
        streams = sorted(root.streams, key=lambda s: s.name)
        seed = {stream: stream._state for stream in streams}
        self._parts.append(root.delta(seed))
        for stream in streams:
            stream._register(self)

    @property
    def schema(self) -> Schema:
        return self.root.schema

    def __repr__(self) -> str:
        return f"MaterializedView({self.name!r}, schema={self.schema!r})"

    def _apply(self, stream: StreamTable, delta: ZSet) -> None:
        with timed("ivm.view.apply.seconds", span_name="ivm.view.apply",
                   view=self.name) as s:
            out = self.root.delta({stream: delta})
            if len(out):
                self._parts.append(out)
                self._output = None
                self._table = None
            metrics.counter("ivm.views.applies").inc()
            metrics.counter("ivm.views.rows_emitted").inc(len(out))
            s.set(rows_out=len(out))

    def output(self) -> ZSet:
        """The maintained result as a consolidated Z-set."""
        if self._output is None or len(self._parts) > 1:
            combined = self._parts[0]
            for part in self._parts[1:]:
                combined = combined + part
            flat = combined.consolidate()
            self._parts = [flat]
            self._output = flat
        return self._output

    def table(self) -> Table:
        """The maintained result as a plain table (cached until the next
        delta), with any ``order_by``/``limit`` read options applied."""
        if self._table is None:
            out = self.output().to_table()
            if self.order_by is not None:
                col, descending = self.order_by
                out = out.order_by(col, descending=descending)
            if self.limit is not None:
                out = out.limit(self.limit)
            self._table = out
        return self._table

    def detach(self) -> None:
        """Stop maintaining this view (streams drop their reference)."""
        for stream in self.root.streams:
            stream._unregister(self)
