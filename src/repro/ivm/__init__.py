"""Incremental view maintenance (DBSP-style) on the columnar core.

Tables become Z-sets (weighted multisets over :class:`~repro.table.Table`
payloads), updates become ``(row, ±1)`` deltas, and the relational
kernels get incremental twins so a materialized view stays fresh in time
proportional to the delta, not the table (docs/ivm.md).

Quick start::

    from repro.ivm import StreamTable

    orders = StreamTable(initial_orders, name="orders")
    users = StreamTable(initial_users, name="users")
    spend = (
        orders.view()
        .filter(lambda t: t.column_array("amount") > 0)
        .join(users, on="user_id")
        .group_by(["country"], [("sum", "amount", "total")])
        .materialize("spend_by_country")
    )
    orders.insert_rows([(17, "u3", 12.5)])   # view updates incrementally
    spend.table()                            # always fresh
"""

from repro.ivm.operators import (
    GROUP_AGGREGATES,
    DistinctNode,
    FilterNode,
    GroupByNode,
    JoinNode,
    Node,
    ProjectNode,
    ScanNode,
    Trace,
    UnionNode,
)
from repro.ivm.view import (
    PUSH_POINT,
    MaterializedView,
    StreamTable,
    ViewBuilder,
)
from repro.ivm.zset import Delta, ZSet

__all__ = [
    "Delta",
    "DistinctNode",
    "FilterNode",
    "GROUP_AGGREGATES",
    "GroupByNode",
    "JoinNode",
    "MaterializedView",
    "Node",
    "ProjectNode",
    "PUSH_POINT",
    "ScanNode",
    "StreamTable",
    "Trace",
    "UnionNode",
    "ViewBuilder",
    "ZSet",
]
