"""Z-sets: weighted multisets on the columnar core.

A :class:`ZSet` pairs an ordinary :class:`~repro.table.Table` payload with
an int64 weight vector — one weight per payload row.  A table is the
special case where every weight is ``+1``; a batch of changes (a *delta*)
is a Z-set whose weights are ``+1`` for inserted rows and ``-1`` for
deleted ones.  State mutation is algebraic summation: applying a delta is
``state + delta`` followed by :meth:`~ZSet.consolidate`, which sums
weights of equal rows (``Table.row_codes`` is the equality key, nulls
matching nulls) and physically drops rows whose weights annihilate to
zero — the DBSP "Ghost property" (SNIPPETS.md Snippet 3).

Payloads ride the trusted-construction path throughout: every operation
derives new tables from already-validated column arrays via ``take`` /
``compress`` / ``concat``, so no per-cell validation ever re-runs inside
the delta layer.

Exactness: the algebra is exact for int/str/bool payloads.  Float
aggregation downstream (:class:`~repro.ivm.operators.GroupByNode`) re-sums
in trace order, so float sums are order-sensitive at the ULP level unless
the values lie on a dyadic grid (docs/ivm.md, "float exactness").
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

from repro.errors import IvmError
from repro.table import Schema, Table


class ZSet:
    """An immutable weighted multiset: ``payload`` rows + int64 ``weights``.

    Not necessarily consolidated — the same row may appear several times
    with partial weights; :meth:`consolidate` produces the canonical form.
    """

    __slots__ = ("payload", "weights")

    def __init__(self, payload: Table, weights: np.ndarray | Sequence[int]):
        weights = np.asarray(weights, dtype=np.int64)
        if weights.shape != (payload.num_rows,):
            raise IvmError(
                f"weights shape {weights.shape} does not match payload of "
                f"{payload.num_rows} rows"
            )
        self.payload = payload
        self.weights = weights

    # -- construction -----------------------------------------------------

    @classmethod
    def from_table(cls, table: Table, weight: int = 1) -> "ZSet":
        """Lift a table: every row carries ``weight`` (``+1`` = the table
        itself, ``-1`` = its retraction)."""
        return cls(table, np.full(table.num_rows, weight, dtype=np.int64))

    @classmethod
    def empty(cls, schema: Schema | Sequence[tuple[str, str]]) -> "ZSet":
        return cls.from_table(Table.empty(schema))

    # -- inspection -------------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self.payload.schema

    def __len__(self) -> int:
        """Number of physical entries (pre-consolidation)."""
        return self.payload.num_rows

    @property
    def is_empty(self) -> bool:
        """True when no entry carries weight (cheap; no consolidation)."""
        return len(self) == 0 or not self.weights.any()

    @property
    def weight_total(self) -> int:
        """Net cardinality: the sum of all weights."""
        return int(self.weights.sum())

    def __repr__(self) -> str:
        return (f"ZSet({self.schema!r}, entries={len(self)}, "
                f"net={self.weight_total})")

    def entries(self) -> list[tuple[tuple[Any, ...], int]]:
        """``(row, weight)`` pairs in physical order (python values)."""
        return list(zip(self.payload.rows(), self.weights.tolist()))

    def weight_by_row(self) -> dict[tuple[Any, ...], int]:
        """Net weight per distinct row — the mathematical Z-set.

        Zero-weight rows are dropped, so two Z-sets are equal as functions
        exactly when their dicts are equal (the test oracle for
        consolidation-order independence).
        """
        out: dict[tuple[Any, ...], int] = {}
        for row, weight in self.entries():
            total = out.get(row, 0) + weight
            if total:
                out[row] = total
            else:
                out.pop(row, None)
        return out

    # -- algebra ----------------------------------------------------------

    def __add__(self, other: "ZSet") -> "ZSet":
        if self.schema != other.schema:
            raise IvmError(
                f"z-set addition needs identical schemas: "
                f"{self.schema} vs {other.schema}"
            )
        return ZSet(
            self.payload.union(other.payload),
            np.concatenate([self.weights, other.weights]),
        )

    def negate(self) -> "ZSet":
        return ZSet(self.payload, -self.weights)

    def __sub__(self, other: "ZSet") -> "ZSet":
        return self + other.negate()

    def scale(self, factor: int) -> "ZSet":
        return ZSet(self.payload, self.weights * int(factor))

    def consolidate(self) -> "ZSet":
        """Canonical form: one entry per distinct row, weights summed,
        zero-weight rows dropped, first-appearance order kept."""
        n = len(self)
        if n == 0:
            return self
        codes = self.payload.row_codes()
        totals = np.zeros(int(codes.max()) + 1, dtype=np.int64)
        np.add.at(totals, codes, self.weights)
        _uniq, first = np.unique(codes, return_index=True)
        keep = first[totals[codes[first]] != 0]
        keep.sort()
        if len(keep) == n and np.array_equal(totals[codes], self.weights):
            return self                   # already consolidated
        return ZSet(self.payload._take(keep), totals[codes[keep]])

    # -- row kernels (weights ride along) ---------------------------------

    def compress(self, keep: np.ndarray) -> "ZSet":
        return ZSet(self.payload.filter(keep), self.weights[np.asarray(keep, dtype=bool)])

    def take(self, indices: np.ndarray) -> "ZSet":
        idx = np.asarray(indices, dtype=np.intp)
        return ZSet(self.payload._take(idx), self.weights[idx])

    def project(self, names: Iterable[str]) -> "ZSet":
        return ZSet(self.payload.project(list(names)), self.weights)

    def rename(self, mapping: dict[str, str]) -> "ZSet":
        return ZSet(self.payload.rename(mapping), self.weights)

    # -- materialization --------------------------------------------------

    def to_table(self) -> Table:
        """Materialize as a plain table (rows repeat per weight).

        Raises :class:`~repro.errors.IvmError` when any consolidated weight
        is negative — a negative multiplicity has no table reading, and
        surfacing it beats silently clamping a bookkeeping bug.
        """
        flat = self.consolidate()
        if len(flat) == 0:
            return flat.payload
        if (flat.weights < 0).any():
            bad = int((flat.weights < 0).sum())
            raise IvmError(
                f"cannot materialize z-set with {bad} negative-weight rows"
            )
        if (flat.weights == 1).all():
            return flat.payload
        return flat.payload._take(
            np.repeat(np.arange(len(flat)), flat.weights)
        )

    def same_zset(self, other: "ZSet") -> bool:
        """Equality as mathematical Z-sets (order/consolidation agnostic)."""
        if self.schema != other.schema:
            return False
        return self.weight_by_row() == other.weight_by_row()


class Delta(ZSet):
    """A batch of ``(row, ±1)`` updates — a Z-set by another name.

    The subclass exists for intent at call sites (``push(delta)``) and for
    the insert/delete constructors; every operator treats it as a plain
    Z-set.
    """

    @classmethod
    def inserts(cls, table: Table) -> "Delta":
        """Every row of ``table`` with weight ``+1``."""
        return cls(table, np.ones(table.num_rows, dtype=np.int64))

    @classmethod
    def deletes(cls, table: Table) -> "Delta":
        """Every row of ``table`` with weight ``-1``."""
        return cls(table, np.full(table.num_rows, -1, dtype=np.int64))

    @classmethod
    def of(cls, table: Table, weights: np.ndarray | Sequence[int]) -> "Delta":
        return cls(table, weights)
