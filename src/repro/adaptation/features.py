"""Domain-independent pair representations for adaptation experiments.

Domain adaptation needs source and target instances in one feature space
even when their schemas differ, so the representation here is computed from
the *rendered record text* only: string-similarity statistics plus an
embedding cosine.  The distributions of these features still shift across
domains (product pairs look different from restaurant pairs), which is
exactly the shift the adaptation methods must bridge.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.datasets.em import Record
from repro.text.similarity import (
    jaccard_similarity,
    jaro_winkler_similarity,
    levenshtein_similarity,
    monge_elkan_similarity,
    overlap_coefficient,
)
from repro.text.tokenize import words

#: Length of the vector :func:`pair_features` produces.
FEATURE_DIM = 8


def pair_features(a: Record, b: Record,
                  embed: Callable[[str], np.ndarray] | None = None) -> np.ndarray:
    """A fixed-size, schema-free feature vector for one record pair."""
    ta, tb = a.value_text(), b.value_text()
    tokens_a, tokens_b = set(words(ta)), set(words(tb))
    shared = len(tokens_a & tokens_b)
    features = [
        jaccard_similarity(ta, tb),
        jaro_winkler_similarity(ta[:40], tb[:40]),
        monge_elkan_similarity(ta[:60], tb[:60]),
        levenshtein_similarity(ta[:40], tb[:40]),
        overlap_coefficient(ta, tb),
        shared / max(len(tokens_a | tokens_b), 1),
        min(len(tokens_a), len(tokens_b)) / max(len(tokens_a), len(tokens_b), 1),
    ]
    if embed is not None:
        ea, eb = embed(ta), embed(tb)
        denom = np.linalg.norm(ea) * np.linalg.norm(eb)
        features.append(float(ea @ eb / denom) if denom > 0 else 0.0)
    else:
        features.append(0.0)
    return np.array(features)


def featurize_pairs(pairs: list[tuple[Record, Record]],
                    embed: Callable[[str], np.ndarray] | None = None) -> np.ndarray:
    return np.stack([pair_features(a, b, embed) for a, b in pairs])


def covariate_shift(X: np.ndarray, strength: float = 0.6,
                    seed: int = 0) -> np.ndarray:
    """Apply a fixed affine distortion to a feature matrix.

    Simulates systematic measurement drift between domains — e.g. a target
    catalog whose serialization conventions compress and bias every
    similarity statistic.  The transform is seeded and deterministic:
    per-feature scaling in ``[1-strength, 1]`` plus a bias in
    ``[0, strength/2]`` and a small feature rotation.  Because it is affine
    and label-independent, it is a pure covariate shift: the conditional
    ``P(match | undistorted features)`` is unchanged, which is exactly the
    setting the discrepancy/adversarial/reconstruction adapters target.
    """
    if not 0.0 <= strength <= 1.0:
        raise ValueError("strength must be in [0, 1]")
    rng = np.random.default_rng(seed)
    d = X.shape[1]
    scale = 1.0 - strength * rng.uniform(0.3, 1.0, size=d)
    bias = strength * rng.uniform(0.0, 0.5, size=d)
    mix = np.eye(d) + strength * 0.3 * rng.normal(size=(d, d)) / np.sqrt(d)
    return (X * scale + bias) @ mix
