"""Domain adaptation for entity resolution (tutorial §3.2(4); DADER).

Given a labelled *source* EM dataset and an unlabelled *target* one, train a
matcher that transfers.  All three families the tutorial lists:

- **discrepancy-based** (:class:`MMDAdapter`) — minimize the maximum mean
  discrepancy between source and target feature distributions;
- **adversarial-based** (:class:`AdversarialAdapter`) — a domain classifier
  trained through a gradient-reversal layer (DANN);
- **reconstruction-based** (:class:`ReconstructionAdapter`) — an auxiliary
  decoder reconstructs inputs of both domains from the shared representation.

The no-adaptation floor and in-domain ceiling live here too, so experiments
compare against exactly the same architecture.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotFittedError
from repro.nn.functional import cross_entropy, gradient_reversal, mse_loss
from repro.nn.layers import Linear, ReLU, Sequential
from repro.nn.optim import Adam, clip_grad_norm
from repro.nn.tensor import Tensor


class _AdapterBase:
    """Shared encoder/classifier plumbing for all adaptation methods."""

    def __init__(self, input_dim: int, hidden: int = 16,
                 lam: float = 0.5, lr: float = 5e-3,
                 epochs: int = 60, batch_size: int = 32, seed: int = 0):
        rng = np.random.default_rng(seed)
        self.encoder = Sequential(Linear(input_dim, hidden, rng), ReLU(),
                                  Linear(hidden, hidden, rng), ReLU())
        self.classifier = Linear(hidden, 2, rng)
        self.hidden = hidden
        self.lam = lam
        self.lr = lr
        self.epochs = epochs
        self.batch_size = batch_size
        self._rng = np.random.default_rng(seed + 1)
        self._np_rng = rng
        self.fitted = False
        self._extra_modules: list = []

    def _parameters(self) -> list[Tensor]:
        params = self.encoder.parameters() + self.classifier.parameters()
        for module in self._extra_modules:
            params = params + module.parameters()
        return params

    def _alignment_loss(self, source_repr: Tensor, target_repr: Tensor,
                        source_X: np.ndarray, target_X: np.ndarray):
        """Method-specific loss; subclasses override.  None = no alignment."""
        return None

    def fit(self, source_X: np.ndarray, source_y: np.ndarray,
            target_X: np.ndarray) -> "_AdapterBase":
        source_X = np.asarray(source_X, dtype=float)
        target_X = np.asarray(target_X, dtype=float)
        source_y = np.asarray(source_y)
        optimizer = Adam(self._parameters(), lr=self.lr)
        n_source, n_target = len(source_X), len(target_X)
        positives = np.flatnonzero(source_y == 1)
        negatives = np.flatnonzero(source_y == 0)
        for _ in range(self.epochs):
            for _ in range(max(1, n_source // self.batch_size)):
                if len(positives) and len(negatives):
                    half = self.batch_size // 2
                    idx_s = np.concatenate([
                        self._rng.choice(positives, half),
                        self._rng.choice(negatives, self.batch_size - half),
                    ])
                else:
                    idx_s = self._rng.choice(n_source, self.batch_size)
                idx_t = self._rng.choice(n_target, self.batch_size)
                xs, xt = source_X[idx_s], target_X[idx_t]
                hs = self.encoder(Tensor(xs))
                ht = self.encoder(Tensor(xt))
                loss = cross_entropy(self.classifier(hs), source_y[idx_s])
                alignment = self._alignment_loss(hs, ht, xs, xt)
                if alignment is not None:
                    loss = loss + alignment * self.lam
                optimizer.zero_grad()
                loss.backward()
                clip_grad_norm(optimizer.parameters, 5.0)
                optimizer.step()
        self.fitted = True
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self.fitted:
            raise NotFittedError(f"{type(self).__name__} not fitted")
        logits = self.classifier(self.encoder(Tensor(np.asarray(X, dtype=float))))
        return logits.numpy().argmax(axis=1)


class SourceOnlyAdapter(_AdapterBase):
    """The no-adaptation floor: train on source, apply to target."""


class MMDAdapter(_AdapterBase):
    """Discrepancy-based: Gaussian-kernel MMD between the representations."""

    def __init__(self, input_dim: int, bandwidths: tuple[float, ...] = (0.5, 1.0, 2.0),
                 **kwargs):
        super().__init__(input_dim, **kwargs)
        self.bandwidths = bandwidths

    def _alignment_loss(self, source_repr: Tensor, target_repr: Tensor,
                        source_X: np.ndarray, target_X: np.ndarray):
        return _mmd(source_repr, target_repr, self.bandwidths)


class CORALAdapter(_AdapterBase):
    """Discrepancy-based: classic CORAL (Sun, Feng & Saenko 2016).

    Closed-form second-order alignment in *input* space: target features are
    whitened with their own covariance and re-colored with the source
    covariance (plus a mean shift), after which the source-trained classifier
    applies directly.  This measures-and-removes distribution discrepancy
    exactly as the tutorial's discrepancy family describes, and — unlike
    gradient-based deep variants — cannot fight the classification loss.
    """

    def __init__(self, input_dim: int, ridge: float = 1e-3, **kwargs):
        super().__init__(input_dim, **kwargs)
        self.ridge = ridge
        self._transform: np.ndarray | None = None
        self._mu_source: np.ndarray | None = None
        self._mu_target: np.ndarray | None = None

    def fit(self, source_X: np.ndarray, source_y: np.ndarray,
            target_X: np.ndarray) -> "CORALAdapter":
        source_X = np.asarray(source_X, dtype=float)
        target_X = np.asarray(target_X, dtype=float)
        self._mu_source = source_X.mean(axis=0)
        self._mu_target = target_X.mean(axis=0)
        cov_s = np.cov(source_X, rowvar=False) + self.ridge * np.eye(source_X.shape[1])
        cov_t = np.cov(target_X, rowvar=False) + self.ridge * np.eye(target_X.shape[1])
        self._transform = _inv_sqrt(cov_t) @ _sqrt(cov_s)
        super().fit(source_X, source_y, target_X)
        return self

    def _alignment_loss(self, source_repr, target_repr, source_X, target_X):
        return None  # alignment happens in closed form at predict time

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._transform is None:
            raise NotFittedError("CORALAdapter not fitted")
        X = np.asarray(X, dtype=float)
        aligned = (X - self._mu_target) @ self._transform + self._mu_source
        return super().predict(aligned)


def _sqrt(matrix: np.ndarray) -> np.ndarray:
    values, vectors = np.linalg.eigh(matrix)
    values = np.clip(values, 1e-12, None)
    return vectors @ np.diag(np.sqrt(values)) @ vectors.T


def _inv_sqrt(matrix: np.ndarray) -> np.ndarray:
    values, vectors = np.linalg.eigh(matrix)
    values = np.clip(values, 1e-12, None)
    return vectors @ np.diag(1.0 / np.sqrt(values)) @ vectors.T


class AdversarialAdapter(_AdapterBase):
    """Adversarial (DANN): domain classifier behind gradient reversal."""

    def __init__(self, input_dim: int, **kwargs):
        super().__init__(input_dim, **kwargs)
        rng = self._np_rng
        self.domain_classifier = Sequential(
            Linear(self.hidden, self.hidden, rng), ReLU(),
            Linear(self.hidden, 2, rng),
        )
        self._extra_modules.append(self.domain_classifier)

    def _alignment_loss(self, source_repr: Tensor, target_repr: Tensor,
                        source_X: np.ndarray, target_X: np.ndarray):
        both = source_repr.concat([target_repr], axis=0)
        reversed_repr = gradient_reversal(both, lam=1.0)
        domain_labels = np.concatenate([
            np.zeros(source_repr.shape[0], dtype=int),
            np.ones(target_repr.shape[0], dtype=int),
        ])
        return cross_entropy(self.domain_classifier(reversed_repr), domain_labels)


class ReconstructionAdapter(_AdapterBase):
    """Reconstruction-based: decode both domains from the representation."""

    def __init__(self, input_dim: int, **kwargs):
        super().__init__(input_dim, **kwargs)
        rng = self._np_rng
        self.decoder = Sequential(
            Linear(self.hidden, self.hidden, rng), ReLU(),
            Linear(self.hidden, input_dim, rng),
        )
        self._extra_modules.append(self.decoder)

    def _alignment_loss(self, source_repr: Tensor, target_repr: Tensor,
                        source_X: np.ndarray, target_X: np.ndarray):
        recon_s = mse_loss(self.decoder(source_repr), source_X)
        recon_t = mse_loss(self.decoder(target_repr), target_X)
        return recon_s + recon_t


def _mmd(a: Tensor, b: Tensor, bandwidth_scales: tuple[float, ...]) -> Tensor:
    """Multi-kernel Gaussian MMD² between two representation batches.

    Kernel bandwidths follow the median heuristic: the base bandwidth is the
    mean pairwise squared distance of the joint batch (detached), scaled by
    ``bandwidth_scales``.  Fixed bandwidths fail silently when the
    representation scale drifts during training.
    """
    def sq_dists(x: Tensor, y: Tensor) -> Tensor:
        x2 = (x * x).sum(axis=1, keepdims=True)          # (n, 1)
        y2 = (y * y).sum(axis=1, keepdims=True)          # (m, 1)
        return x2 + y2.transpose(1, 0) - (x @ y.transpose(1, 0)) * 2.0

    d_aa, d_bb, d_ab = sq_dists(a, a), sq_dists(b, b), sq_dists(a, b)
    base = float(
        np.mean([d_aa.numpy().mean(), d_bb.numpy().mean(), d_ab.numpy().mean()])
    )
    base = max(base, 1e-6)

    def kernel_mean(d2: Tensor) -> Tensor:
        total = None
        for scale in bandwidth_scales:
            k = (d2 * (-1.0 / (2.0 * base * scale))).exp()
            total = k if total is None else total + k
        return total.mean()

    return kernel_mean(d_aa) + kernel_mean(d_bb) - kernel_mean(d_ab) * 2.0


ADAPTERS = {
    "source-only": SourceOnlyAdapter,
    "coral": CORALAdapter,
    "mmd": MMDAdapter,
    "adversarial": AdversarialAdapter,
    "reconstruction": ReconstructionAdapter,
}
