"""Domain-adaptive data augmentation (§3.2 open problems).

"Can we synthesize labeled data by considering the domain adaptation
problem?"  This module answers with the standard self-supervised ER recipe
(the idea behind hands-off systems like DADER's generators and Sudowoodo):

- **synthetic positives**: corrupt a target-domain record with the noise
  operations real duplicate sources exhibit (typos, token drops, case and
  whitespace noise) and pair it with the original;
- **synthetic negatives**: pair records of *different* entities that share
  tokens (hard negatives), plus random pairs (easy negatives).

No target labels are consumed — the synthesizer reads only the target
records — yet the resulting training set lets a matcher fit the target
distribution directly.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.em import Record, drop_token, typo


def corrupt_record(record: Record, rng: np.random.Generator,
                   strength: float = 0.8) -> Record:
    """A plausibly-dirty duplicate of ``record``.

    Each string attribute is independently hit (with probability
    ``strength``) by one sampled noise op; numeric attributes drift a little;
    a random attribute may go missing — the same noise classes the EM
    generators inject, so synthetic positives look like real ones.
    """
    attributes: dict[str, object] = {}
    for key, value in record.attributes.items():
        if value is None:
            attributes[key] = None
            continue
        if isinstance(value, (int, float)):
            if rng.random() < strength * 0.5:
                attributes[key] = round(float(value) * float(rng.uniform(0.97, 1.03)), 2)
            else:
                attributes[key] = value
            continue
        text = str(value)
        if rng.random() < strength:
            roll = rng.random()
            if roll < 0.35:
                text = typo(text, rng)
            elif roll < 0.6:
                text = drop_token(text, rng)
            elif roll < 0.8:
                text = text.upper()
            else:
                text = "  " + text + " "
        attributes[key] = text
    # Occasionally lose an attribute entirely.
    keys = [k for k, v in attributes.items() if v is not None]
    if keys and rng.random() < strength * 0.3:
        attributes[keys[int(rng.integers(len(keys)))]] = None
    return Record(rid=f"{record.rid}-aug", attributes=attributes)


def synthesize_training_pairs(
    records: list[Record],
    num_pairs: int,
    seed: int = 0,
    positive_fraction: float = 0.4,
    hard_negative_fraction: float = 0.7,
) -> list[tuple[Record, Record, int]]:
    """Build a labeled pair set from unlabeled target records.

    ``hard_negative_fraction`` of the negatives share at least one token
    (sampled via a token index), the rest are random — mirroring how real
    training sets mix blocked candidates with random pairs.
    """
    if not records:
        raise ValueError("need at least one record to synthesize from")
    rng = np.random.default_rng(seed)
    out: list[tuple[Record, Record, int]] = []

    num_pos = int(num_pairs * positive_fraction)
    for _ in range(num_pos):
        record = records[int(rng.integers(len(records)))]
        out.append((record, corrupt_record(record, rng), 1))

    token_index: dict[str, list[Record]] = {}
    for record in records:
        for token in sorted(set(record.value_text().lower().split())):
            token_index.setdefault(token, []).append(record)

    attempts = 0
    while len(out) < num_pairs and attempts < num_pairs * 30:
        attempts += 1
        a = records[int(rng.integers(len(records)))]
        if rng.random() < hard_negative_fraction:
            tokens = sorted(set(a.value_text().lower().split()))
            if not tokens:
                continue
            bucket = token_index.get(tokens[int(rng.integers(len(tokens)))], [])
            if not bucket:
                continue
            b = bucket[int(rng.integers(len(bucket)))]
        else:
            b = records[int(rng.integers(len(records)))]
        if b.rid == a.rid:
            continue
        out.append((a, corrupt_record(b, rng) if rng.random() < 0.5 else b, 0))
    rng.shuffle(out)
    return out
