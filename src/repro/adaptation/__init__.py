"""Domain adaptation for entity resolution (discrepancy / adversarial /
reconstruction families)."""

from repro.adaptation.augmentation import corrupt_record, synthesize_training_pairs
from repro.adaptation.features import FEATURE_DIM, featurize_pairs, pair_features
from repro.adaptation.methods import (
    ADAPTERS,
    AdversarialAdapter,
    CORALAdapter,
    MMDAdapter,
    ReconstructionAdapter,
    SourceOnlyAdapter,
)

__all__ = [
    "ADAPTERS",
    "AdversarialAdapter",
    "CORALAdapter",
    "FEATURE_DIM",
    "MMDAdapter",
    "ReconstructionAdapter",
    "SourceOnlyAdapter",
    "corrupt_record",
    "synthesize_training_pairs",
    "featurize_pairs",
    "pair_features",
]
