"""EXT-OBS: the instrumentation-overhead gate and trace exporter check.

Runs the same traced serving workload twice — spans enabled vs spans
disabled (``repro.obs.set_enabled``) — and asserts the tracing tax stays
under :data:`OVERHEAD_LIMIT` (5%).  The workload is serial-mode serving
over a numpy backend doing ~1ms of real work per request, so the measured
fraction reflects the per-span cost against a realistic unit of work, not
against an empty loop; both sides take the min over
:data:`REPEATS` runs to shave scheduler noise.

The run writes ``BENCH_obs.json`` (shared artifact schema) plus
``BENCH_obs_trace.json`` — the Chrome trace-event / Perfetto export of one
fully traced request batch, the artifact the CI obs job uploads.

Knob: ``REPRO_OBS_BENCH_REQUESTS`` overrides the per-run request count.
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks.conftest import REPO_ROOT, bench_artifact, run_once
from repro import obs
from repro.obs import tracing
from repro.serving import Backend, Server

#: The CI gate: spans-enabled wall clock may exceed spans-disabled by at
#: most this fraction.
OVERHEAD_LIMIT = 0.05

REPEATS = 5


class MatmulBackend(Backend):
    """~1ms of numpy per request: the realistic unit of traced work."""

    name = "mat"

    def __init__(self, dim: int = 512, rounds: int = 32):
        rng = np.random.default_rng(5)
        self._m = rng.standard_normal((dim, dim)) / np.sqrt(dim)
        self._rounds = rounds

    def run_batch(self, payloads):
        out = []
        for seed in payloads:
            v = self._m[:, seed % self._m.shape[1]]
            for _ in range(self._rounds):
                v = self._m @ v
            out.append(float(v.sum()))
        return out

    def cache_key(self, payload):
        return None  # every request does real work — no cache shortcut


def _run_workload(backend: MatmulBackend, requests: int) -> list:
    """One serial-mode serving pass; returns the responses."""
    server = Server(workers=0, batch_window=0.0, max_batch=8)
    server.register(backend)
    futures = [server.submit("mat", i) for i in range(requests)]
    server.flush()
    server.close()
    return [f.result(5.0) for f in futures]


def _measure(backend: MatmulBackend, requests: int) -> tuple[float, float]:
    """Min wall-clock of the workload with spans disabled and enabled.

    Repeats interleave the two modes (off/on, off/on, ...) so CPU warmup
    and frequency drift hit both sides equally instead of biasing
    whichever ran second.
    """
    best = {False: float("inf"), True: float("inf")}
    _run_workload(backend, requests)  # warmup: page in BLAS + serving paths
    for _ in range(REPEATS):
        for enabled in (False, True):
            obs.reset()
            obs.set_enabled(enabled)
            start = time.perf_counter()
            responses = _run_workload(backend, requests)
            elapsed = time.perf_counter() - start
            assert all(r.ok for r in responses)
            best[enabled] = min(best[enabled], elapsed)
    return best[False], best[True]


def test_ext_obs_overhead_and_trace_export(benchmark):
    requests = int(os.environ.get("REPRO_OBS_BENCH_REQUESTS", "96"))
    backend = MatmulBackend()

    def experiment():
        try:
            disabled, enabled = _measure(backend, requests)
        finally:
            obs.set_enabled(True)
        # Leave one traced run in the tracer for the exported artifact.
        obs.reset()
        _run_workload(backend, 8)
        return disabled, enabled

    disabled, enabled = run_once(benchmark, experiment)
    overhead = enabled / disabled - 1.0

    roots = tracing.get_tracer().roots()
    req_roots = [r for r in roots if r.name == "serving.request"]
    assert len(req_roots) == 8
    spans_per_request = sum(
        1 + r.total_descendants() for r in req_roots
    ) / len(req_roots)
    # Every request produced one complete tree across the serving stages.
    for root in req_roots:
        names = {s.name for s in root.walk()}
        assert {"serving.admission", "serving.queue",
                "serving.batch"} <= names, names
    trace_path = REPO_ROOT / "BENCH_obs_trace.json"
    obs.save_chrome_trace(trace_path, roots, process_name="ext-obs")

    from repro.evaluation import ResultTable

    table = ResultTable(
        f"EXT-OBS: tracing overhead ({requests} requests, "
        f"best of {REPEATS})",
        ["metric", "value"],
    )
    table.add("spans disabled (s)", f"{disabled:.4f}")
    table.add("spans enabled (s)", f"{enabled:.4f}")
    table.add("overhead", f"{overhead:+.2%}")
    table.add("limit", f"{OVERHEAD_LIMIT:.0%}")
    table.add("spans per request", f"{spans_per_request:.1f}")
    table.add("traced rps", f"{requests / enabled:.0f}")
    table.show()

    bench_artifact("obs", {
        "requests": requests,
        "repeats": REPEATS,
        "disabled_seconds": disabled,
        "enabled_seconds": enabled,
        "overhead_fraction": overhead,
        "overhead_limit": OVERHEAD_LIMIT,
        "spans_per_request": spans_per_request,
        "traced_rps": requests / enabled,
        "trace_artifact": trace_path.name,
    })

    # The gate: instrumentation costs < 5% on a realistic serving workload.
    assert overhead < OVERHEAD_LIMIT, (
        f"tracing overhead {overhead:+.2%} >= {OVERHEAD_LIMIT:.0%}"
    )
