"""E12 (§3.3(1)): statistics of human-orchestrated pipelines.

Claims to reproduce (from the notebook-mining studies the tutorial cites —
Psallidas et al. 2022, Lee et al. 2020):

- operator usage is heavy-tailed: a few operators dominate;
- humans are domain-aware: visibly missing data almost always gets an
  imputer;
- "blind spots": powerful operators like PolynomialFeatures are almost never
  used — and leaving them out costs accuracy on interaction-driven tasks.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.datasets.mltasks import make_ml_task, task_suite
from repro.evaluation import ResultTable
from repro.pipelines import (
    BLIND_SPOT_OPERATORS,
    PipelineEvaluator,
    build_registry,
    generate_corpus,
    pipeline_from_names,
)


def test_e12_corpus_statistics(benchmark):
    registry = build_registry()
    tasks = task_suite(seed=0, n_samples=200)
    interaction_task = make_ml_task(
        "blindspot-probe", interaction=True, missing_rate=0.1,
        n_samples=240, seed=9,
    )

    def experiment():
        corpus = generate_corpus(registry, tasks + [interaction_task],
                                 pipelines_per_task=40, seed=0)
        usage = corpus.operator_usage()
        heavy = corpus.usage_skew()
        blind = corpus.blind_spot_rate()
        missing_aware = [
            hp.operator_names[0] != "impute_zero" and hp.operator_names[0] != "none"
            for hp in corpus.for_task("missing-heavy")
        ]
        # Cost of the blind spot: the canonical human pipeline shape
        # (impute + scale, no feature engineering — by far the most common
        # genome in the corpus) vs the same pipeline with the never-used
        # PolynomialFeatures operator added, on an interaction-driven task.
        evaluator = PipelineEvaluator(seed=0)
        typical = pipeline_from_names(
            registry, ("impute_mean", "none", "standard_scale", "none", "none")
        )
        grafted = pipeline_from_names(
            registry,
            ("impute_mean", "none", "standard_scale", "polynomial", "none"),
        )
        typical_score = evaluator.score(typical, interaction_task)
        grafted_score = evaluator.score(grafted, interaction_task)
        return {
            "usage": usage.most_common(6),
            "heavy": heavy,
            "blind": blind,
            "missing_aware": float(np.mean(missing_aware)),
            "best_human": typical_score,
            "grafted": grafted_score,
        }

    results = run_once(benchmark, experiment)

    table = ResultTable("E12: human pipeline corpus, operator usage",
                        ["operator", "count"])
    for op, count in results["usage"]:
        table.add(op, count)
    table.show()
    print(f"top-3 usage share: {results['heavy']:.0%}")
    print(f"blind-spot usage rate: {results['blind']:.1%}")
    print(f"imputer on visibly-missing tasks: {results['missing_aware']:.0%}")
    print(f"typical human pipeline on interaction task: "
          f"{results['best_human']:.3f} | same + PolynomialFeatures: "
          f"{results['grafted']:.3f}")

    # Shapes.
    assert results["heavy"] > 0.5            # heavy tail
    assert results["blind"] < 0.1            # blind spots are rare
    assert results["missing_aware"] > 0.7    # domain awareness
    # The blind-spot operator the corpus never uses would have helped.
    assert results["grafted"] > results["best_human"] + 0.03
    top_names = {op for op, _c in results["usage"][:3]}
    assert not (top_names & {f"engineer:{n}" for n in BLIND_SPOT_OPERATORS})
