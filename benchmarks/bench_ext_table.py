"""EXT-TABLE: the columnar relational-kernel bench.

Times the vectorized ``Table`` kernels (factorized hash join, reduceat
group-by, boolean-mask filter) against the row-at-a-time ``*_reference``
twins they replaced — same tables, same null patterns — and asserts:

- **Equivalence**: each kernel's output table ``==`` the reference output
  (``Table.__eq__`` is schema- and null-mask-aware; float sums accumulate
  in row order on both paths, so even they match exactly).  Always
  asserted.
- **Speedup**: join, group_by and filter clear a >= 3x wall-clock floor at
  50k fact rows.  Skipped in ``REPRO_TABLE_SMOKE=1`` mode, where the CI
  table job runs the same code on shrunken inputs purely for the
  equivalence asserts and the JSON artifact.

The run writes ``BENCH_table.json`` at the repo root: per-kernel wall
times, row throughput, speedup, and the git revision.
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks.conftest import bench_artifact, run_once
from repro.table import Column, Field, Schema, Table

#: Wall-clock claim under test for the three relational kernels.
SPEEDUP_FLOOR = 3.0

#: Fact-table sizes (rows) for asserted vs smoke runs.
FACT_ROWS = 50_000
SMOKE_FACT_ROWS = 3_000


def _fact_table(rng: np.random.Generator, n_rows: int,
                n_keys: int) -> Table:
    """Synthetic sales facts: string dimension key (with nulls), numeric
    measures (with nulls), a bool flag — the shapes every kernel must
    handle."""
    key_ids = rng.integers(0, n_keys, size=n_rows)
    keys: list[str | None] = [f"sku-{int(k):04d}" for k in key_ids]
    amounts: list[float | None] = list(
        np.round(rng.uniform(1.0, 500.0, size=n_rows), 2)
    )
    quantities: list[int | None] = [int(q) for q in
                                    rng.integers(1, 40, size=n_rows)]
    for i in rng.choice(n_rows, size=n_rows // 50, replace=False):
        keys[int(i)] = None
    for i in rng.choice(n_rows, size=n_rows // 25, replace=False):
        amounts[int(i)] = None
    for i in rng.choice(n_rows, size=n_rows // 40, replace=False):
        quantities[int(i)] = None
    schema = Schema([
        Field("order_id", "int"), Field("sku", "str"),
        Field("amount", "float"), Field("quantity", "int"),
        Field("express", "bool"),
    ])
    columns = [
        Column.build(list(range(n_rows)), "int"),
        Column.build(keys, "str"),
        Column.build(amounts, "float"),
        Column.build(quantities, "int"),
        Column.build([bool(b) for b in rng.integers(0, 2, size=n_rows)],
                     "bool"),
    ]
    return Table.from_columns(schema, columns)


def _dim_table(rng: np.random.Generator, n_keys: int) -> Table:
    """Product dimension keyed by sku; ~10% of skus are missing so the
    left join exercises its null-fill path."""
    kept = sorted(
        int(k) for k in rng.choice(n_keys, size=int(n_keys * 0.9),
                                   replace=False)
    )
    schema = Schema([
        Field("sku", "str"), Field("category", "str"),
        Field("unit_cost", "float"),
    ])
    columns = [
        Column.build([f"sku-{k:04d}" for k in kept], "str"),
        Column.build([f"cat-{k % 12}" for k in kept], "str"),
        Column.build(
            [round(float(c), 2) for c in rng.uniform(0.5, 90.0,
                                                     size=len(kept))],
            "float",
        ),
    ]
    return Table.from_columns(schema, columns)


def test_ext_table_kernels(benchmark):
    smoke = os.environ.get("REPRO_TABLE_SMOKE", "") not in ("", "0")
    rng = np.random.default_rng(23)
    n_rows = SMOKE_FACT_ROWS if smoke else FACT_ROWS
    n_keys = 60 if smoke else 400

    facts = _fact_table(rng, n_rows, n_keys)
    dim = _dim_table(rng, n_keys)

    def experiment():
        results: dict[str, dict] = {}

        # -- kernel 1: filter (boolean-mask compress) ----------------------
        amounts = facts.column("amount")
        keep = [a is not None and a > 250.0 for a in amounts]
        start = time.perf_counter()
        vec = facts.filter(keep)
        vec_seconds = time.perf_counter() - start
        start = time.perf_counter()
        ref = facts.filter_reference(keep)
        ref_seconds = time.perf_counter() - start
        assert vec == ref
        results["filter"] = {
            "reference_seconds": ref_seconds,
            "vectorized_seconds": vec_seconds,
            "speedup": ref_seconds / vec_seconds,
            "throughput_rows_per_second": n_rows / vec_seconds,
            "rows_kept": vec.num_rows,
        }

        # -- kernel 2: join (factorized codes + searchsorted probe) --------
        for how in ("inner", "left"):
            start = time.perf_counter()
            vec = facts.join(dim, on="sku", how=how)
            vec_seconds = time.perf_counter() - start
            start = time.perf_counter()
            ref = facts.join_reference(dim, on="sku", how=how)
            ref_seconds = time.perf_counter() - start
            assert vec == ref
            results[f"join_{how}"] = {
                "reference_seconds": ref_seconds,
                "vectorized_seconds": vec_seconds,
                "speedup": ref_seconds / vec_seconds,
                "throughput_rows_per_second": n_rows / vec_seconds,
                "rows_out": vec.num_rows,
            }

        # -- kernel 3: group_by (argsort + reduceat segments) --------------
        aggregates = [
            ("count", "order_id", "orders"),
            ("sum", "amount", "revenue"),
            ("avg", "amount", "avg_amount"),
            ("min", "quantity", "min_qty"),
            ("max", "quantity", "max_qty"),
        ]
        start = time.perf_counter()
        vec = facts.group_by(["sku"], aggregates)
        vec_seconds = time.perf_counter() - start
        start = time.perf_counter()
        ref = facts.group_by_reference(["sku"], aggregates)
        ref_seconds = time.perf_counter() - start
        assert vec == ref
        results["group_by"] = {
            "reference_seconds": ref_seconds,
            "vectorized_seconds": vec_seconds,
            "speedup": ref_seconds / vec_seconds,
            "throughput_rows_per_second": n_rows / vec_seconds,
            "groups": vec.num_rows,
        }
        return results

    results = run_once(benchmark, experiment)

    from repro.evaluation import ResultTable

    table = ResultTable(
        f"EXT-TABLE: vectorized vs reference relational kernels "
        f"(rows={n_rows}, smoke={smoke})",
        ["kernel", "reference (s)", "vectorized (s)", "speedup"],
    )
    for kernel, row in results.items():
        table.add(kernel, f"{row['reference_seconds']:.3f}",
                  f"{row['vectorized_seconds']:.3f}",
                  f"{row['speedup']:.1f}x")
    table.show()

    bench_artifact("table", {
        "smoke": smoke,
        "rows": n_rows,
        "speedup_floor": SPEEDUP_FLOOR,
        "kernels": results,
    })

    if not smoke:
        for kernel in ("filter", "join_inner", "group_by"):
            speedup = results[kernel]["speedup"]
            assert speedup >= SPEEDUP_FLOOR, (
                f"{kernel}: {speedup:.2f}x < {SPEEDUP_FLOOR}x floor"
            )
