"""E3 (§3.1(3)): MRKL-style routing fixes foundation-model failure modes.

Claim to reproduce: on queries that need *precise* computation (arithmetic,
currency/unit conversion, database lookups) the bare foundation model is
unreliable, while the MRKL router — which sends each query to the module
that can best respond — answers them exactly, without losing the FM's
strength on knowledge questions.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.datasets.world import COUNTRY_CAPITALS, CURRENCY_TO_USD
from repro.evaluation import ResultTable
from repro.foundation import MRKLRouter, qa_prompt
from repro.sql import Database
from repro.table import Table


def _query_set(world):
    """(category, query, expected answer) triples."""
    queries = []
    for a, b in [(12345, 6789), (98765, 4321), (5021, 7739), (31415, 2718)]:
        queries.append(("arithmetic", f"what is {a} * {b}", str(a * b)))
    for a, b in [(123456, 654321), (88888, 11112)]:
        queries.append(("arithmetic", f"what is {a} + {b}", str(a + b)))
    rate = CURRENCY_TO_USD["euro"] / CURRENCY_TO_USD["krona"]
    queries.append(("conversion", "convert 100 euro to krona", f"{100 * rate:g}"))
    rate = CURRENCY_TO_USD["yen"] / CURRENCY_TO_USD["dollar"]
    queries.append(("conversion", "convert 1000 yen to dollar", f"{1000 * rate:g}"))
    queries.append(("conversion", "convert 10 km to miles", "6.2137"))
    queries.append(("database", "select count(*) from products", None))  # filled below
    queries.append(("database", "select max(price) from products", None))
    for country in ("japan", "sweden", "germany", "canada"):
        queries.append(("knowledge", f"what is the capital of {country}",
                        COUNTRY_CAPITALS[country]))
    return queries


def test_e3_mrkl_routing(benchmark, world, foundation_model):
    table = Table.from_rows(
        [(p.uid, p.name, p.price) for p in world.products],
        names=["uid", "name", "price"],
    )
    db = Database({"products": table})
    queries = _query_set(world)
    # Ground truth for the database queries comes from the engine itself
    # (it is exact); the point is that the *bare FM* cannot run SQL at all.
    truths = {
        "select count(*) from products": str(len(world.products)),
        "select max(price) from products": str(max(p.price for p in world.products)),
    }
    queries = [
        (cat, q, truths.get(q, expected)) for cat, q, expected in queries
    ]
    router = MRKLRouter.standard(foundation_model, db=db)

    def experiment():
        per_category: dict[str, list[tuple[bool, bool]]] = {}
        for category, query, expected in queries:
            bare = foundation_model.complete(qa_prompt(query)).text
            routed = router.answer(query)
            per_category.setdefault(category, []).append(
                (_same(bare, expected), _same(routed, expected))
            )
        return per_category

    per_category = run_once(benchmark, experiment)

    table_out = ResultTable("E3: bare FM vs MRKL router, accuracy by category",
                            ["category", "bare fm", "mrkl"])
    scores = {}
    for category, outcomes in per_category.items():
        bare = sum(b for b, _r in outcomes) / len(outcomes)
        mrkl = sum(r for _b, r in outcomes) / len(outcomes)
        scores[category] = (bare, mrkl)
        table_out.add(category, bare, mrkl)
    table_out.show()

    # Shape: the router is perfect on precise categories where the FM fails…
    assert scores["arithmetic"][0] < 0.5 and scores["arithmetic"][1] == 1.0
    assert scores["conversion"][1] == 1.0
    assert scores["database"][0] == 0.0 and scores["database"][1] == 1.0
    # …and does not lose the FM's knowledge answers (they route to the FM).
    assert scores["knowledge"][1] == scores["knowledge"][0] == 1.0


def _same(answer: str, expected: str) -> bool:
    try:
        return abs(float(answer) - float(expected)) < 1e-2
    except ValueError:
        return answer.strip().lower() == expected.strip().lower()
