"""E1 (§3.1(2), Figure 1): zero-shot vs few-shot foundation-model cleaning.

Claim to reproduce: few-shot prompts beat zero-shot on data cleaning, and
accuracy rises with the number of demonstrations before saturating.

Workload: a dirty brand column mixing three error types —

- typos ("appex"): fixable by the model's zero-shot prior (dictionary
  canonicalization against known entities);
- brand aliases ("apex technologies" where the catalog wants "apex"): the
  alias *is* a known entity, so the prior leaves it; only demonstrations
  reveal that canonical short names are wanted;
- shouting + alias ("APEX TECH"): same, plus case noise.

More demonstrations cover more of the mixture, so accuracy climbs and then
saturates — the Figure-1 shape.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.datasets.em import typo
from repro.datasets.world import BRAND_ALIASES, BRANDS
from repro.evaluation import ResultTable
from repro.foundation import cleaning_prompt


def _make_workload(rng: np.random.Generator, n: int):
    """(dirty, clean) brand pairs across the three error types."""
    cases: list[tuple[str, str]] = []
    brands = [b for b, _c in BRANDS]
    for _ in range(n):
        clean = brands[int(rng.integers(len(brands)))]
        aliases = BRAND_ALIASES[clean]
        roll = rng.random()
        if roll < 1 / 3:
            dirty = typo(clean, rng)
            if dirty == clean:
                dirty = clean[:-1]
        elif roll < 2 / 3:
            dirty = aliases[int(rng.integers(len(aliases)))]
        else:
            dirty = aliases[int(rng.integers(len(aliases)))].upper()
        cases.append((dirty, clean))
    return cases


def test_e1_fm_cleaning_shots(benchmark, foundation_model):
    cases = _make_workload(np.random.default_rng(42), n=120)
    shot_counts = [0, 1, 3, 5, 10, 20]
    repeats = 8  # average over demo draws: curves, not one lucky ordering

    def experiment():
        accuracies = {}
        for k in shot_counts:
            scores = []
            for r in range(repeats if k else 1):
                demos = _make_workload(np.random.default_rng(100 + r), n=max(k, 1))[:k]
                correct = 0
                for dirty, clean in cases:
                    prompt = cleaning_prompt("brand", demos, dirty)
                    fixed = foundation_model.complete(prompt).text
                    correct += fixed == clean
                scores.append(correct / len(cases))
            accuracies[k] = float(np.mean(scores))
        return accuracies

    accuracies = run_once(benchmark, experiment)

    table = ResultTable("E1: FM data cleaning, accuracy vs #demonstrations",
                        ["shots", "accuracy"])
    for k in shot_counts:
        table.add(k, accuracies[k])
    table.show()

    # Shape: few-shot beats zero-shot clearly; the curve saturates (the
    # 10→20 gain is smaller than the 0→5 gain).
    assert accuracies[5] > accuracies[0] + 0.15
    assert accuracies[20] >= accuracies[10] - 0.02
    assert (accuracies[20] - accuracies[10]) < (accuracies[5] - accuracies[0])
