"""E13 (§3.3(2)): automatic pipeline generation across search families.

Claims to reproduce, under a fixed evaluation budget:

- every learning-based searcher (Bayesian optimization, genetic
  programming, Q-learning) at least matches random search, and on average
  beats it;
- meta-learning warm starts (Auto-Sklearn/TensorOBOE-style) dominate the
  *early* part of the anytime curve — experience from similar datasets
  makes the first evaluations count.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.datasets.mltasks import make_ml_task, task_suite
from repro.evaluation import ResultTable
from repro.pipelines import (
    ALL_STRATEGIES,
    MetaLearningSearch,
    MetaStore,
    PipelineEvaluator,
    RandomSearch,
    build_registry,
)

BUDGET = 24
SEEDS = (0, 1, 2)


@pytest.fixture(scope="module")
def search_setup():
    registry = build_registry()
    test_tasks = [
        make_ml_task("t-missing", missing_rate=0.25, n_samples=220, seed=11),
        make_ml_task("t-interaction", interaction=True, missing_rate=0.1,
                     n_samples=220, seed=12),
        make_ml_task("t-noisy", n_noise=14, missing_rate=0.15,
                     n_samples=220, seed=13),
    ]
    # Meta-store experience from a *different* suite of tasks.
    store = MetaStore()
    for prior in task_suite(seed=5, n_samples=200):
        evaluator = PipelineEvaluator(seed=0)
        best = RandomSearch(registry, seed=3).search(prior, evaluator, budget=20)
        store.add(prior, best.best_pipeline, best.best_score)
    return registry, test_tasks, store


def test_e13_search_strategies(benchmark, search_setup):
    registry, test_tasks, store = search_setup

    def experiment():
        curves: dict[str, np.ndarray] = {}
        for name, strategy_cls in sorted(ALL_STRATEGIES.items()):
            per_run = []
            for task in test_tasks:
                for seed in SEEDS:
                    evaluator = PipelineEvaluator(seed=0)
                    result = strategy_cls(registry, seed=seed).search(
                        task, evaluator, BUDGET
                    )
                    trajectory = result.trajectory[:BUDGET]
                    trajectory += [trajectory[-1]] * (BUDGET - len(trajectory))
                    per_run.append(trajectory)
            curves[name] = np.mean(per_run, axis=0)
        per_run = []
        for task in test_tasks:
            for seed in SEEDS:
                evaluator = PipelineEvaluator(seed=0)
                result = MetaLearningSearch(registry, store, seed=seed).search(
                    task, evaluator, BUDGET
                )
                trajectory = result.trajectory[:BUDGET]
                trajectory += [trajectory[-1]] * (BUDGET - len(trajectory))
                per_run.append(trajectory)
        curves["meta-learning"] = np.mean(per_run, axis=0)
        return curves

    curves = run_once(benchmark, experiment)

    checkpoints = [1, 3, 6, 12, BUDGET]
    table = ResultTable(
        f"E13: anytime best accuracy (mean over {len(SEEDS)} seeds x 3 tasks)",
        ["strategy"] + [f"@{c}" for c in checkpoints],
    )
    for name, curve in sorted(curves.items()):
        table.add(name, *[float(curve[c - 1]) for c in checkpoints])
    table.show()

    random_curve = curves["random"]
    # Shape 1: every learning-based searcher ends >= random (small slack).
    for name in ("bayesian", "genetic", "q-learning", "meta-learning"):
        assert curves[name][-1] >= random_curve[-1] - 0.02, name
    # Shape 2: at least one learned searcher clearly beats random early-mid.
    mid = BUDGET // 2
    assert any(
        curves[name][mid] > random_curve[mid] + 0.01
        for name in ("bayesian", "genetic", "q-learning", "meta-learning")
    )
    # Shape 3: meta-learning warm starts dominate the early curve — after
    # its handful of transferred pipelines (3 evaluations) it is ahead of
    # random and of every cold-start searcher.
    assert curves["meta-learning"][2] > random_curve[2] + 0.02
    for name in ("bayesian", "genetic", "q-learning"):
        assert curves["meta-learning"][2] >= curves[name][2] - 0.01, name
