"""E5 (§3.1(4)): Symphony answers NL queries over a multi-modal data lake.

Claim to reproduce: decomposition + retrieval + routing answers compound
questions over tables *and* documents; single-module baselines (SQL-only on
one table, doc-QA-only) cannot cover the full query mix, so Symphony's
overall accuracy dominates both.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.errors import ParseError, ReproError
from repro.evaluation import ResultTable
from repro.lake import DataLake, Symphony, TextToSQL
from repro.sql import Database
from repro.table import Table


def _build_lake(world) -> DataLake:
    lake = DataLake()
    lake.add_table(
        "restaurants",
        Table.from_rows(
            [(r.uid, r.name, r.cuisine, r.city, r.phone) for r in world.restaurants],
            names=["uid", "name", "cuisine", "city", "phone"],
        ),
        "restaurant listings with cuisine city and phone",
    )
    lake.add_table(
        "products",
        Table.from_rows(
            [(p.uid, p.name, p.brand, p.category, p.price) for p in world.products],
            names=["uid", "name", "brand", "category", "price"],
        ),
        "electronics catalog with prices",
    )
    lake.add_document(
        "apex_profile",
        "Apex is a company headquartered in united states. "
        "The ceo of apex is jane doe.",
    )
    lake.add_document(
        "lumina_profile",
        "Lumina is a company headquartered in japan. "
        "The ceo of lumina is kenji sato.",
    )
    return lake


def _query_set(world):
    """(question, expected substring) pairs across module needs."""
    queries = []
    cuisines = sorted({r.cuisine for r in world.restaurants})
    for cuisine in cuisines[:3]:
        truth = sum(1 for r in world.restaurants if r.cuisine == cuisine)
        queries.append((f"how many {cuisine} restaurants are listed", str(truth)))
    for restaurant in world.restaurants[:4]:
        queries.append(
            (f"what is the phone of {restaurant.name}", restaurant.phone)
        )
    category = world.products[0].category
    prices = [p.price for p in world.products if p.category == category]
    queries.append(
        (f"what is the average price of {category} products",
         f"{sum(prices) / len(prices):.4f}"[:6])
    )
    queries.append(("who is the ceo of apex", "jane doe"))
    queries.append(("who is the ceo of lumina", "kenji sato"))
    return queries


def test_e5_symphony(benchmark, world):
    lake = _build_lake(world)
    symphony = Symphony(lake)
    queries = _query_set(world)
    restaurant_sql = TextToSQL("restaurants", lake.tables["restaurants"].table)
    db = Database({n: t.table for n, t in lake.tables.items()})

    def experiment():
        symphony_hits = 0
        sql_only_hits = 0
        for question, expected in queries:
            answers = symphony.answer(question).answers
            if any(expected in a for a in answers):
                symphony_hits += 1
            # Baseline 1: Text-to-SQL over the restaurants table only.
            try:
                grounded = restaurant_sql.translate(question)
                out = db.query(grounded.sql)
                value = str(out.row(0)[0]) if out.num_rows else ""
                if expected in value:
                    sql_only_hits += 1
            except (ParseError, ReproError, IndexError):
                pass
        # Baseline 2: doc-QA only (best sentence from any document).
        doc_hits = 0
        for question, expected in queries:
            best = ""
            for doc in lake.documents.values():
                answer = symphony._doc_answer(doc.name, question)
                if expected in answer.lower():
                    best = answer
            doc_hits += bool(best)
        n = len(queries)
        return {
            "symphony": symphony_hits / n,
            "sql-only (restaurants)": sql_only_hits / n,
            "doc-qa only": doc_hits / n,
        }

    results = run_once(benchmark, experiment)

    table = ResultTable("E5: NL over the lake, answer accuracy",
                        ["system", "accuracy"])
    for name, acc in results.items():
        table.add(name, acc)
    table.show()

    # Shape: the multi-module system beats every single-module baseline.
    assert results["symphony"] > 0.8
    assert results["symphony"] > results["sql-only (restaurants)"] + 0.2
    assert results["symphony"] > results["doc-qa only"] + 0.2
