"""Benchmark suite: one module per DESIGN.md experiment (E1-E14)."""
