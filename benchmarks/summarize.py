"""Collect BENCH_*.json artifacts into one summary and gate regressions.

The continuous perf-regression harness has two modes:

- **collect** (default): read every ``BENCH_*.json`` the benches wrote at
  the repo root (shared schema — see ``bench_artifact`` in
  ``benchmarks/conftest.py``), flatten the comparable scalar metrics
  (speedups, throughputs, recovery/hit rates, overhead fractions) into a
  dotted namespace, and write ``BENCH_summary.json`` stamped with the git
  revision and the environment manifest;
- **compare** (``--compare BASELINE``): check the collected metrics
  against a committed baseline file and **exit nonzero** when any metric
  regresses beyond its tolerance.  Direction is per metric: names
  containing ``overhead`` or ending in ``seconds`` regress upward,
  everything else (speedups, rates, throughputs) regresses downward.

Baseline format (``benchmarks/BENCH_baseline.json``)::

    {
      "schema_version": 1,
      "tolerance": 0.25,              # default relative tolerance
      "metrics": {
        "obs.overhead_fraction": {"max": 0.05},
        "chaos.recovery_rate":   {"min": 0.90},
        "serving.speedup":       {"value": 3.0, "tolerance": 0.5}
      }
    }

``min``/``max`` are absolute bounds; ``value`` is a reference point
checked with the (per-metric or default) relative tolerance in the
metric's regression direction.  Metrics listed in the baseline but absent
from the collected artifacts count as regressions — a silently
disappearing bench must fail the gate.

Usage::

    python benchmarks/summarize.py [--out BENCH_summary.json]
    python benchmarks/summarize.py --compare benchmarks/BENCH_baseline.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Summary schema, bumped on breaking changes.
SUMMARY_SCHEMA_VERSION = 1

#: Artifacts that are outputs of this script, never inputs.
_SKIP = {"BENCH_summary.json", "BENCH_baseline.json"}

#: A numeric leaf is "comparable" (lands in the flat metrics namespace)
#: when its key path contains one of these substrings.
_COMPARABLE = ("speedup", "throughput", "rps", "recovery", "overhead",
               "hit_ratio", "seconds")

#: Keys that are configuration, not measurement, even when numeric.
_EXCLUDE = ("floor", "limit", "tolerance")


def _flatten(prefix: str, node: Any, out: dict[str, float]) -> None:
    if isinstance(node, dict):
        for key, value in node.items():
            _flatten(f"{prefix}.{key}" if prefix else str(key), value, out)
        return
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        return
    lowered = prefix.lower()
    if any(token in lowered for token in _EXCLUDE):
        return
    if any(token in lowered for token in _COMPARABLE):
        out[prefix] = float(node)


def collect(root: Path = REPO_ROOT) -> dict[str, Any]:
    """Merge every BENCH_*.json artifact into one summary dict."""
    benches: dict[str, Any] = {}
    metrics: dict[str, float] = {}
    git_rev, environment = "unknown", {}
    for path in sorted(root.glob("BENCH_*.json")):
        if path.name in _SKIP or path.name.endswith("_trace.json"):
            continue
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
        name = data.get("bench") or path.stem.replace("BENCH_", "")
        benches[name] = data
        git_rev = data.get("git_rev", git_rev)
        environment = data.get("environment", environment)
        payload = {
            k: v for k, v in data.items()
            if k not in ("schema_version", "bench", "git_rev",
                         "generated_at", "environment")
        }
        _flatten(name, payload, metrics)
    return {
        "schema_version": SUMMARY_SCHEMA_VERSION,
        "git_rev": git_rev,
        "environment": environment,
        "benches": benches,
        "metrics": metrics,
    }


def _lower_is_better(name: str) -> bool:
    lowered = name.lower()
    return "overhead" in lowered or lowered.endswith("seconds")


def compare(summary: dict[str, Any], baseline: dict[str, Any]) -> list[str]:
    """Regression messages (empty = the gate passes)."""
    default_tol = float(baseline.get("tolerance", 0.25))
    metrics = summary.get("metrics", {})
    failures: list[str] = []
    for name, spec in baseline.get("metrics", {}).items():
        actual = metrics.get(name)
        if actual is None:
            failures.append(f"{name}: missing from collected artifacts")
            continue
        if "max" in spec and actual > float(spec["max"]):
            failures.append(f"{name}: {actual:.6g} > max {spec['max']:.6g}")
        if "min" in spec and actual < float(spec["min"]):
            failures.append(f"{name}: {actual:.6g} < min {spec['min']:.6g}")
        if "value" in spec:
            ref = float(spec["value"])
            tol = float(spec.get("tolerance", default_tol))
            if _lower_is_better(name):
                bound = ref * (1.0 + tol)
                if actual > bound:
                    failures.append(
                        f"{name}: {actual:.6g} > {bound:.6g} "
                        f"(baseline {ref:.6g} +{tol:.0%})"
                    )
            else:
                bound = ref * (1.0 - tol)
                if actual < bound:
                    failures.append(
                        f"{name}: {actual:.6g} < {bound:.6g} "
                        f"(baseline {ref:.6g} -{tol:.0%})"
                    )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path, default=REPO_ROOT,
                        help="directory holding BENCH_*.json artifacts")
    parser.add_argument("--out", type=Path, default=None,
                        help="summary output path "
                             "(default <root>/BENCH_summary.json)")
    parser.add_argument("--compare", type=Path, default=None,
                        help="baseline file; exit 1 on regressions")
    args = parser.parse_args(argv)

    summary = collect(args.root)
    out = args.out or (args.root / "BENCH_summary.json")
    out.write_text(json.dumps(summary, indent=2) + "\n")
    print(f"wrote {out} ({len(summary['benches'])} benches, "
          f"{len(summary['metrics'])} metrics, rev {summary['git_rev'][:12]})")

    if args.compare is None:
        return 0
    baseline = json.loads(args.compare.read_text())
    failures = compare(summary, baseline)
    if failures:
        print(f"PERF REGRESSION vs {args.compare}:", file=sys.stderr)
        for message in failures:
            print(f"  {message}", file=sys.stderr)
        return 1
    checked = len(baseline.get("metrics", {}))
    print(f"compare OK: {checked} baselined metrics within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
