"""E2 (§3.1(2)): foundation-model entity matching, zero/few-shot vs trained.

Claims to reproduce: a foundation model matches entities "almost purely
relying on the model without training" (zero-shot F1 well above the rule
baseline's naive threshold behaviour is not required — but usable F1 is);
few shots calibrate it further; and with a real label budget the fine-tuned
PLM is at least as good.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once, split_labeled
from repro.evaluation import ResultTable
from repro.matching import DittoMatcher, FoundationModelMatcher
from repro.ml import precision_recall_f1


def test_e2_fm_matching(benchmark, em_by_domain, foundation_model, fresh_encoder):
    dataset = em_by_domain["products"]
    labeled = dataset.labeled_pairs(260, seed=2, match_fraction=0.5)
    tr_pairs, tr_y, te_pairs, te_y = split_labeled(labeled, 160)
    train = labeled[:160]

    def experiment():
        results = {}
        zero = FoundationModelMatcher(foundation_model)
        results["fm zero-shot"] = precision_recall_f1(te_y, zero.predict(te_pairs))
        # Average the few-shot matcher over demo draws — a single draw of 10
        # demonstrations can calibrate well or badly by luck.
        rng = np.random.default_rng(0)
        few_f1 = []
        for _ in range(5):
            idx = rng.choice(len(train), size=10, replace=False)
            few = FoundationModelMatcher(
                foundation_model, demonstrations=[train[int(i)] for i in idx]
            )
            few_f1.append(precision_recall_f1(te_y, few.predict(te_pairs)).f1)
        results["fm 10-shot (mean of 5 draws)"] = float(np.mean(few_f1))
        ditto = DittoMatcher(fresh_encoder(), seed=0)
        ditto.fit(tr_pairs, tr_y, epochs=8)
        results["ditto (160 labels)"] = precision_recall_f1(
            te_y, ditto.predict(te_pairs)
        )
        return results

    results = run_once(benchmark, experiment)

    table = ResultTable("E2: FM entity matching (products)", ["matcher", "f1"])
    zero_f1 = results["fm zero-shot"].f1
    few_f1 = results["fm 10-shot (mean of 5 draws)"]
    ditto_f1 = results["ditto (160 labels)"].f1
    table.add("fm zero-shot", zero_f1)
    table.add("fm 10-shot (mean of 5 draws)", few_f1)
    table.add("ditto (160 labels)", ditto_f1)
    table.show()

    # Shape: zero-shot already works without any training…
    assert zero_f1 > 0.6
    # …few-shot calibration is comparable on average (it can help or hurt a
    # little per draw — the tutorial's "limitations" discussion)…
    assert few_f1 >= zero_f1 - 0.1
    # …and with 160 labels the fine-tuned PLM is competitive with the FM.
    assert ditto_f1 > 0.7
