"""E7 (§3.2(2)(3)): blocking — recall vs reduction across method families.

Claim to reproduce: embedding-based blocking (DeepBlocker, char-n-gram
embeddings) dominates key blocking on recall at comparable reduction ratios,
with MinHash-LSH in between; and the embedding blocker's candidate budget
``k`` sweeps out a recall/reduction trade-off curve (the ablation DESIGN.md
calls out).
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.evaluation import ResultTable
from repro.matching import EmbeddingBlocker, KeyBlocker, LSHBlocker


def test_e7_blocking(benchmark, em_by_domain, fasttext):
    dataset = em_by_domain["products"]

    def experiment():
        rows = {}
        rows["key"] = KeyBlocker().evaluate(dataset)
        rows["lsh"] = LSHBlocker(num_perm=64, bands=32).evaluate(dataset)
        for k in (2, 5, 10, 20):
            rows[f"embedding k={k}"] = EmbeddingBlocker(
                token_embed=fasttext.token_vector, attribute="name", k=k
            ).evaluate(dataset)
        return rows

    rows = run_once(benchmark, experiment)

    table = ResultTable("E7: blocking recall vs reduction (products)",
                        ["blocker", "recall", "reduction", "candidates"])
    for name, result in rows.items():
        table.add(name, result.recall, result.reduction, result.num_candidates)
    table.show()

    key = rows["key"]
    lsh = rows["lsh"]
    # Shape 1: at a comparable (or better) reduction ratio, the embedding
    # blocker's recall beats the key blocker's.
    embedding_similar = [
        r for name, r in rows.items()
        if name.startswith("embedding") and r.reduction >= key.reduction - 0.1
    ]
    assert any(r.recall > key.recall for r in embedding_similar)
    # Shape 2: LSH recalls at least as much as key blocking.
    assert lsh.recall >= key.recall
    # Shape 3: the k sweep is a monotone trade-off — recall up, reduction down.
    ks = (2, 5, 10, 20)
    recalls = [rows[f"embedding k={k}"].recall for k in ks]
    reductions = [rows[f"embedding k={k}"].reduction for k in ks]
    assert all(b >= a - 1e-9 for a, b in zip(recalls, recalls[1:]))
    assert all(b <= a + 1e-9 for a, b in zip(reductions, reductions[1:]))
