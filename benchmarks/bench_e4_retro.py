"""E4 (§3.1(3)): Retro-style retrieval fixes the knowledge cutoff.

Claim to reproduce: a foundation model cannot answer about facts newer than
its training data ("lack of access to current information"), while the same
model conditioned on retrieved document chunks answers them — without losing
accuracy on facts it already knows.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.datasets.world import COUNTRY_CAPITALS
from repro.evaluation import ResultTable
from repro.foundation import RetroModel

#: Facts invented after the model's "training": not in any world fact store.
FRESH_FACTS = [
    ("the capital of atlantis is poseidonia",
     "what is the capital of atlantis", "poseidonia"),
    ("the capital of elbonia is mudville",
     "what is the capital of elbonia", "mudville"),
    ("the ceo of apex is jane doe", "who is the ceo of apex", "jane doe"),
    ("the ceo of lumina is kenji sato", "who is the ceo of lumina", "kenji sato"),
    ("the currency of atlantis is the shell",
     "what is the currency of atlantis", "shell"),
]

#: Distractor chunks so retrieval has to actually discriminate.
DISTRACTORS = [
    "the annual conference attracted thousands of attendees this year",
    "quarterly revenue rose in the consumer electronics segment",
    "a new restaurant opened downtown serving seasonal dishes",
    "researchers published a survey of data preparation techniques",
    "the city council approved the new transit plan yesterday",
] * 3


def test_e4_retro_retrieval(benchmark, foundation_model):
    documents = [doc for doc, _q, _a in FRESH_FACTS] + DISTRACTORS
    retro = RetroModel(foundation_model, documents, top_k=3)
    known = [
        (f"what is the capital of {country}", capital)
        for country, capital in sorted(COUNTRY_CAPITALS.items())[:6]
    ]

    def experiment():
        fresh_closed = sum(
            retro.closed_book(q).text == answer for _d, q, answer in FRESH_FACTS
        ) / len(FRESH_FACTS)
        fresh_open = sum(
            retro.answer(q).text == answer for _d, q, answer in FRESH_FACTS
        ) / len(FRESH_FACTS)
        known_closed = sum(
            retro.closed_book(q).text == answer for q, answer in known
        ) / len(known)
        known_open = sum(
            retro.answer(q).text == answer for q, answer in known
        ) / len(known)
        retrieval_used = sum(
            retro.answer(q).used_retrieval for _d, q, _a in FRESH_FACTS
        )
        return {
            "fresh": (fresh_closed, fresh_open),
            "known": (known_closed, known_open),
            "retrieval_used": retrieval_used,
        }

    results = run_once(benchmark, experiment)

    table = ResultTable("E4: closed-book FM vs Retro retrieval",
                        ["fact recency", "closed-book", "retro"])
    table.add("post-cutoff (fresh)", *results["fresh"])
    table.add("pre-cutoff (known)", *results["known"])
    table.show()
    print(f"retrieval used on {results['retrieval_used']}/{len(FRESH_FACTS)} "
          "fresh questions")

    # Shape: closed-book fails on fresh facts, Retro answers them, and
    # parametric knowledge is preserved.
    assert results["fresh"][0] == 0.0
    assert results["fresh"][1] == 1.0
    assert results["known"][1] >= results["known"][0] == 1.0
    assert results["retrieval_used"] == len(FRESH_FACTS)
