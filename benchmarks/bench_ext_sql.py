"""EXT-SQL: the rule-based optimizer vs the naive fixed-order executor.

Runs the representative analytical workload — a selective filter pushed
through a 3-table join into a grouped aggregation:

    SELECT category, COUNT(*) AS n, SUM(amount) AS total,
           AVG(amount) AS mean
    FROM orders
    JOIN customers ON cid = cid
    JOIN products ON pid = p_id
    WHERE amount > X AND status = 'gold' AND country = 'country-3'
    GROUP BY category ORDER BY category

over a 100k-row orders table, once through the optimized plan-based path
(predicate pushdown + projection pruning + stats-driven join reordering +
vectorized aggregation) and once through ``optimizer=False`` — the naive
executor that joins everything first and filters the full join result
row by row.

Asserted on **every measured run**: the two paths return byte-identical
results (same rows, same order, same column names) — the naive executor
is the semantics; the optimizer only gets to change the evaluation
strategy.  Amounts are drawn from a dyadic grid (multiples of 0.25), so
SUM/AVG agree exactly regardless of accumulation order (docs/ivm.md).

Also asserted: ``EXPLAIN`` on the workload shows predicate_pushdown and
projection_pruning rewrites actually fired.

Asserted outside smoke mode: optimized/naive speedup >= 2x (the ISSUE 10
acceptance floor).  ``REPRO_SQL_SMOKE=1`` shrinks the table for CI,
keeping the equivalence asserts and the JSON artifact but skipping the
wall-clock floor.

The run writes ``BENCH_sql.json`` at the repo root.
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks.conftest import bench_artifact, run_once
from repro.sql import Database
from repro.table import Table

#: Wall-clock claim under test (ISSUE 10 acceptance criteria).
SPEEDUP_FLOOR = 2.0

ORDER_ROWS = 100_000
SMOKE_ORDER_ROWS = 5_000
N_CUSTOMERS = 5_000
N_PRODUCTS = 2_000
N_COUNTRIES = 30
N_CATEGORIES = 24
RUNS = 3

WORKLOAD = (
    "select category, count(*) as n, sum(amount) as total, "
    "avg(amount) as mean "
    "from orders "
    "join customers on cid = cid "
    "join products on pid = p_id "
    "where amount > 400 and status = 'gold' and country = 'country-3' "
    "group by category order by category"
)

STATUSES = ["gold", "silver", "bronze", "new", "vip",
            "churned", "trial", "paused", "lead", "vendor"]


def _amount(rng: np.random.Generator, n: int) -> list[float]:
    """Dyadic-grid amounts: exact float sums in any accumulation order."""
    return [float(v) * 0.25 for v in rng.integers(0, 2_400, size=n)]


def _database(rng: np.random.Generator, n_orders: int) -> Database:
    orders = Table.from_dict({
        "oid": list(range(n_orders)),
        "cid": [int(v) for v in rng.integers(0, N_CUSTOMERS, size=n_orders)],
        "pid": [int(v) for v in rng.integers(0, N_PRODUCTS, size=n_orders)],
        "amount": _amount(rng, n_orders),
        "status": [STATUSES[int(v)]
                   for v in rng.integers(0, len(STATUSES), size=n_orders)],
    })
    customers = Table.from_dict({
        "cid": list(range(N_CUSTOMERS)),
        "country": [f"country-{c % N_COUNTRIES}" for c in range(N_CUSTOMERS)],
    })
    products = Table.from_dict({
        "p_id": list(range(N_PRODUCTS)),
        "category": [f"cat-{p % N_CATEGORIES}" for p in range(N_PRODUCTS)],
    })
    return Database({"orders": orders, "customers": customers,
                     "products": products})


def test_ext_sql_optimizer_speedup(benchmark):
    smoke = os.environ.get("REPRO_SQL_SMOKE", "") not in ("", "0")
    rng = np.random.default_rng(10)
    n_orders = SMOKE_ORDER_ROWS if smoke else ORDER_ROWS
    db = _database(rng, n_orders)

    # The rewrites the speedup claim rests on must actually fire.
    explained = db.explain(WORKLOAD)
    assert "predicate_pushdown" in explained, explained
    assert "projection_pruning" in explained, explained

    def experiment():
        # Warm-up: the first optimized run pays the one-time (memoized)
        # column-stats computation that join reordering consults; steady
        # state is what the speedup claim is about.
        db.query(WORKLOAD)
        runs = []
        for _ in range(RUNS):
            start = time.perf_counter()
            optimized = db.query(WORKLOAD)
            optimized_seconds = time.perf_counter() - start

            start = time.perf_counter()
            naive = db.query(WORKLOAD, optimizer=False)
            naive_seconds = time.perf_counter() - start

            # Byte-identical equivalence, asserted on every measured run.
            assert list(optimized.rows()) == list(naive.rows())
            assert optimized.schema.names == naive.schema.names

            runs.append({
                "optimized_seconds": optimized_seconds,
                "naive_seconds": naive_seconds,
                "speedup": naive_seconds / optimized_seconds,
                "result_rows": optimized.num_rows,
            })
        return runs

    runs = run_once(benchmark, experiment)

    mean_optimized = float(np.mean([r["optimized_seconds"] for r in runs]))
    mean_naive = float(np.mean([r["naive_seconds"] for r in runs]))
    speedup = mean_naive / mean_optimized

    from repro.evaluation import ResultTable

    table = ResultTable(
        f"EXT-SQL: optimized plan vs naive executor "
        f"(orders={n_orders}, smoke={smoke})",
        ["run", "optimized (s)", "naive (s)", "speedup"],
    )
    for i, r in enumerate(runs):
        table.add(str(i), f"{r['optimized_seconds']:.4f}",
                  f"{r['naive_seconds']:.4f}", f"{r['speedup']:.1f}x")
    table.add("mean", f"{mean_optimized:.4f}", f"{mean_naive:.4f}",
              f"{speedup:.1f}x")
    table.show()

    bench_artifact("sql", {
        "smoke": smoke,
        "order_rows": n_orders,
        "customers": N_CUSTOMERS,
        "products": N_PRODUCTS,
        "runs": RUNS,
        "speedup_floor": SPEEDUP_FLOOR,
        "workload": WORKLOAD,
        "optimizer": {
            "speedup": speedup,
            "optimized_seconds": mean_optimized,
            "naive_seconds": mean_naive,
            "result_rows": runs[0]["result_rows"],
        },
        "per_run": runs,
    })

    if not smoke:
        assert speedup >= SPEEDUP_FLOOR, (
            f"optimized plan {speedup:.1f}x < {SPEEDUP_FLOOR}x floor "
            f"vs naive executor"
        )
