"""EXT-SERVING: the micro-batching serving runtime under closed-loop load.

Drives :class:`repro.serving.Server` with a seeded closed-loop load
generator over the foundation-model backend and measures the two claims
docs/serving.md makes quantitative:

- **Throughput**: batched serving (micro-batching + in-batch dedup +
  result cache + single-flight coalescing) sustains >= 3x the request
  throughput of the unbatched sequential baseline (one
  ``FoundationModel.complete`` per request) on a skewed workload of
  few-shot matching prompts.
- **Graceful shedding**: under a 2x-overload burst the server rejects
  load as 429-style ``rejected`` responses — zero uncaught exceptions —
  while every *admitted* request completes with a bounded p95 end-to-end
  latency (read from the ``serving.e2e.seconds`` histogram).

Knobs: ``REPRO_SERVING_SEED`` (default 11) seeds the load generator;
``REPRO_SERVING_SMOKE=1`` shrinks the workload for the CI serving job
(same assertions, ~seconds instead of ~a minute).
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np

from benchmarks.conftest import bench_artifact, run_once
from repro import obs
from repro.foundation.prompts import matching_demo, matching_prompt, qa_prompt
from repro.serving import FMBackend, Server

#: Throughput claim under test: served/sequential requests-per-second.
SPEEDUP_FLOOR = 3.0


def _matching_prompts(em, rng, num_unique: int) -> list[str]:
    """Few-shot matching prompts — the expensive, realistic unit of work."""
    labeled = em.labeled_pairs(num_unique + 6, seed=int(rng.integers(1 << 16)),
                               match_fraction=0.4)
    demos = [matching_demo(a.text(), b.text(), bool(label))
             for a, b, label in labeled[:6]]
    return [matching_prompt(a.text(), b.text(), demos)
            for a, b, _label in labeled[6 : 6 + num_unique]]


def _closed_loop(server: Server, workload: list[str], clients: int) -> list:
    """`clients` threads each drain a shard of the workload, one request in
    flight per client (closed loop)."""
    shards = [workload[i::clients] for i in range(clients)]
    out: list[list] = [[] for _ in range(clients)]

    def client(index: int) -> None:
        for prompt in shards[index]:
            out[index].append(server.call("fm", prompt, wait=60.0))

    threads = [threading.Thread(target=client, args=(i,), daemon=True)
               for i in range(clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return [r for shard in out for r in shard]


def test_ext_serving_throughput_and_shedding(benchmark, world, fact_store,
                                             foundation_model, em_by_domain):
    seed = int(os.environ.get("REPRO_SERVING_SEED", "11"))
    smoke = os.environ.get("REPRO_SERVING_SMOKE", "") not in ("", "0")
    num_unique = 8 if smoke else 24
    repeats = 12 if smoke else 12
    clients = 4 if smoke else 8

    rng = np.random.default_rng(seed)
    uniques = _matching_prompts(em_by_domain["products"], rng, num_unique)
    # Skewed closed-loop workload: every unique prompt appears `repeats`
    # times in shuffled order — the shape caches and dedup are built for.
    workload = [p for p in uniques for _ in range(repeats)]
    rng.shuffle(workload)

    def experiment():
        # -- sequential baseline: one complete() per request, no batching.
        start = time.perf_counter()
        baseline = [foundation_model.complete(p) for p in workload]
        baseline_seconds = time.perf_counter() - start

        # -- served: threaded micro-batching server, closed-loop clients.
        server = Server(workers=2, batch_window=0.002, max_batch=32,
                        max_depth=256)
        server.register(FMBackend(foundation_model))
        with server:
            start = time.perf_counter()
            served = _closed_loop(server, workload, clients)
            served_seconds = time.perf_counter() - start

        # -- overload: serial mode, burst 2x max_depth into one queue and
        # prove shedding is a response status, never an exception.  The
        # batch window/size triggers are pushed out of reach so the burst
        # actually accumulates queue depth before flush() drains it.
        overload = Server(workers=0, batch_window=60.0, max_batch=4096)
        overload.register(FMBackend(foundation_model), max_depth=len(uniques),
                          shed_threshold=0.75)
        burst, uncaught = [], 0
        for i in range(2 * len(uniques)):
            # Unique, grammar-valid prompts: no cache hit or coalescing can
            # siphon burst requests away from the queue under test.
            try:
                burst.append(overload.submit(
                    "fm", qa_prompt(f"what is the price of burst item {i}?"),
                    priority="low" if i % 2 else "normal",
                ))
            except Exception:  # noqa: BLE001 - the claim under test
                uncaught += 1
        overload.flush()
        overload.close()
        burst_responses = [f.result(5.0) for f in burst]
        report = obs.RunReport.collect("ext-serving")
        return (baseline, baseline_seconds, served, served_seconds,
                burst_responses, uncaught, report)

    (baseline, baseline_seconds, served, served_seconds,
     burst_responses, uncaught, report) = run_once(benchmark, experiment)

    baseline_rps = len(workload) / baseline_seconds
    served_rps = len(served) / served_seconds
    speedup = served_rps / baseline_rps

    rejected = [r for r in burst_responses if r.rejected]
    admitted = [r for r in burst_responses if not r.rejected]
    e2e = obs.get_registry().get("serving.e2e.seconds")
    p95 = e2e.quantile(0.95) if e2e is not None else None

    from repro.evaluation import ResultTable

    out = ResultTable(
        f"EXT-SERVING: batched vs sequential (seed={seed}, "
        f"{len(workload)} reqs, {num_unique} unique, smoke={smoke})",
        ["metric", "value"],
    )
    out.add("sequential baseline rps", f"{baseline_rps:.1f}")
    out.add("served rps (closed loop)", f"{served_rps:.1f}")
    out.add("speedup", f"{speedup:.2f}x")
    out.add("cache hit ratio", report.serving.get("cache_hit_ratio"))
    out.add("coalesced joins", report.serving.get("coalesced"))
    out.add("queue depth hwm", report.serving.get("queue_depth_hwm"))
    out.add("overload burst size", len(burst_responses))
    out.add("overload rejected", len(rejected))
    out.add("overload admitted+ok", sum(r.ok for r in admitted))
    out.add("uncaught exceptions", uncaught)
    out.add("admitted p95 e2e (s)", f"{p95:.4f}" if p95 is not None else "n/a")
    out.show()

    bench_artifact("serving", {
        "smoke": smoke,
        "seed": seed,
        "requests": len(workload),
        "unique_prompts": num_unique,
        "clients": clients,
        "speedup_floor": SPEEDUP_FLOOR,
        "baseline_rps": baseline_rps,
        "served_rps": served_rps,
        "speedup": speedup,
        "cache_hit_ratio": report.serving.get("cache_hit_ratio"),
        "coalesced": report.serving.get("coalesced"),
        "queue_depth_hwm": report.serving.get("queue_depth_hwm"),
        "overload": {
            "burst": len(burst_responses),
            "rejected": len(rejected),
            "admitted_ok": int(sum(r.ok for r in admitted)),
            "uncaught_exceptions": uncaught,
            "p95_e2e_seconds": p95,
        },
    })

    # Sanity: served answers match the sequential baseline answers.
    assert len(served) == len(baseline)
    assert all(r.ok for r in served)
    baseline_answers = {c.text for c in baseline}
    assert {r.value.text for r in served} <= baseline_answers

    # Claim 1: micro-batching + dedup + cache clear the 3x throughput floor.
    assert speedup >= SPEEDUP_FLOOR, (
        f"served {served_rps:.1f} rps vs baseline {baseline_rps:.1f} rps "
        f"= {speedup:.2f}x < {SPEEDUP_FLOOR}x"
    )

    # Claim 2: 2x overload sheds gracefully — rejections are responses,
    # never exceptions, and every admitted request resolved OK.
    assert uncaught == 0
    assert rejected, "overload burst produced no rejections"
    assert all(r.error.startswith("rejected:") for r in rejected)
    assert all(r.ok for r in admitted)

    # Claim 3: admitted-request latency is bounded and observable — the
    # p95 estimate comes from the serving.e2e.seconds histogram the
    # RunReport ships.
    assert p95 is not None and p95 < 5.0
    assert report.serving["submitted"] > 0
    assert report.serving["rejected"] == len(rejected)
