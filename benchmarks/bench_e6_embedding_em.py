"""E6 (§3.2(2)): word-embedding entity matching vs string-similarity rules.

Claim to reproduce: representing entities with pre-trained word embeddings
(first-generation PLMs) and learning a classifier beats the no-learning
string-similarity rule baseline across domains — given enough labels, which
is the family's stated requirement.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once, split_labeled
from repro.evaluation import ResultTable
from repro.matching import EmbeddingMatcher, RuleBasedMatcher
from repro.ml import precision_recall_f1


def test_e6_embedding_em(benchmark, em_by_domain, skipgram):
    def experiment():
        rows = []
        for domain, dataset in sorted(em_by_domain.items()):
            labeled = dataset.labeled_pairs(260, seed=2, match_fraction=0.5)
            tr_pairs, tr_y, te_pairs, te_y = split_labeled(labeled, 180)
            rule_f1 = precision_recall_f1(
                te_y, RuleBasedMatcher().predict(te_pairs)
            ).f1
            matcher = EmbeddingMatcher(skipgram.embed_text)
            matcher.fit(tr_pairs, tr_y)
            embed_f1 = precision_recall_f1(te_y, matcher.predict(te_pairs)).f1
            rows.append((domain, rule_f1, embed_f1))
        return rows

    rows = run_once(benchmark, experiment)

    table = ResultTable("E6: rule baseline vs word-embedding EM (180 labels)",
                        ["domain", "rule f1", "embedding f1"])
    for domain, rule_f1, embed_f1 in rows:
        table.add(domain, rule_f1, embed_f1)
    table.show()

    # Shape: the learned embedding matcher wins (or ties) in every domain
    # and wins clearly on average.
    gains = [embed_f1 - rule_f1 for _d, rule_f1, embed_f1 in rows]
    assert all(g >= -0.02 for g in gains)
    assert float(np.mean(gains)) > 0.03
