"""E11 (§3.2(5)): Unicorn-style unified data matching.

Claim to reproduce: a *single* model — unified encoder + mixture-of-experts
+ one matcher head — handles multiple matching task types at once, with
accuracy comparable to per-task specialist models of the same architecture;
and (ablation) the MoE layer earns its keep over expert-count 1.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.evaluation import ResultTable
from repro.matching import UnicornMatcher, unified_task_mixture


@pytest.fixture(scope="module")
def task_mixture(world, em_by_domain):
    instances = unified_task_mixture(world, em_by_domain["products"],
                                     per_task=60, seed=0)
    cut = int(len(instances) * 0.7)
    return instances[:cut], instances[cut:]


def test_e11_unified_vs_specialists(benchmark, task_mixture, fresh_encoder):
    train, test = task_mixture

    def experiment():
        unified = UnicornMatcher(fresh_encoder(), num_experts=3, seed=0)
        unified.fit(train, epochs=6)
        unified_per_task = unified.per_task_accuracy(test)

        specialist_per_task = {}
        for task in sorted({i.task for i in train}):
            specialist = UnicornMatcher(fresh_encoder(), num_experts=1, seed=0)
            specialist.fit([i for i in train if i.task == task], epochs=6)
            specialist_per_task[task] = specialist.per_task_accuracy(
                [i for i in test if i.task == task]
            )[task]

        single_expert = UnicornMatcher(fresh_encoder(), num_experts=1, seed=0)
        single_expert.fit(train, epochs=6)
        return {
            "unified": unified_per_task,
            "specialists": specialist_per_task,
            "unified overall": unified.accuracy(test),
            "no-moe overall": single_expert.accuracy(test),
            "expert usage": unified.expert_usage(test),
        }

    results = run_once(benchmark, experiment)

    table = ResultTable("E11: unified model vs per-task specialists (accuracy)",
                        ["task", "unified (1 model)", "specialist (3 models)"])
    for task in sorted(results["unified"]):
        table.add(task, results["unified"][task], results["specialists"][task])
    table.show()
    print(f"unified overall: {results['unified overall']:.3f} | "
          f"ablation without MoE (1 expert): {results['no-moe overall']:.3f}")
    for task, usage in results["expert usage"].items():
        print(f"  expert usage [{task}]: {np.round(usage, 2)}")

    # Shape: one unified model ≈ per-task specialists on every task…
    for task in results["unified"]:
        assert results["unified"][task] >= results["specialists"][task] - 0.05, task
    # …and the unified model is strong overall.
    assert results["unified overall"] > 0.85
