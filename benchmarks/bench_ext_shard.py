"""EXT-SHARD: sharded kernels vs the single-table oracles at scale.

Times the 1M-row join and group_by through :mod:`repro.shard` —
partitioned, co-located, with per-shard key indexes amortized at
partition time — against the cold single-table kernels, and asserts:

- **Equivalence** on every measured run: the sharded result is
  row-identical (canonical order, union row-codes) to the whole-table
  kernel.  Always asserted, smoke or not.
- **Speedup**: join and group_by each clear the >= 3x floor at the
  default sizes.  The win on a single-CPU machine comes from the
  amortized :class:`~repro.shard.ShardIndex` (the cold kernels
  re-factorize and re-sort per call); process workers multiply it on
  real multicore, which the artifact records honestly (``cpu_count``,
  ``workers``).  Skipped under ``REPRO_SHARD_SMOKE=1``, where CI runs
  shrunken sizes for the equivalence asserts and the JSON artifact.

The run writes ``BENCH_shard.json`` at the repo root;
``benchmarks/BENCH_baseline.json`` gates ``shard.join.speedup`` and
``shard.group_by.speedup``.
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks.conftest import bench_artifact, run_once
from repro.par import ProcessMap, available_cpus
from repro.shard import HashPartitioner, PartitionedTable, kernels
from repro.table import Table, row_codes

#: Wall-clock claim under test for both sharded kernels.
SPEEDUP_FLOOR = 3.0
NUM_SHARDS = 8


def _min_of(n: int, fn):
    """Best-of-n wall time plus the last result (noise-robust timing)."""
    best, result = float("inf"), None
    for _ in range(n):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _assert_same_rows(a: Table, b: Table) -> None:
    """Canonical row-multiset equality — the exactness gate every measured
    run must pass before its timing counts."""
    assert a.schema.names == b.schema.names
    assert a.num_rows == b.num_rows
    if a.num_rows == 0:
        return
    both = kernels.concat_tables(a.schema, [a, b])
    codes = row_codes(list(both.columns()))
    n = a.num_rows
    left = np.sort(codes[:n])
    right = np.sort(codes[n:])
    assert np.array_equal(left, right)


def _tables(rng: np.random.Generator, n_left: int,
            distinct: int) -> tuple[Table, Table]:
    """An orders fact table (string customer keys, dyadic amounts) and a
    key-unique customers dimension — the classic co-location workload."""
    left = Table.from_dict({
        "customer": [f"c{int(v)}" for v in rng.integers(0, distinct, n_left)],
        "region": rng.integers(0, 12, n_left).tolist(),
        "amount": (rng.integers(0, 4000, n_left) / 4.0).tolist(),
    })
    right = Table.from_dict({
        "customer": [f"c{i}" for i in range(distinct)],
        "tier": rng.integers(0, 5, distinct).tolist(),
    })
    return left, right


def test_ext_shard_kernels(benchmark):
    smoke = os.environ.get("REPRO_SHARD_SMOKE", "") not in ("", "0")
    rng = np.random.default_rng(23)
    n_left, distinct = (20_000, 2_000) if smoke else (1_000_000, 100_000)
    pmap = ProcessMap()  # auto: serial on 1 CPU, min(cpus, 8) otherwise
    on = [("customer", "customer")]
    group_aggs = [("sum", "amount", "total"), ("count", "amount", "n")]

    def experiment():
        left, right = _tables(rng, n_left, distinct)

        # Partition both sides co-located on the join key and build the
        # shard indexes now — the amortized cost the artifact reports.
        start = time.perf_counter()
        pl = PartitionedTable.partition(
            left, HashPartitioner(("customer",), NUM_SHARDS),
            build_indexes=True)
        pr = PartitionedTable.partition(
            right, HashPartitioner(("customer",), NUM_SHARDS),
            build_indexes=True)
        partition_seconds = time.perf_counter() - start

        results = {
            "rows_left": n_left, "rows_right": right.num_rows,
            "num_shards": NUM_SHARDS, "workers": pmap.workers,
            "cpus": available_cpus(),
            "partition_and_index_seconds": partition_seconds,
        }

        # -- join: cold single-table kernel vs co-located indexed shards --
        single_seconds, oracle = _min_of(
            3, lambda: left.join(right, on, "inner", suffix="_r"))
        shard_seconds, sharded = _min_of(
            3, lambda: kernels.join(pl, pr, on, "inner", suffix="_r",
                                    pmap=pmap, broadcast_limit=0))
        _assert_same_rows(sharded, oracle)
        results["join"] = {
            "single_seconds": single_seconds,
            "sharded_seconds": shard_seconds,
            "speedup": single_seconds / shard_seconds,
            "rows_out": oracle.num_rows,
        }

        # -- group_by: cold single-table kernel vs indexed shards ---------
        single_seconds, oracle = _min_of(
            3, lambda: left.group_by(["customer"], group_aggs))
        shard_seconds, sharded = _min_of(
            3, lambda: kernels.group_by(pl, ["customer"], group_aggs,
                                        pmap=pmap))
        _assert_same_rows(sharded, oracle)
        results["group_by"] = {
            "single_seconds": single_seconds,
            "sharded_seconds": shard_seconds,
            "speedup": single_seconds / shard_seconds,
            "groups": oracle.num_rows,
        }
        return results

    results = run_once(benchmark, experiment)

    from repro.evaluation import ResultTable

    table = ResultTable(
        f"EXT-SHARD: sharded vs single-table kernels (smoke={smoke}, "
        f"shards={NUM_SHARDS}, workers={results['workers']})",
        ["kernel", "single (s)", "sharded (s)", "speedup"],
    )
    for kernel in ("join", "group_by"):
        row = results[kernel]
        table.add(kernel, f"{row['single_seconds']:.3f}",
                  f"{row['sharded_seconds']:.3f}",
                  f"{row['speedup']:.1f}x")
    table.show()

    bench_artifact("shard", {
        "smoke": smoke,
        "speedup_floor": SPEEDUP_FLOOR,
        **results,
    })

    if not smoke:
        for kernel in ("join", "group_by"):
            speedup = results[kernel]["speedup"]
            assert speedup >= SPEEDUP_FLOOR, (
                f"{kernel}: {speedup:.2f}x < {SPEEDUP_FLOOR}x floor"
            )
