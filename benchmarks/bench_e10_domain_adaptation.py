"""E10 (§3.2(4)): domain adaptation for entity resolution.

Claim to reproduce: under domain shift, a source-trained matcher degrades on
the target; the three adaptation families (discrepancy / adversarial /
reconstruction) recover much of the lost F1 using only *unlabelled* target
pairs, with the target-supervised model as the ceiling.  Includes the λ
(alignment-weight) ablation DESIGN.md calls out.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.adaptation import (
    AdversarialAdapter,
    CORALAdapter,
    MMDAdapter,
    ReconstructionAdapter,
    SourceOnlyAdapter,
    featurize_pairs,
)
from repro.adaptation.features import covariate_shift
from repro.datasets.em import papers_em
from repro.evaluation import ResultTable
from repro.ml import precision_recall_f1

SEEDS = (0, 1, 2)


@pytest.fixture(scope="module")
def shift_data(world, em_by_domain):
    source = papers_em(world, seed=1, noise=0.5)
    target = em_by_domain["products"]
    src = source.labeled_pairs(300, seed=3, match_fraction=0.5)
    tgt = target.labeled_pairs(300, seed=4, match_fraction=0.5)
    Xs = featurize_pairs([(a, b) for a, b, _l in src])
    ys = np.array([l for *_x, l in src])
    # The target catalog's serializer drifted: a fixed affine distortion of
    # every similarity statistic (see covariate_shift's docstring).
    Xt = covariate_shift(featurize_pairs([(a, b) for a, b, _l in tgt]),
                         strength=0.6, seed=7)
    yt = np.array([l for *_x, l in tgt])
    return Xs, ys, Xt[:150], Xt[150:], yt[:150], yt[150:]


def _mean_f1(adapter_cls, Xs, ys, Xt_tr, Xt_te, yt_te, **kwargs) -> float:
    scores = []
    for seed in SEEDS:
        adapter = adapter_cls(input_dim=Xs.shape[1], epochs=50, seed=seed, **kwargs)
        adapter.fit(Xs, ys, Xt_tr)
        scores.append(precision_recall_f1(yt_te, adapter.predict(Xt_te)).f1)
    return float(np.mean(scores))


def test_e10_domain_adaptation(benchmark, shift_data):
    Xs, ys, Xt_tr, Xt_te, yt_tr, yt_te = shift_data

    def experiment():
        results = {}
        results["source-only (floor)"] = _mean_f1(
            SourceOnlyAdapter, Xs, ys, Xt_tr, Xt_te, yt_te
        )
        results["coral (discrepancy)"] = _mean_f1(
            CORALAdapter, Xs, ys, Xt_tr, Xt_te, yt_te
        )
        results["mmd (discrepancy)"] = _mean_f1(
            MMDAdapter, Xs, ys, Xt_tr, Xt_te, yt_te, lam=0.05
        )
        results["adversarial (DANN)"] = _mean_f1(
            AdversarialAdapter, Xs, ys, Xt_tr, Xt_te, yt_te
        )
        results["reconstruction"] = _mean_f1(
            ReconstructionAdapter, Xs, ys, Xt_tr, Xt_te, yt_te
        )
        # Ceiling: the same architecture trained on labelled target data.
        scores = []
        for seed in SEEDS:
            ceiling = SourceOnlyAdapter(input_dim=Xs.shape[1], epochs=50, seed=seed)
            ceiling.fit(Xt_tr, yt_tr, Xt_tr)
            scores.append(precision_recall_f1(yt_te, ceiling.predict(Xt_te)).f1)
        results["target-supervised (ceiling)"] = float(np.mean(scores))
        return results

    results = run_once(benchmark, experiment)

    table = ResultTable(
        "E10: papers -> products (drifted), F1 on target (mean of 3 seeds)",
        ["method", "f1"],
    )
    for name, f1 in results.items():
        table.add(name, f1)
    table.show()

    floor = results["source-only (floor)"]
    ceiling = results["target-supervised (ceiling)"]
    gap = ceiling - floor
    # Shape: a real gap exists, and the best adapters recover most of it.
    assert gap > 0.05
    best = max(results["coral (discrepancy)"], results["mmd (discrepancy)"],
               results["adversarial (DANN)"])
    assert best >= floor + 0.6 * gap
    # Every family at least matches the floor (reconstruction is the
    # weakest in the DADER study too).
    for name in ("coral (discrepancy)", "mmd (discrepancy)",
                 "adversarial (DANN)", "reconstruction"):
        assert results[name] >= floor - 0.05, name


def test_e10_lambda_ablation(benchmark, shift_data):
    """Ablation: the MMD alignment weight trades off alignment vs collapse."""
    Xs, ys, Xt_tr, Xt_te, _yt_tr, yt_te = shift_data

    def experiment():
        return {
            lam: _mean_f1(MMDAdapter, Xs, ys, Xt_tr, Xt_te, yt_te, lam=lam)
            for lam in (0.01, 0.05, 0.5, 2.0)
        }

    curve = run_once(benchmark, experiment)
    table = ResultTable("E10 ablation: MMD weight λ", ["lambda", "f1"])
    for lam, f1 in curve.items():
        table.add(lam, f1)
    table.show()

    # Shape: a moderate λ beats a crushing one (over-alignment collapses
    # class structure — the known MMD failure mode).
    assert max(curve[0.01], curve[0.05]) > curve[2.0]
