"""E9 (§3.2(3)): label efficiency of the fine-tuned PLM (Ditto).

Claim to reproduce: starting from a pre-trained encoder, the Ditto-style
matcher reaches high F1 with a *small* number of labels, while the
first-generation approach (static embeddings + classifier over embedding
features only) needs far more labels to catch up — "fine-tune data
preparation tasks with a relatively small number of training examples".
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once, split_labeled
from repro.evaluation import ResultTable
from repro.matching import DittoMatcher, EmbeddingMatcher
from repro.ml import precision_recall_f1

BUDGETS = [10, 40, 160]


def test_e9_label_efficiency(benchmark, em_by_domain, skipgram, fresh_encoder):
    dataset = em_by_domain["products"]
    labeled = dataset.labeled_pairs(260, seed=2, match_fraction=0.5)
    tr_pairs, tr_y, te_pairs, te_y = split_labeled(labeled, 160)

    def experiment():
        from repro.plm import MiniBert

        curves: dict[str, dict[int, float]] = {
            "ditto": {}, "ditto-scratch": {}, "embedding": {},
        }
        for budget in BUDGETS:
            ditto = DittoMatcher(fresh_encoder(), seed=0)
            ditto.fit(tr_pairs[:budget], tr_y[:budget], epochs=8)
            curves["ditto"][budget] = precision_recall_f1(
                te_y, ditto.predict(te_pairs)
            ).f1
            # Ablation: same matcher on a randomly-initialized encoder.
            template = fresh_encoder()
            scratch_encoder = MiniBert(
                template.vocab, dim=template.dim,
                num_layers=len(template.blocks),
                num_heads=template.blocks[0].attn.num_heads,
                ff_dim=template.blocks[0].ff._items[0].out_features,
                max_len=template.max_len, seed=99,
            )
            scratch = DittoMatcher(scratch_encoder, seed=0)
            scratch.fit(tr_pairs[:budget], tr_y[:budget], epochs=8)
            curves["ditto-scratch"][budget] = precision_recall_f1(
                te_y, scratch.predict(te_pairs)
            ).f1
            # First-generation baseline: static embedding features only
            # (no string-similarity crutches), which is the family the
            # tutorial says "requires a large amount of training examples".
            embedding = EmbeddingMatcher(
                skipgram.embed_text, use_string_features=False
            )
            embedding.fit(tr_pairs[:budget], tr_y[:budget])
            curves["embedding"][budget] = precision_recall_f1(
                te_y, embedding.predict(te_pairs)
            ).f1
        return curves

    curves = run_once(benchmark, experiment)

    table = ResultTable(
        "E9: F1 vs number of labels (products)",
        ["labels", "ditto (pretrained PLM)", "ditto (random init)",
         "embedding features"],
    )
    for budget in BUDGETS:
        table.add(budget, curves["ditto"][budget],
                  curves["ditto-scratch"][budget], curves["embedding"][budget])
    table.show()
    print("ablation: the gap between the two Ditto columns is the value of "
          "MLM pretraining at each label budget")

    # Shape: with 10 labels Ditto is already usable and clearly ahead…
    assert curves["ditto"][10] > 0.55
    assert curves["ditto"][10] > curves["embedding"][10] + 0.1
    # …and stays ahead or equal at every budget while both improve.
    for budget in BUDGETS:
        assert curves["ditto"][budget] >= curves["embedding"][budget] - 0.05
    assert curves["ditto"][160] >= curves["ditto"][10]
