"""Extension benches for the intro-cited preparation systems.

- **EXT-D (intro: "enriching a data set with other data sets", ARDA)**:
  guarded join enrichment from the lake improves downstream accuracy while
  rejecting useless and hazardous joins.
- **EXT-E (intro: string transformation, CLX/FlashFill)**: programs
  synthesized from 1–2 examples generalize to the rest of the column.
- **EXT-F (intro: exploration/visualization, DeepEye + §3.3(2) ATENA)**:
  chart ranking puts the planted signal first; the RL EDA agent's greedy
  sessions at least match random exploration.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.cleaning import transform_column
from repro.datasets.dirty import restaurants_table
from repro.evaluation import ResultTable
from repro.explore import ATENAAgent, ChartSpec, random_session, recommend_charts
from repro.lake import DataLake, Enricher
from repro.table import Table


def test_ext_d_enrichment(benchmark):
    rng = np.random.default_rng(0)
    n = 150
    uids = [f"u{i:03d}" for i in range(n)]
    strong = rng.normal(size=n)
    label = (strong + 0.3 * rng.normal(size=n) > 0).astype(int)
    base = Table.from_rows(
        list(zip(uids, rng.normal(size=n).tolist(), label.tolist())),
        names=["uid", "weak", "label"],
    )
    lake = DataLake()
    lake.add_table("profiles", Table.from_rows(
        list(zip(uids, strong.tolist())), names=["uid", "signal"]), "profiles")
    lake.add_table("noise_features", Table.from_rows(
        [(u, float(rng.normal())) for u in uids], names=["uid", "noise"]),
        "random noise keyed by uid")
    lake.add_table("unrelated", Table.from_rows(
        [(f"x{i}", float(i)) for i in range(60)], names=["key", "junk"]),
        "no key overlap")

    def experiment():
        _enriched, report = Enricher(lake, seed=0, min_gain=0.01).enrich(
            base, "uid", "label"
        )
        return report

    report = run_once(benchmark, experiment)
    table = ResultTable("EXT-D: ARDA-style enrichment", ["metric", "value"])
    table.add("base accuracy", report.base_score)
    table.add("enriched accuracy", report.final_score)
    table.add("accepted joins", ", ".join(a.table_name for a in report.accepted))
    table.add("rejected joins", ", ".join(a.table_name for a in report.rejected))
    table.show()

    assert report.gain > 0.15
    assert [a.table_name for a in report.accepted] == ["profiles"]
    assert "noise_features" in [a.table_name for a in report.rejected]


def test_ext_e_transform_by_example(benchmark, world):
    names = [r.name for r in world.restaurants[:40]]
    # Hidden transformation: title-case every word, the FlashFill classic.
    def hidden(name: str) -> str:
        return " ".join(w.capitalize() for w in name.split())

    examples = [(names[0], hidden(names[0])), (names[1], hidden(names[1]))]
    targets = [hidden(n) for n in names]

    phone_examples = [("365-943-6490", "(365) 943 6490")]
    phones = [r.phone for r in world.restaurants[:40]]
    phone_targets = [f"({p[:3]}) {p[4:7]} {p[8:]}" for p in phones]

    def experiment():
        out_names = transform_column(names, examples)
        out_phones = transform_column(phones, phone_examples)
        return (
            float(np.mean([a == b for a, b in zip(out_names, targets)])),
            float(np.mean([a == b for a, b in zip(out_phones, phone_targets)])),
        )

    name_acc, phone_acc = run_once(benchmark, experiment)
    table = ResultTable("EXT-E: transformation by example", ["column", "accuracy"])
    table.add("restaurant names (2 examples)", name_acc)
    table.add("phone formats (1 example)", phone_acc)
    table.show()

    assert phone_acc == 1.0
    assert name_acc > 0.9


def test_ext_f_exploration(benchmark, world):
    rng = np.random.default_rng(0)
    x = rng.normal(size=80)
    signal_table = Table.from_dict({
        "x": x.tolist(),
        "y": (3 * x + rng.normal(scale=0.1, size=80)).tolist(),
        "noise": rng.normal(size=80).tolist(),
        "group": (["a"] * 40 + ["b"] * 40),
    })
    eda_table = restaurants_table(world).limit(60)

    def experiment():
        charts = recommend_charts(signal_table, k=3)
        greedy, rand = [], []
        for seed in range(5):
            agent = ATENAAgent(seed=seed)
            agent.train(eda_table, episodes=60, steps_per_episode=5)
            greedy.append(agent.generate_session(eda_table, steps=5).total_reward)
            rand.append(random_session(eda_table, steps=5, seed=seed).total_reward)
        return charts, float(np.mean(greedy)), float(np.mean(rand))

    charts, greedy, rand = run_once(benchmark, experiment)
    table = ResultTable("EXT-F: top recommended charts", ["chart", "score"])
    for ranked in charts:
        table.add(ranked.spec.describe(), ranked.score)
    table.show()
    print(f"EDA sessions: trained {greedy:.2f} vs random {rand:.2f}")

    # The planted x~y correlation must rank first among scatter choices.
    assert charts[0].spec == ChartSpec("scatter", x="x", y="y")
    assert greedy >= rand - 0.1
