"""EXT-CHAOS: the resilience layer under deterministic fault injection.

Arms the chaos harness (seeded :class:`~repro.resilience.FaultInjector`) at
a 10% fault rate on the two hottest injection points — ``fm.complete`` and
``pipeline.operator`` — then drives foundation-model matching, direct
pipeline application with ``on_error="skip"``, and a full evaluator-backed
random search through the storm.  The claims under test are the §3.1
robustness story made quantitative:

- retries + fallback tiers recover ≥ 90% of the injected faults;
- zero uncaught exceptions escape ``PrepPipeline.apply(on_error="skip")``;
- the emitted :class:`~repro.obs.RunReport` lists every
  :class:`~repro.resilience.DegradationEvent` and the fallback tier counts.

Knobs: ``REPRO_CHAOS_SEED`` (default 7) and ``REPRO_CHAOS_RATE``
(default 0.10) parameterize the bench the same way they arm the CI chaos
job.
"""

from __future__ import annotations

import os

import numpy as np

from benchmarks.conftest import bench_artifact, run_once
from repro import obs
from repro.datasets.mltasks import make_ml_task
from repro.evaluation import ResultTable
from repro.matching import FallbackMatcher, FoundationModelMatcher, RuleBasedMatcher
from repro.pipelines import PipelineEvaluator, PrepPipeline, RandomSearch, build_registry
from repro.pipelines.operators import STAGES
from repro.resilience import FaultInjector, get_log, set_injector


def test_ext_chaos_fault_recovery(benchmark, world, fact_store,
                                  foundation_model, em_by_domain):
    seed = int(os.environ.get("REPRO_CHAOS_SEED", "7"))
    rate = float(os.environ.get("REPRO_CHAOS_RATE", "0.10"))

    em = em_by_domain["products"]
    labeled = em.labeled_pairs(60, seed=5, match_fraction=0.4)
    pairs = [(a, b) for a, b, _l in labeled]
    task = make_ml_task("chaos", n_samples=90, missing_rate=0.1, seed=3)
    registry = build_registry()

    injector = FaultInjector(seed=seed)
    injector.configure("fm.complete", rate=rate)
    injector.configure("pipeline.operator", rate=rate)

    def experiment():
        previous = set_injector(injector)
        try:
            # (1) FM matching traffic: per-pair retries, then the rule tier.
            matcher = FallbackMatcher([
                ("fm", FoundationModelMatcher(foundation_model, strict=True)),
                ("rule", RuleBasedMatcher()),
            ])
            matcher.predict(pairs)

            # (2) Direct pipeline application with graceful degradation:
            # nothing may escape on_error="skip".
            rng = np.random.default_rng(seed)
            uncaught = 0
            split = int(len(task.X) * 0.7)
            for _ in range(20):
                ops = tuple(
                    registry[stage][int(rng.integers(len(registry[stage])))]
                    for stage in STAGES
                )
                try:
                    PrepPipeline(ops).apply(
                        task.X[:split], task.y[:split], task.X[split:],
                        on_error="skip",
                    )
                except Exception:  # noqa: BLE001 - the claim under test
                    uncaught += 1

            # (3) Evaluator-backed search: transient faults must be retried
            # before any failure is cached.
            search = RandomSearch(registry, seed=seed).search(
                task, PipelineEvaluator(seed=0), budget=8
            )
            report = obs.RunReport.collect("ext-chaos")
            return uncaught, search, report
        finally:
            set_injector(previous)

    uncaught, search, report = run_once(benchmark, experiment)

    reg = obs.get_registry()

    def count(name: str) -> int:
        instrument = reg.get(name)
        return int(instrument.value) if instrument is not None else 0

    injected = sum(injector.injected.values())
    # A fault is lost when its operation yielded no usable result: an
    # uncaught exception, or a transient failure the evaluator still cached.
    lost_evals = sum(
        1 for e in get_log().events()
        if e.component == "pipeline.evaluator" and "injected fault" in e.error
    )
    lost = uncaught + lost_evals
    recovery = 1.0 - lost / max(injected, 1)

    table = ResultTable("EXT-CHAOS: recovery under injected faults "
                        f"(seed={seed}, rate={rate:.0%})",
                        ["metric", "value"])
    table.add("faults injected @ fm.complete",
              injector.injected.get("fm.complete", 0))
    table.add("faults injected @ pipeline.operator",
              injector.injected.get("pipeline.operator", 0))
    table.add("fm retries", count("resilience.retry.fm.complete.retries"))
    table.add("operator retries", count("resilience.retry.pipeline.op.retries"))
    table.add("matcher pairs via fm tier", count("fallback.matcher.tier.fm"))
    table.add("matcher pairs via rule tier", count("fallback.matcher.tier.rule"))
    table.add("pipeline ops skipped", count("pipeline.op.degraded"))
    table.add("evaluator transient retries",
              count("pipeline.eval.transient_retries"))
    table.add("degradation events", len(report.degradations))
    table.add("uncaught exceptions (on_error=skip)", uncaught)
    table.add("fault recovery rate", f"{recovery:.3f}")
    table.show()

    bench_artifact("chaos", {
        "seed": seed,
        "rate": rate,
        "injected": dict(injector.injected),
        "injected_total": injected,
        "lost": lost,
        "recovery_rate": recovery,
        "uncaught_exceptions": uncaught,
        "degradation_events": len(report.degradations),
    })

    # The chaos harness actually fired, at both points.
    assert injector.injected.get("fm.complete", 0) > 0
    assert injector.injected.get("pipeline.operator", 0) > 0

    # Claim 1: retries + fallbacks recover >= 90% of injected faults.
    assert recovery >= 0.90

    # Claim 2: zero uncaught exceptions escape on_error="skip".
    assert uncaught == 0

    # The search completed end-to-end and still found a working pipeline.
    assert search.evaluated == 8 and search.best_score > 0.0

    # Claim 3: the RunReport carries the full degradation audit trail and
    # the fallback tier counts.
    assert len(report.degradations) == len(get_log().events())
    served_tiers = {
        name: summary["value"] for name, summary in report.metrics.items()
        if name.startswith("fallback.") and ".tier." in name
        and not name.endswith(".failures")
    }
    assert served_tiers, "fallback tier counts missing from the report"
    assert sum(served_tiers.values()) >= len(pairs)
