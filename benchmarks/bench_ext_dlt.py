"""EXT-DLT: the declarative pipeline's two quantitative claims.

1. **Checkpointed resume beats full refresh.**  A medallion DAG with five
   independent heavy silver branches materializes fully, then exactly one
   source goes dirty and the refresh recomputes only that branch (plus the
   cheap gold union) while the other four serve from the checkpoint.
   ``resume_speedup`` (full wall time / dirty refresh wall time) must
   clear ``RESUME_SPEEDUP_FLOOR`` (3×): with 1 of 5 heavy tables stale the
   refresh does ~1/5th of the compute, and the headroom absorbs checkpoint
   I/O for the cached branches.

2. **Expectations are cheap.**  The same DAG runs with its full
   expectation stack and with none; ``expectation_overhead_fraction``
   (extra wall time / bare wall time) must stay under
   ``EXPECTATION_OVERHEAD_CEILING`` (10%) — predicates are vectorized
   column passes over data the transforms already touched.

The artifact lands in ``BENCH_dlt.json`` via the shared envelope and the
``resume_speedup`` / ``expectation_overhead_fraction`` metrics flow into
``BENCH_summary.json`` for the regression gate.

Knobs: ``REPRO_PERF_SMOKE=1`` shrinks the tables for the CI smoke lane
(claims recorded, not asserted).
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks.conftest import bench_artifact, run_once
from repro import dlt, obs
from repro.evaluation import ResultTable
from repro.table import Table

RESUME_SPEEDUP_FLOOR = 3.0
EXPECTATION_OVERHEAD_CEILING = 0.10


def _source_table(seed: int, rows: int) -> Table:
    rng = np.random.default_rng(seed)
    values = rng.normal(100.0, 30.0, size=rows)
    nulls = rng.random(rows) < 0.05
    return Table.from_dict({
        "id": list(range(rows)),
        "v": [None if n else float(f"{v:.4f}")
              for v, n in zip(values, nulls)],
        "grp": [int(g) for g in rng.integers(0, 50, size=rows)],
    })


def _heavy(table: Table, passes: int) -> Table:
    """A deliberately compute-bound transform (sorted group scan x N)."""
    out = table
    for _ in range(passes):
        groups = out.group_by(["grp"], [("avg", "v", "v_mean")])
        assert groups.num_rows > 0
    return out


BRANCHES = 5


def _build(checkpoint_dir, sources: dict[str, Table], *, passes: int,
           with_expectations: bool) -> dlt.Pipeline:
    """Five independent heavy silver branches (one per source) feeding a
    single cheap gold union — dirtying one source invalidates ~1/5 of the
    pipeline's compute."""
    import inspect

    silvers = []
    for i in range(BRANCHES):
        src_name = f"src_{i}"

        def silver_fn(src, _passes=passes):
            return _heavy(src, _passes)
        silver_fn.__name__ = f"silver_{i}"
        silver_fn.__signature__ = inspect.Signature([
            inspect.Parameter(src_name,
                              inspect.Parameter.POSITIONAL_OR_KEYWORD)])

        silver = dlt.table(silver_fn, name=f"silver_{i}", layer="silver")
        if with_expectations:
            silver = dlt.expect_or_drop(
                f"s{i}_v_known", dlt.col("v").not_null())(silver)
            silver = dlt.expect(
                f"s{i}_v_range",
                dlt.col("v").between(-1000.0, 1000.0))(silver)
        silvers.append(silver)

    def gold_fn(*tables):
        return Table.from_dict(
            {"rows": [sum(t.num_rows for t in tables)]})
    gold_fn.__name__ = "gold_all"
    gold_fn.__signature__ = inspect.Signature([
        inspect.Parameter(f"silver_{i}",
                          inspect.Parameter.POSITIONAL_OR_KEYWORD)
        for i in range(BRANCHES)])
    gold_all = dlt.table(gold_fn, name="gold_all", layer="gold")

    pipe = dlt.Pipeline("bench", checkpoint_dir=checkpoint_dir)
    for name, table in sources.items():
        pipe.source(name, table)
    return pipe.add(*silvers, gold_all)


def test_ext_dlt_resume_and_expectations(benchmark, tmp_path):
    smoke = os.environ.get("REPRO_PERF_SMOKE", "") not in ("", "0")
    # ``passes`` sets the compute-to-checkpoint-I/O ratio: the resume claim
    # needs the transforms (not JSON ser/de) to dominate, as they do in any
    # real pipeline worth checkpointing.
    rows = 2_000 if smoke else 20_000
    passes = 2 if smoke else 100

    obs.reset()

    def experiment():
        sources = {f"src_{i}": _source_table(i + 1, rows)
                   for i in range(BRANCHES)}

        # -- claim 1: resume vs full refresh with one dirty source --------
        ckpt = tmp_path / "resume"
        start = time.perf_counter()
        full = _build(ckpt, sources, passes=passes,
                      with_expectations=True).run(full_refresh=True)
        full_seconds = time.perf_counter() - start
        assert full.ok and len(full.computed) == BRANCHES + 1

        # One source changes: only its silver branch and the (cheap) gold
        # union are stale — 1 of 5 heavy tables recomputes.
        dirty_sources = dict(sources)
        dirty_sources["src_4"] = _source_table(99, rows)
        start = time.perf_counter()
        resumed = _build(ckpt, dirty_sources, passes=passes,
                         with_expectations=True).refresh()
        resume_seconds = time.perf_counter() - start
        assert resumed.ok
        assert set(resumed.computed) == {"silver_4", "gold_all"}
        resume_speedup = full_seconds / resume_seconds

        # -- claim 2: the expectation stack is cheap ----------------------
        start = time.perf_counter()
        bare = _build(tmp_path / "bare", sources, passes=passes,
                      with_expectations=False).run(full_refresh=True)
        bare_seconds = time.perf_counter() - start
        start = time.perf_counter()
        checked = _build(tmp_path / "checked", sources, passes=passes,
                         with_expectations=True).run(full_refresh=True)
        checked_seconds = time.perf_counter() - start
        assert bare.ok and checked.ok
        # the drop expectation actually dropped the injected nulls
        assert (checked.table("silver_0").num_rows
                < bare.table("silver_0").num_rows)
        overhead = max(0.0, (checked_seconds - bare_seconds) / bare_seconds)

        return {
            "full_refresh_seconds": full_seconds,
            "resume_seconds": resume_seconds,
            "resume_speedup": resume_speedup,
            "resume_recomputed_tables": len(resumed.computed),
            "pipeline_tables": BRANCHES + 1,
            "bare_seconds": bare_seconds,
            "checked_seconds": checked_seconds,
            "expectation_overhead_fraction": overhead,
            "quarantined_rows": sum(
                checked.results[f"silver_{i}"].quarantined
                for i in range(BRANCHES)),
        }

    results = run_once(benchmark, experiment)

    table = ResultTable(
        f"EXT-DLT: checkpointed refresh + expectation overhead "
        f"(smoke={smoke})",
        ["claim", "value", "bound"],
    )
    table.add("resume speedup (1 of 5 sources dirty)",
              f"{results['resume_speedup']:.1f}x",
              f">= {RESUME_SPEEDUP_FLOOR}x")
    table.add("expectation overhead",
              f"{results['expectation_overhead_fraction'] * 100:.1f}%",
              f"< {EXPECTATION_OVERHEAD_CEILING * 100:.0f}%")
    table.add("quarantined rows", str(results["quarantined_rows"]), "> 0")
    table.show()

    bench_artifact("dlt", {
        "smoke": smoke,
        "rows_per_source": rows,
        "resume_speedup_floor": RESUME_SPEEDUP_FLOOR,
        "expectation_overhead_limit": EXPECTATION_OVERHEAD_CEILING,
        "results": results,
    })

    assert results["quarantined_rows"] > 0
    if not smoke:
        assert results["resume_speedup"] >= RESUME_SPEEDUP_FLOOR, (
            f"resume {results['resume_speedup']:.2f}x < "
            f"{RESUME_SPEEDUP_FLOOR}x floor"
        )
        assert (results["expectation_overhead_fraction"]
                < EXPECTATION_OVERHEAD_CEILING), (
            f"expectations cost "
            f"{results['expectation_overhead_fraction']:.1%}, ceiling is "
            f"{EXPECTATION_OVERHEAD_CEILING:.0%}"
        )
