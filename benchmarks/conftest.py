"""Shared benchmark fixtures.

Benchmarks measure *experiments*, not micro-ops, so each experiment body
runs exactly once per bench (``benchmark.pedantic(..., rounds=1)``) and the
expensive shared artifacts — the world, corpora, trained embedders and the
pre-trained encoder — are built once per session here.

Every bench prints the table/series the corresponding DESIGN.md experiment
defines and asserts the qualitative *shape* the tutorial claims.

Each bench also emits a :class:`repro.obs.RunReport` JSON artifact — the
span tree and metric counters explaining *why* the timing came out the way
it did (prompt counts, cache behavior, per-operator latency).  Artifacts
land in ``benchmarks/_reports/`` by default; set ``REPRO_OBS_DIR`` to
redirect, or ``REPRO_OBS_DIR=0`` to disable.
"""

from __future__ import annotations

import json
import os
import platform
import re
import subprocess
import time
from pathlib import Path

import numpy as np
import pytest

from repro import obs, resilience
from repro.datasets.em import papers_em, products_em, restaurants_em
from repro.datasets.world import make_world, world_corpus
from repro.embeddings import FastTextModel, SkipGramModel, Vocab
from repro.foundation import FactStore, FoundationModel
from repro.matching.ditto import serialize_record
from repro.plm import MiniBert, MLMPretrainer


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


#: Shared BENCH_*.json artifact schema, bumped on breaking changes.
#: v1: every artifact carries schema_version / bench / git_rev /
#: generated_at / environment, with bench-specific payload keys beside them.
BENCH_SCHEMA_VERSION = 1

REPO_ROOT = Path(__file__).resolve().parent.parent


def git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            cwd=Path(__file__).resolve().parent, timeout=10,
        ).stdout.strip() or "unknown"
    except Exception:  # noqa: BLE001 - the artifact degrades, the bench runs
        return "unknown"


def environment() -> dict:
    """The environment manifest stamped into every bench artifact."""
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def bench_artifact(name: str, payload: dict) -> Path:
    """Write ``BENCH_<name>.json`` at the repo root in the shared schema.

    Every bench writer goes through here so ``benchmarks/summarize.py``
    (and any dashboard) can rely on one envelope: ``schema_version``,
    ``bench``, ``git_rev``, ``generated_at`` (UTC ISO-8601) and the
    ``environment`` manifest, with the bench-specific payload merged in.
    """
    artifact = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "bench": name,
        "git_rev": git_rev(),
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "environment": environment(),
        **payload,
    }
    path = REPO_ROOT / f"BENCH_{name}.json"
    path.write_text(json.dumps(artifact, indent=2) + "\n")
    return path


def _report_dir() -> Path | None:
    configured = os.environ.get("REPRO_OBS_DIR", "")
    if configured in ("0", "off", "none"):
        return None
    if configured:
        return Path(configured)
    return Path(__file__).resolve().parent / "_reports"


@pytest.fixture(autouse=True)
def obs_run_report(request):
    """Reset observability state per bench and emit a RunReport artifact.

    The reset isolates each bench's counters from session-fixture setup and
    from earlier benches; the artifact preserves the explanatory trace next
    to the raw pytest-benchmark timing.
    """
    obs.reset()
    resilience.reset()
    yield
    out_dir = _report_dir()
    if out_dir is None:
        return
    report = obs.RunReport.collect(request.node.name)
    if not report.spans and not report.metrics:
        return  # nothing instrumented ran; don't litter empty artifacts
    safe = re.sub(r"[^A-Za-z0-9_.-]+", "_", request.node.name)
    report.save(out_dir / f"{safe}.json")
    if report.spans:
        # The same trees as a Perfetto-loadable Chrome trace, for timeline
        # inspection of what the bench actually did.
        report.save_trace(out_dir / f"{safe}.trace.json")


@pytest.fixture(scope="session")
def world():
    return make_world(seed=0, num_products=100, num_restaurants=80, num_papers=80)


@pytest.fixture(scope="session")
def corpus(world):
    return world_corpus(world, sentences_per_fact=1, seed=1)


@pytest.fixture(scope="session")
def fact_store(world):
    return FactStore(world.facts())


@pytest.fixture(scope="session")
def foundation_model(fact_store):
    return FoundationModel(fact_store)


@pytest.fixture(scope="session")
def em_by_domain(world):
    return {
        "products": products_em(world, seed=1),
        "restaurants": restaurants_em(world, seed=1),
        "papers": papers_em(world, seed=1),
    }


@pytest.fixture(scope="session")
def record_texts(em_by_domain):
    out = []
    for dataset in em_by_domain.values():
        out.extend(serialize_record(r) for r in dataset.source_a + dataset.source_b)
    return out


@pytest.fixture(scope="session")
def vocab(corpus, record_texts, world, em_by_domain):
    # Cover the unified-matching task texts too (schema synonyms like
    # "manufacturer" never occur in the world corpus).
    from repro.matching import unified_task_mixture

    mixture = unified_task_mixture(world, em_by_domain["products"],
                                   per_task=60, seed=0)
    task_texts = [f"{inst.task} {inst.left} {inst.right}" for inst in mixture]
    return Vocab(corpus + record_texts + task_texts)


@pytest.fixture(scope="session")
def fasttext(vocab, corpus, em_by_domain):
    value_texts = [
        r.value_text()
        for dataset in em_by_domain.values()
        for r in dataset.source_a + dataset.source_b
    ]
    model = FastTextModel(vocab, dim=24, seed=0)
    model.train(corpus[:300] + value_texts[:200], epochs=1)
    return model


@pytest.fixture(scope="session")
def skipgram(vocab, corpus, em_by_domain):
    value_texts = [
        r.value_text()
        for dataset in em_by_domain.values()
        for r in dataset.source_a + dataset.source_b
    ]
    model = SkipGramModel(vocab, dim=24, seed=0)
    model.train(corpus[:400] + value_texts[:200], epochs=2)
    return model


@pytest.fixture(scope="session")
def encoder_state(vocab, corpus, record_texts):
    """Pre-trained encoder weights, cloned per bench via fresh_encoder."""
    encoder = MiniBert(vocab, dim=32, num_layers=2, num_heads=2,
                       ff_dim=64, max_len=32, seed=0)
    MLMPretrainer(encoder, seed=0).train(
        corpus[:250] + record_texts[:250], steps=120, batch_size=16
    )
    return encoder.state_dict()


@pytest.fixture
def fresh_encoder(vocab, encoder_state):
    def make() -> MiniBert:
        encoder = MiniBert(vocab, dim=32, num_layers=2, num_heads=2,
                           ff_dim=64, max_len=32, seed=0)
        encoder.load_state_dict(encoder_state)
        return encoder
    return make


def split_labeled(labeled, n_train):
    train, test = labeled[:n_train], labeled[n_train:]
    return (
        [(a, b) for a, b, _l in train],
        np.array([l for *_x, l in train]),
        [(a, b) for a, b, _l in test],
        np.array([l for *_x, l in test]),
    )
