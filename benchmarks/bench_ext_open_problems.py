"""Extension benches: the tutorial's open problems, implemented and measured.

- **EXT-A (§3.1 open problems, human-centered AI)**: top-k repair
  suggestions reduce reviewer effort — most flagged cells are resolved by a
  pick instead of typing, and hit@k grows with k.
- **EXT-B (§3.2 open problems, domain-adaptive augmentation)**: training a
  matcher on *synthesized* target-domain labels (no human labels) recovers
  most of the target-supervised ceiling.
- **EXT-C (§3.3 open problems, AutoML integration)**: jointly searching
  (pipeline × model) beats pipeline search under any single fixed model on a
  task suite where the best model varies by task.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.adaptation import SourceOnlyAdapter, featurize_pairs, synthesize_training_pairs
from repro.cleaning import (
    AssistedCleaningSession,
    DictionaryDetector,
    PatternDetector,
    TopKRepairSuggester,
    detect_all,
)
from repro.datasets.dirty import make_dirty, restaurants_table
from repro.datasets.mltasks import make_ml_task
from repro.datasets.world import CITIES, CUISINES
from repro.evaluation import ResultTable
from repro.ml import precision_recall_f1
from repro.pipelines import JointAutoMLSearch, MODEL_FACTORIES, build_registry


def test_ext_a_assisted_cleaning(benchmark, world, fact_store):
    table = restaurants_table(world)
    dirty = make_dirty(table, error_rate=0.35, seed=11,
                       kinds=("typo", "case", "whitespace"))
    detectors = [
        PatternDetector(),
        DictionaryDetector({
            "city": {c for c, _s in CITIES}, "cuisine": set(CUISINES),
        }),
    ]
    truth = {(e.row, e.column): e.clean_value for e in dirty.errors}

    def experiment():
        suggester = TopKRepairSuggester(
            fact_store, k=3,
            dictionaries={"city": {c for c, _s in CITIES},
                          "cuisine": set(CUISINES)},
        )
        flags = detect_all(dirty.dirty, detectors)
        session = AssistedCleaningSession(suggester)
        _cleaned, report = session.run(dirty.dirty, flags, truth)
        return report

    report = run_once(benchmark, experiment)

    table_out = ResultTable("EXT-A: assisted cleaning with top-k repairs",
                            ["metric", "value"])
    table_out.add("cells reviewed", report.cells_reviewed)
    table_out.add("resolved by a pick (effort saved)", report.effort_saved)
    for k in (1, 2, 3):
        table_out.add(f"suggestion hit@{k}", report.hit_rate(k))
    table_out.show()

    assert report.cells_reviewed > 10
    # Most reviews become picks, and hit@k is monotone in k.
    assert report.effort_saved > 0.5
    assert report.hit_rate(1) <= report.hit_rate(2) <= report.hit_rate(3)


def test_ext_b_domain_adaptive_augmentation(benchmark, world, em_by_domain):
    from repro.datasets.em import papers_em

    source = papers_em(world, seed=1, noise=0.5)
    target = em_by_domain["products"]
    src = source.labeled_pairs(260, seed=3, match_fraction=0.5)
    tgt = target.labeled_pairs(260, seed=4, match_fraction=0.5)
    Xs = featurize_pairs([(a, b) for a, b, _l in src])
    ys = np.array([l for *_x, l in src])
    Xt = featurize_pairs([(a, b) for a, b, _l in tgt])
    yt = np.array([l for *_x, l in tgt])
    Xt_tr, Xt_te, yt_tr, yt_te = Xt[:130], Xt[130:], yt[:130], yt[130:]

    def experiment():
        def mean_f1(X_train, y_train):
            scores = []
            for seed in (0, 1, 2):
                model = SourceOnlyAdapter(input_dim=Xs.shape[1], epochs=40,
                                          seed=seed)
                model.fit(X_train, y_train, Xt_tr)
                scores.append(
                    precision_recall_f1(yt_te, model.predict(Xt_te)).f1
                )
            return float(np.mean(scores))

        results = {"source transfer (no target labels)": mean_f1(Xs, ys)}
        synthetic = synthesize_training_pairs(target.source_b, 260, seed=0)
        X_syn = featurize_pairs([(a, b) for a, b, _l in synthetic])
        y_syn = np.array([l for *_x, l in synthetic])
        results["synthesized target labels (hands-off)"] = mean_f1(X_syn, y_syn)
        results["real target labels (ceiling)"] = mean_f1(Xt_tr, yt_tr)
        return results

    results = run_once(benchmark, experiment)
    table = ResultTable("EXT-B: hands-off ER via augmentation (target F1)",
                        ["training data", "f1"])
    for name, f1 in results.items():
        table.add(name, f1)
    table.show()

    floor = results["source transfer (no target labels)"]
    hands_off = results["synthesized target labels (hands-off)"]
    ceiling = results["real target labels (ceiling)"]
    # Shape: synthesized labels land between raw transfer and the ceiling,
    # recovering a meaningful share of the gap without any human labels.
    assert hands_off >= floor - 0.05
    assert hands_off >= ceiling - 0.15


def test_ext_c_joint_automl(benchmark):
    registry = build_registry()
    tasks = [
        make_ml_task("interaction", interaction=True, missing_rate=0.1,
                     outlier_rate=0.0, n_samples=220, seed=31),
        make_ml_task("outliers", missing_rate=0.1, outlier_rate=0.08,
                     n_samples=220, seed=32),
        make_ml_task("plain", missing_rate=0.15, n_samples=220, seed=33),
    ]
    budget = 18

    def experiment():
        rows = {}
        for task in tasks:
            joint = JointAutoMLSearch(registry, seed=0).search(task, budget)
            fixed = {
                name: JointAutoMLSearch(registry, model_names=[name], seed=0)
                .search(task, budget).best_score
                for name in MODEL_FACTORIES
            }
            rows[task.name] = (joint.best_score, fixed,
                               joint.best.model_name)
        return rows

    rows = run_once(benchmark, experiment)

    table = ResultTable(
        "EXT-C: joint (pipeline x model) search vs fixed-model search",
        ["task", "joint", "best fixed", "worst fixed", "joint's model"],
    )
    for task_name, (joint_score, fixed, chosen) in rows.items():
        table.add(task_name, joint_score, max(fixed.values()),
                  min(fixed.values()), chosen)
    table.show()

    # Shape: per task, joint search ~matches the best fixed model (which it
    # cannot know in advance); averaged over tasks it clearly beats the
    # worst fixed choice — the cost of guessing the model wrong.
    for task_name, (joint_score, fixed, _chosen) in rows.items():
        assert joint_score >= max(fixed.values()) - 0.05, task_name
    joint_mean = np.mean([r[0] for r in rows.values()])
    worst_mean = np.mean([min(r[1].values()) for r in rows.values()])
    assert joint_mean > worst_mean + 0.02
