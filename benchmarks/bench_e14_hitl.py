"""E14 (§3.3(3)): human-in-the-loop pipeline generation.

Claims to reproduce:

- **HAIPipe**: combining the best human pipeline with machine search seeded
  around it is at least as good as either alone, and strictly better than
  the human alone on tasks with blind-spot structure;
- **Auto-Suggest**: a next-operator recommender trained on the human corpus
  beats the context-free popularity baseline at predicting held-out human
  choices;
- **Auto-Pipeline**: by-target synthesis recovers hidden table-
  transformation programs from input/output examples alone.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.datasets.mltasks import make_ml_task, task_suite
from repro.evaluation import ResultTable
from repro.pipelines import (
    HAIPipe,
    NextOperatorRecommender,
    PipelineEvaluator,
    STAGES,
    build_registry,
    generate_corpus,
    synthesize_by_target,
)
from repro.table import Table


@pytest.fixture(scope="module")
def hitl_setup():
    registry = build_registry()
    tasks = task_suite(seed=0, n_samples=200)
    probe = make_ml_task("probe", interaction=True, missing_rate=0.12,
                         n_samples=240, seed=21)
    corpus = generate_corpus(registry, tasks + [probe],
                             pipelines_per_task=40, seed=0)
    return registry, corpus, probe


def test_e14_haipipe(benchmark, hitl_setup):
    registry, corpus, probe = hitl_setup

    def experiment():
        rows = []
        for seed in (0, 1, 2):
            evaluator = PipelineEvaluator(seed=0)
            result = HAIPipe(registry, corpus, seed=seed).run(
                probe, evaluator, budget=18
            )
            rows.append((result.human_score, result.machine_score,
                         result.combined_score))
        return rows

    rows = run_once(benchmark, experiment)

    table = ResultTable("E14a: HAIPipe on an interaction task (3 seeds)",
                        ["seed", "human", "machine", "combined"])
    for seed, (human, machine, combined) in enumerate(rows):
        table.add(seed, human, machine, combined)
    table.show()

    for human, machine, combined in rows:
        # Combination never loses to either side…
        assert combined >= human - 1e-9
        assert combined >= machine - 1e-9
    # …and on average strictly improves on the human-only pipelines (the
    # machine explores the blind-spot neighborhood humans skip).
    humans = np.mean([r[0] for r in rows])
    combineds = np.mean([r[2] for r in rows])
    assert combineds > humans + 0.02


def test_e14_next_operator_recommender(benchmark, hitl_setup):
    registry, corpus, _probe = hitl_setup
    pipelines = corpus.pipelines
    cut = int(len(pipelines) * 0.7)
    train_corpus = type(corpus)(pipelines=pipelines[:cut])
    held_out = pipelines[cut:]

    def experiment():
        recommender = NextOperatorRecommender().fit(train_corpus)
        hits_model = 0
        hits_popularity = 0
        total = 0
        for hp in held_out:
            names = hp.operator_names
            for i in range(1, len(STAGES)):
                total += 1
                if names[i] in recommender.recommend(i, names[i - 1], k=2):
                    hits_model += 1
                if names[i] in recommender.popularity_baseline(i, k=2)[:1]:
                    hits_popularity += 1
        return hits_model / total, hits_popularity / total

    model_acc, popularity_acc = run_once(benchmark, experiment)
    table = ResultTable("E14b: next-operator prediction (hit@k on held-out)",
                        ["method", "accuracy"])
    table.add("Auto-Suggest (transitions, k=2)", model_acc)
    table.add("popularity (k=1)", popularity_acc)
    table.show()

    assert model_acc > popularity_acc
    assert model_acc > 0.5


def test_e14_by_target_synthesis(benchmark):
    rng = np.random.default_rng(3)

    def hidden_program(table: Table) -> Table:
        out = table.map_column("name", lambda v: v.lower() if v else v)
        out = out.map_column(
            "name", lambda v: " ".join(v.split()) if isinstance(v, str) else v
        )
        return out.drop(["internal_code"])

    def experiment():
        recovered = 0
        trials = 6
        for t in range(trials):
            names = [
                f"  {'Person'} {chr(65 + (t + i) % 26)}{i} " for i in range(6)
            ]
            source = Table.from_dict({
                "name": names,
                "score": [float(i) for i in range(6)],
                "internal_code": [f"ic{t}{i}" for i in range(6)],
            })
            target = hidden_program(source)
            result = synthesize_by_target(source, target, max_depth=4)
            recovered += result.agreement >= 0.999
        return recovered / trials

    recovery = run_once(benchmark, experiment)
    print(f"E14c: by-target synthesis program recovery rate: {recovery:.2f}")
    assert recovery >= 0.8
    _ = rng  # reserved for future randomized programs
