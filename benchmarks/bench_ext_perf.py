"""EXT-PERF: the perf-regression harness for the vectorized kernels.

Times each rewritten kernel against the thin ``*_reference``
implementation it replaced — same seeds, same data, same update
semantics — and asserts two things:

- **Equivalence**: the vectorized kernel produces the same numbers as the
  reference (``np.allclose`` on weights/losses, set equality on candidate
  sets, tuple equality on search results).  Always asserted.
- **Speedup**: the three biggest kernels (skip-gram training, embedding
  blocking, MLM pretraining) clear a >= 3x wall-clock floor at the default
  bench sizes.  Skipped in ``REPRO_PERF_SMOKE=1`` mode, where the CI perf
  job runs the same code on shrunken inputs purely for the equivalence
  asserts and the JSON artifact.

The run writes ``BENCH_perf.json`` at the repo root: per-kernel wall
times, throughput, speedup, and the git revision — the artifact a perf
dashboard (or the next PR) diffs against.
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks.conftest import bench_artifact, run_once
from repro.datasets.em import EMDataset, Record
from repro.datasets.mltasks import task_suite
from repro.embeddings import FastTextModel, SkipGramModel, Vocab
from repro.par import ParallelMap, ProcessMap
from repro.pipelines.operators import build_registry
from repro.pipelines.pipeline import PipelineEvaluator
from repro.pipelines.search import RandomSearch
from repro.plm import MiniBert, MLMPretrainer

#: Wall-clock claim under test for the three biggest kernels.
SPEEDUP_FLOOR = 3.0


def _word_corpus(rng: np.random.Generator, vocab_size: int, sentences: int,
                 length: int) -> list[str]:
    """Zipf-ish synthetic corpus over ``vocab_size`` distinct words."""
    tokens = np.array([f"w{i}" for i in range(vocab_size)])
    weights = 1.0 / np.arange(1, vocab_size + 1)
    weights /= weights.sum()
    return [
        " ".join(rng.choice(tokens, size=length, p=weights))
        for _ in range(sentences)
    ]


def _em_dataset(rng: np.random.Generator, per_source: int) -> EMDataset:
    """Synthetic two-source EM dataset with heavy token reuse (the shape
    the unique-token embedding cache exploits)."""
    brands = [f"brand{i}" for i in range(24)]
    items = ["laptop", "camera", "phone", "tablet", "monitor", "router",
             "speaker", "drive", "printer", "keyboard"]

    def records(prefix: str) -> list[Record]:
        out = []
        for i in range(per_source):
            name = (f"{brands[i % len(brands)]} {items[i % len(items)]} "
                    f"model {i % 61}")
            out.append(Record(f"{prefix}{i}", {"name": name,
                                               "price": str(10 + i % 97)}))
        return out

    return EMDataset("perf", records("a"), records("b"),
                     matches={("a0", "b0")},
                     attribute_names=["name", "price"])


def test_ext_perf_kernels(benchmark):
    smoke = os.environ.get("REPRO_PERF_SMOKE", "") not in ("", "0")
    rng = np.random.default_rng(17)

    # Default (asserted) sizes vs smoke sizes for the CI perf job.
    sg_sentences, sg_dim, sg_epochs = (40, 16, 1) if smoke else (260, 32, 2)
    em_per_source = 60 if smoke else 450
    mlm_vocab, mlm_batch, mlm_steps = (60, 8, 1) if smoke else (1800, 32, 3)
    search_budget = 4 if smoke else 24

    def experiment():
        results: dict[str, dict] = {}

        # -- kernel 1: skip-gram training (fused batched SGNS) -------------
        corpus = _word_corpus(rng, vocab_size=400, sentences=sg_sentences,
                              length=9)
        vocab = Vocab(corpus)
        vec = SkipGramModel(vocab, dim=sg_dim, seed=3)
        ref = SkipGramModel(vocab, dim=sg_dim, seed=3)
        start = time.perf_counter()
        vec_loss = vec.train(corpus, epochs=sg_epochs)
        vec_seconds = time.perf_counter() - start
        start = time.perf_counter()
        ref_loss = ref.train_reference(corpus, epochs=sg_epochs)
        ref_seconds = time.perf_counter() - start
        assert np.allclose(vec_loss, ref_loss)
        assert np.allclose(vec.in_vectors, ref.in_vectors)
        assert np.allclose(vec.out_vectors, ref.out_vectors)
        pairs = sum(p.shape[1] for p in vec._sentence_pairs(corpus))
        results["skipgram_train"] = {
            "reference_seconds": ref_seconds,
            "vectorized_seconds": vec_seconds,
            "speedup": ref_seconds / vec_seconds,
            "throughput_pairs_per_second": pairs * sg_epochs / vec_seconds,
            "pairs_per_epoch": pairs,
        }

        # -- kernel 2: embedding blocking (unique-token cache + blocked
        # top-k, parallel row blocks) --------------------------------------
        dataset = _em_dataset(rng, em_per_source)
        ft_corpus = [r.text() for r in dataset.source_a + dataset.source_b]
        fasttext = FastTextModel(Vocab(ft_corpus), dim=24, seed=1)
        from repro.matching.blocking import EmbeddingBlocker

        blocker = EmbeddingBlocker(token_embed=fasttext.token_vector, k=5,
                                   attribute="name", row_block=128,
                                   parallel=ParallelMap(workers=4))
        start = time.perf_counter()
        vec_candidates = blocker.candidates(dataset)
        vec_seconds = time.perf_counter() - start
        start = time.perf_counter()
        ref_candidates = blocker.candidates_reference(dataset)
        ref_seconds = time.perf_counter() - start
        assert vec_candidates == ref_candidates
        comparisons = len(dataset.source_a) * len(dataset.source_b)
        results["embedding_blocking"] = {
            "reference_seconds": ref_seconds,
            "vectorized_seconds": vec_seconds,
            "speedup": ref_seconds / vec_seconds,
            "throughput_comparisons_per_second": comparisons / vec_seconds,
            "candidates": len(vec_candidates),
        }

        # -- kernel 3: MLM pretraining loss (masked-position gather) -------
        mlm_corpus = _word_corpus(rng, vocab_size=mlm_vocab,
                                  sentences=240 if not smoke else 40,
                                  length=24)
        bert_vocab = Vocab(mlm_corpus)
        model = MiniBert(bert_vocab, dim=32, num_layers=1, max_len=32, seed=0)
        trainer = MLMPretrainer(model, seed=0)
        ids, masks = model.batch_encode(mlm_corpus[:mlm_batch])
        corrupted, labels = trainer.corruption(ids, masks)

        def timed_steps(loss_fn) -> tuple[float, list[float]]:
            losses = []
            start = time.perf_counter()
            for _ in range(mlm_steps):
                trainer._optimizer.zero_grad()
                loss = loss_fn(corrupted, masks, labels)
                loss.backward()
                losses.append(float(loss.data))
            return time.perf_counter() - start, losses

        vec_seconds, vec_losses = timed_steps(trainer.loss_on)
        ref_seconds, ref_losses = timed_steps(trainer.loss_on_reference)
        assert np.allclose(vec_losses, ref_losses)
        masked = int((labels >= 0).sum())
        results["mlm_pretraining"] = {
            "reference_seconds": ref_seconds,
            "vectorized_seconds": vec_seconds,
            "speedup": ref_seconds / vec_seconds,
            "throughput_masked_tokens_per_second":
                masked * mlm_steps / vec_seconds,
            "masked_positions": masked,
            "vocab": len(bert_vocab),
        }

        # -- kernel 4: process-parallel pipeline search.  The evaluator is
        # GIL-bound, so the pool is a ProcessMap.  Two timings: the pool
        # forced on at fixed size (the raw fork/IPC cost, recorded but not
        # gated — on a single-CPU box it loses) and the default crossover
        # policy with an auto-sized pool.  When the policy leaves the pool
        # out (auto-sizing reports 0 workers on a single-CPU machine), the
        # run *is* the serial code path, so its speedup is 1.0 by
        # construction — timing two executions of identical code and
        # reporting their noise ratio was the old bug behind the 0.84x /
        # 0.86x artifact entries.  On a multi-core machine the pool engages
        # and the measured ratio is reported instead.
        task = task_suite(seed=0, n_samples=160)[0]
        registry = build_registry()

        def run_search(parallel, min_budget):
            searcher = RandomSearch(registry, seed=7, parallel=parallel,
                                    parallel_min_budget=min_budget)
            start = time.perf_counter()
            result = searcher.search(task, PipelineEvaluator(seed=1),
                                     budget=search_budget)
            return time.perf_counter() - start, result

        serial_seconds, serial_result = run_search(None, 0)
        forced_seconds, forced_result = run_search(
            ProcessMap(workers=2, chunk_size=2), 0)
        policy_pool = ProcessMap()  # sizes itself to the machine
        policy_seconds, policy_result = run_search(policy_pool, 16)
        for result in (forced_result, policy_result):
            assert result.best_pipeline.names == serial_result.best_pipeline.names
            assert result.best_score == serial_result.best_score
            assert result.trajectory == serial_result.trajectory
            assert result.failures == serial_result.failures
        engaged = policy_pool.workers > 0 and search_budget >= 16
        results["pipeline_search"] = {
            "reference_seconds": serial_seconds,
            "vectorized_seconds": policy_seconds,
            "speedup": serial_seconds / policy_seconds if engaged else 1.0,
            "forced_seconds": forced_seconds,
            "forced_speedup": serial_seconds / forced_seconds,
            "pool_engaged": engaged,
            "workers": policy_pool.workers,
            "throughput_evaluations_per_second":
                policy_result.evaluated / policy_seconds,
            "budget": search_budget,
        }
        return results

    results = run_once(benchmark, experiment)

    from repro.evaluation import ResultTable

    table = ResultTable(
        f"EXT-PERF: vectorized vs reference kernels (smoke={smoke})",
        ["kernel", "reference (s)", "vectorized (s)", "speedup"],
    )
    for kernel, row in results.items():
        table.add(kernel, f"{row['reference_seconds']:.3f}",
                  f"{row['vectorized_seconds']:.3f}",
                  f"{row['speedup']:.1f}x")
    table.show()

    bench_artifact("perf", {
        "smoke": smoke,
        "speedup_floor": SPEEDUP_FLOOR,
        "kernels": results,
    })

    if not smoke:
        for kernel in ("skipgram_train", "embedding_blocking",
                       "mlm_pretraining"):
            speedup = results[kernel]["speedup"]
            assert speedup >= SPEEDUP_FLOOR, (
                f"{kernel}: {speedup:.2f}x < {SPEEDUP_FLOOR}x floor"
            )
        # The crossover policy must never lose to serial: either the pool
        # engaged and won, or it stayed out and the run was serial (1.0).
        search_speedup = results["pipeline_search"]["speedup"]
        assert search_speedup >= 1.0, (
            f"pipeline_search: {search_speedup:.2f}x < 1.0x policy floor"
        )
