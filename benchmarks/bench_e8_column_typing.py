"""E8 (§3.2(2)(3)): column type annotation — features vs PLM vs Doduo.

Claim to reproduce: fine-tuned-PLM annotators that read the values beat the
hand-feature baseline, and the Doduo-style multi-task annotator — whose
shared encoder also reads the table context — beats the single-task PLM,
because some types (a product release year vs a paper publication year) are
indistinguishable from their values alone.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.datasets.columns import make_column_corpus
from repro.embeddings import Vocab
from repro.evaluation import ResultTable
from repro.matching import DoduoAnnotator, FeatureAnnotator, PLMAnnotator
from repro.plm import MiniBert, MLMPretrainer


@pytest.fixture(scope="module")
def column_setup(world, corpus):
    samples = make_column_corpus(
        world, num_columns=300, seed=0, values_per_column=4,
        generic_header_prob=0.55, missing_header_prob=0.35,
    )
    texts = [s.serialized(include_context=True) for s in samples]
    vocab = Vocab(corpus + texts)
    base = MiniBert(vocab, dim=32, num_layers=2, num_heads=2,
                    ff_dim=64, max_len=48, seed=0)
    MLMPretrainer(base, seed=0).train(corpus[:250], steps=120, batch_size=16)
    state = base.state_dict()

    def fresh() -> MiniBert:
        encoder = MiniBert(vocab, dim=32, num_layers=2, num_heads=2,
                           ff_dim=64, max_len=48, seed=0)
        encoder.load_state_dict(state)
        return encoder

    return samples[:210], samples[210:], fresh


def test_e8_column_typing(benchmark, column_setup):
    train, test, fresh = column_setup

    def experiment():
        results = {}
        feature = FeatureAnnotator(seed=0).fit(train)
        results["feature baseline (RF)"] = feature.accuracy(test)
        plm = PLMAnnotator(fresh(), seed=0)
        plm.fit(train, epochs=6)
        results["PLM single-task"] = plm.accuracy(test)
        doduo = DoduoAnnotator(fresh(), seed=0)
        doduo.fit(train, epochs=6)
        results["Doduo multi-task + context"] = doduo.accuracy(test)
        return results

    results = run_once(benchmark, experiment)

    table = ResultTable("E8: column type annotation accuracy (15 types)",
                        ["annotator", "accuracy"])
    for name, acc in results.items():
        table.add(name, acc)
    table.show()

    # Shape: features < single-task PLM < Doduo.
    assert results["PLM single-task"] > results["feature baseline (RF)"]
    assert results["Doduo multi-task + context"] > results["PLM single-task"]
