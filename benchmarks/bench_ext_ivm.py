"""EXT-IVM: delta-proportional view maintenance vs full recompute.

Maintains the tentpole chain — ``filter(amount > 0) → join(users, on=uid)
→ group_by(country, sum/count)`` — over a 100k-row orders stream, pushing
1%-sized delta batches (a mix of inserts and deletes), and times each
incremental update (push through the operator tree + fresh view read)
against recomputing the same query from the post-delta snapshot with the
batch kernels.

Asserted on **every measured batch**: the maintained view equals the
batch recompute as a bag of rows — the batch kernels are the semantics.
Amounts are drawn from a dyadic grid (multiples of 0.25), where float
addition is exact in any order, so the sum/avg comparison is exact
equality, not approximate (docs/ivm.md).

Asserted outside smoke mode: mean speedup >= 10x (the acceptance floor —
incremental cost is O(delta + touched groups), recompute is O(table)).
``REPRO_IVM_SMOKE=1`` shrinks the table for CI, keeping the equivalence
asserts and the JSON artifact but skipping the wall-clock floor (CI
machines are too noisy).

The run writes ``BENCH_ivm.json`` at the repo root.
"""

from __future__ import annotations

import os
import time
from collections import Counter

import numpy as np

from benchmarks.conftest import bench_artifact, run_once
from repro.ivm import Delta, StreamTable
from repro.table import Table

#: Wall-clock claim under test (ISSUE 8 acceptance criteria).
SPEEDUP_FLOOR = 10.0

BASE_ROWS = 100_000
SMOKE_BASE_ROWS = 4_000
#: Each delta batch mutates 1% of the base table.
DELTA_FRACTION = 0.01
BATCHES = 5
N_USERS = 1_000
N_COUNTRIES = 40

AGGREGATES = [("sum", "amount", "total"), ("count", "amount", "n")]


def _amount(rng: np.random.Generator) -> float:
    """Dyadic-grid amounts: exact float sums in any accumulation order."""
    return float(rng.integers(-200, 2_000)) * 0.25


def _orders(rng: np.random.Generator, n: int, start_oid: int) -> Table:
    rows = [
        (start_oid + i, int(rng.integers(0, N_USERS)), _amount(rng))
        for i in range(n)
    ]
    return Table.from_rows(rows, schema=[("oid", "int"), ("uid", "int"),
                                         ("amount", "float")])


def _users() -> Table:
    rows = [(u, f"country-{u % N_COUNTRIES}") for u in range(N_USERS)]
    return Table.from_rows(rows, schema=[("uid", "int"), ("country", "str")])


def _positive(table: Table):
    return table.column_array("amount") > 0


def _recompute(orders_snapshot: Table, users: Table) -> Table:
    return (
        orders_snapshot.filter(_positive(orders_snapshot))
        .join(users, on="uid")
        .group_by(["country"], AGGREGATES)
    )


def test_ext_ivm_view_maintenance(benchmark):
    smoke = os.environ.get("REPRO_IVM_SMOKE", "") not in ("", "0")
    rng = np.random.default_rng(8)
    base_rows = SMOKE_BASE_ROWS if smoke else BASE_ROWS
    delta_rows = max(int(base_rows * DELTA_FRACTION), 10)

    base = _orders(rng, base_rows, start_oid=0)
    users_table = _users()
    live = list(base.rows())
    next_oid = base_rows

    def experiment():
        nonlocal next_oid
        orders = StreamTable(base, name="orders")
        users = StreamTable(users_table, name="users")
        start = time.perf_counter()
        view = (
            orders.view()
            .filter(_positive)
            .join(users, on="uid")
            .group_by(["country"], AGGREGATES)
            .materialize("spend_by_country")
        )
        seed_seconds = time.perf_counter() - start

        batches = []
        for _ in range(BATCHES):
            # 1% churn: half fresh inserts, half deletes of live rows
            n_deletes = delta_rows // 2
            delete_idx = rng.choice(len(live), size=n_deletes, replace=False)
            delete_set = set(int(i) for i in delete_idx)
            deleted = [live[i] for i in delete_set]
            inserts = _orders(rng, delta_rows - n_deletes, next_oid)
            next_oid += delta_rows - n_deletes

            delta_payload = Table.from_rows(
                list(inserts.rows()) + deleted, schema=orders.schema
            )
            weights = [1] * inserts.num_rows + [-1] * len(deleted)

            start = time.perf_counter()
            orders.push(Delta.of(delta_payload, weights))
            fresh = view.table()
            incremental_seconds = time.perf_counter() - start

            for i in sorted(delete_set, reverse=True):
                live.pop(i)
            live.extend(inserts.rows())

            snapshot = orders.snapshot()
            start = time.perf_counter()
            recomputed = _recompute(snapshot, users_table)
            recompute_seconds = time.perf_counter() - start

            # exact equivalence, asserted on every measured batch
            assert Counter(fresh.rows()) == Counter(recomputed.rows())

            batches.append({
                "incremental_seconds": incremental_seconds,
                "recompute_seconds": recompute_seconds,
                "speedup": recompute_seconds / incremental_seconds,
                "delta_rows": delta_rows,
                "state_rows": orders.num_rows,
                "view_groups": fresh.num_rows,
            })
        return {"seed_seconds": seed_seconds, "batches": batches}

    results = run_once(benchmark, experiment)

    batches = results["batches"]
    mean_incremental = float(np.mean(
        [b["incremental_seconds"] for b in batches]))
    mean_recompute = float(np.mean([b["recompute_seconds"] for b in batches]))
    mean_speedup = mean_recompute / mean_incremental

    from repro.evaluation import ResultTable

    table = ResultTable(
        f"EXT-IVM: incremental maintenance vs full recompute "
        f"(rows={base_rows}, delta={delta_rows}, smoke={smoke})",
        ["batch", "incremental (s)", "recompute (s)", "speedup"],
    )
    for i, b in enumerate(batches):
        table.add(str(i), f"{b['incremental_seconds']:.4f}",
                  f"{b['recompute_seconds']:.4f}", f"{b['speedup']:.1f}x")
    table.add("mean", f"{mean_incremental:.4f}", f"{mean_recompute:.4f}",
              f"{mean_speedup:.1f}x")
    table.show()

    bench_artifact("ivm", {
        "smoke": smoke,
        "rows": base_rows,
        "delta_rows": delta_rows,
        "batches": BATCHES,
        "speedup_floor": SPEEDUP_FLOOR,
        "seed_seconds": results["seed_seconds"],
        "mean_incremental_seconds": mean_incremental,
        "mean_recompute_seconds": mean_recompute,
        "speedup": mean_speedup,
        "per_batch": batches,
    })

    if not smoke:
        assert mean_speedup >= SPEEDUP_FLOOR, (
            f"incremental maintenance {mean_speedup:.1f}x < "
            f"{SPEEDUP_FLOOR}x floor vs full recompute"
        )
